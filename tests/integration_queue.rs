//! Integration: Algorithms 3 and 4 (queue benchmarks) plus queue
//! semantics through the full stack.

use azsim_client::{QueueClient, VirtualEnv};
use azsim_core::Simulation;
use azsim_fabric::{Cluster, ClusterParams};
use azurebench::alg3_queue::{run_alg3, QueueOp};
use azurebench::alg4_queue::run_alg4;
use azurebench::BenchConfig;
use bytes::Bytes;
use std::time::Duration;

#[test]
fn fig6_shape_peek_put_get_and_anomaly() {
    let cfg = BenchConfig::paper().with_scale(0.01);
    let r = run_alg3(&cfg, 4);
    for &size in &cfg.message_sizes() {
        let peek = r[&(size, QueueOp::Peek)].1;
        let put = r[&(size, QueueOp::Put)].1;
        let get = r[&(size, QueueOp::Get)].1;
        assert!(peek < put && put < get, "ordering broken at {size}");
    }
    // The 16 KB anomaly: slower than neighbours on both sides.
    let get = |kb: usize| r[&(kb << 10, QueueOp::Get)].1;
    assert!(get(16) > get(8) && get(16) > get(32));
}

#[test]
fn fig6_put_scales_nearly_linearly_with_separate_queues() {
    let cfg = BenchConfig::paper().with_scale(0.04);
    let r1 = run_alg3(&cfg, 1);
    let r8 = run_alg3(&cfg, 8);
    let size = 32 << 10;
    let speedup = r1[&(size, QueueOp::Put)].0 / r8[&(size, QueueOp::Put)].0;
    assert!(
        speedup > 6.0,
        "separate queues must scale nearly linearly, got {speedup:.2}×"
    );
}

#[test]
fn fig7_shared_queue_contention_and_think_time() {
    let cfg = BenchConfig::paper().with_scale(0.05).with_workers(vec![8]);
    let shared = run_alg4(&cfg, 8);
    let separate = run_alg3(&cfg, 8);
    // Shared-queue ops are at least as slow as separate-queue ops.
    let sep_put = separate[&(32 << 10, QueueOp::Put)].1;
    let sh_put = shared[&(1, QueueOp::Put)];
    assert!(
        sh_put >= sep_put * 0.999,
        "shared put {sh_put} must not beat separate put {sep_put}"
    );
    // Longer think time never makes ops slower (de-synchronization).
    for op in QueueOp::ALL {
        assert!(shared[&(5, op)] <= shared[&(1, op)] * 1.05);
    }
}

#[test]
fn queue_throttle_storms_are_absorbed_by_retry() {
    // A burst of puts into one queue beyond 500 msg/s: the ops all succeed
    // (after retries), and server-side metrics show the throttling.
    let params = ClusterParams {
        throttle_burst: 10.0,
        ..ClusterParams::default()
    };
    let sim = Simulation::new(Cluster::new(params), 31);
    let n = 32usize;
    let report = sim.run_workers(n, move |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        let q = QueueClient::new(&env, "storm");
        q.create().await.unwrap();
        for i in 0..20u32 {
            q.put_message(Bytes::from(i.to_le_bytes().to_vec()))
                .await
                .unwrap();
        }
    });
    let m = report.model.metrics();
    assert!(m.total_throttled() > 0, "the storm must hit the 500/s wall");
    assert_eq!(
        m.counter(azsim_storage::OpClass::QueuePut)
            .unwrap()
            .completed,
        (n * 20) as u64
    );
    // The retries cost wall-clock: the run takes over a virtual second.
    assert!(report.end_time > azsim_core::SimTime::from_secs(1));
}

#[test]
fn messages_survive_and_reappear_across_the_stack() {
    let sim = Simulation::new(Cluster::with_defaults(), 32);
    sim.run_workers(1, |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        let q = QueueClient::new(&env, "vis");
        q.create().await.unwrap();
        q.put_message(Bytes::from_static(b"task")).await.unwrap();
        let first = q
            .get_message_with_visibility(Duration::from_secs(5))
            .await
            .unwrap()
            .unwrap();
        // Nothing visible inside the window.
        assert!(q
            .get_message_with_visibility(Duration::from_secs(5))
            .await
            .unwrap()
            .is_none());
        ctx.sleep(Duration::from_secs(6)).await;
        let second = q.get_message().await.unwrap().unwrap();
        assert_eq!(second.id, first.id);
        assert_eq!(second.dequeue_count, 2);
        q.delete_message(&second).await.unwrap();
    });
}

#[test]
fn non_fifo_delivery_is_observable_with_high_fuzz() {
    let params = ClusterParams {
        fifo_fuzz: 1.0,
        ..ClusterParams::default()
    };
    let sim = Simulation::new(Cluster::new(params), 33);
    sim.run_workers(1, |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        let q = QueueClient::new(&env, "fifo");
        q.create().await.unwrap();
        for i in 0..6u8 {
            q.put_message(Bytes::from(vec![i])).await.unwrap();
        }
        let mut order = Vec::new();
        while let Some(m) = q.get_message().await.unwrap() {
            order.push(m.data[0]);
            q.delete_message(&m).await.unwrap();
        }
        assert_eq!(order.len(), 6, "no loss");
        let sorted: Vec<u8> = (0..6).collect();
        assert_ne!(order, sorted, "with fuzz=1.0 delivery must reorder");
    });
}
