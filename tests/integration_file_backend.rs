//! Integration: the `file://` live backend against its simulated model.
//!
//! The same reduced Algorithm 1 (staged block upload + chunked download)
//! and Algorithm 3 (per-worker queue produce/drain) workload runs twice
//! through the *real* client stack — once against [`FileStore`], which
//! executes every request as actual filesystem syscalls in a private
//! temp directory, and once against the simulated cluster configured
//! with the `file` backend profile (no caps, no throttling, strong
//! listings). The final observable states must reconcile exactly:
//! downloaded bytes, per-block reads, listings, drained payloads and
//! residual message counts. Divergence means either the live backend or
//! the simulated `file` model misdeclares the semantics the conformance
//! harness pins.

use azsim_client::{BlobClient, Environment, FileStore, LiveCluster, QueueClient};
use azsim_core::block_on;
use azsim_fabric::{BackendKind, ClusterParams};
use azsim_storage::StorageError;
use bytes::Bytes;

/// Virtual seconds per real second: modeled milliseconds become host
/// microseconds, so visibility windows cost nothing in wall time.
const FAST: f64 = 10_000.0;

const WORKERS: usize = 2;
const BLOCKS: usize = 4;
const BLOCK_SIZE: usize = 2 * 1024;
const MESSAGES: usize = 20;

/// Deterministic payload byte for (worker, unit, offset).
fn payload(worker: usize, unit: usize, len: usize) -> Bytes {
    let b = ((worker * 131 + unit * 31) % 251) as u8;
    Bytes::from(vec![b; len])
}

/// Everything observable at the end of the reduced workload.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    /// Per worker: the whole-blob download after commit.
    downloads: Vec<Vec<u8>>,
    /// Per worker: the indexed read of block 2 (Algorithm 1's chunked
    /// download path).
    chunk_reads: Vec<Vec<u8>>,
    /// Per worker: the container listing after upload.
    listings: Vec<Vec<String>>,
    /// Per worker: payloads drained from the queue, in delivery order.
    /// Compared as a multiset: the service (and therefore the simulated
    /// model, via its FIFO fuzz) does not guarantee delivery order, only
    /// at-least-once delivery of every message.
    drained: Vec<Vec<Vec<u8>>>,
    /// Per worker: message count after the drain.
    residual: Vec<usize>,
}

/// Reduced Algorithm 1 + Algorithm 3 through the real client stack.
fn run_workload<E: Environment>(env: &E) -> Outcome {
    let mut out = Outcome {
        downloads: Vec::new(),
        chunk_reads: Vec::new(),
        listings: Vec::new(),
        drained: Vec::new(),
        residual: Vec::new(),
    };
    for w in 0..WORKERS {
        // Algorithm 1 (reduced): stage blocks, commit, read back whole
        // and by block index.
        let blobs = BlobClient::new(env, format!("alg1-{w}"));
        block_on(blobs.create_container()).unwrap();
        let blob = format!("data-{w}");
        let ids: Vec<String> = (0..BLOCKS).map(|i| format!("blk-{i:04}")).collect();
        for (i, id) in ids.iter().enumerate() {
            block_on(blobs.put_block(&blob, id.clone(), payload(w, i, BLOCK_SIZE))).unwrap();
        }
        block_on(blobs.put_block_list(&blob, ids)).unwrap();
        out.downloads
            .push(block_on(blobs.download(&blob)).unwrap().to_vec());
        out.chunk_reads
            .push(block_on(blobs.get_block(&blob, 2)).unwrap().to_vec());
        out.listings.push(block_on(blobs.list_blobs()).unwrap());

        // Algorithm 3 (reduced): per-worker queue, produce then drain.
        let q = QueueClient::new(env, format!("alg3-{w}"));
        block_on(q.create()).unwrap();
        for i in 0..MESSAGES {
            block_on(q.put_message(payload(w, i, 64))).unwrap();
        }
        let mut drained = Vec::new();
        while let Some(m) = block_on(q.get_message()).unwrap() {
            block_on(q.delete_message(&m)).unwrap();
            drained.push(m.data.to_vec());
        }
        out.drained.push(drained);
        out.residual.push(block_on(q.message_count()).unwrap());
    }
    out
}

#[test]
fn reduced_alg1_alg3_reconciles_with_the_simulated_file_model() {
    // Live: real syscalls against a private temp directory.
    let store = FileStore::new_temp(FAST);
    let live = run_workload(&store.env(0));

    // Model: the simulated cluster wearing the `file` backend profile.
    let lc = LiveCluster::new(
        ClusterParams::for_backend(BackendKind::File.profile()),
        FAST,
    );
    let sim = run_workload(&lc.env(0));

    // Queue delivery order is not a declared guarantee (the model fuzzes
    // FIFO on purpose, matching the service), so reconcile the drained
    // payloads as multisets and everything else exactly.
    let canon = |o: &Outcome| {
        let mut c = Outcome {
            downloads: o.downloads.clone(),
            chunk_reads: o.chunk_reads.clone(),
            listings: o.listings.clone(),
            drained: o.drained.clone(),
            residual: o.residual.clone(),
        };
        for d in &mut c.drained {
            d.sort();
        }
        c
    };
    assert_eq!(
        canon(&live),
        canon(&sim),
        "file:// live backend and simulated file model must reconcile"
    );

    // Sanity on the shared shape: full blobs, complete drain, empty
    // queues — and the *real* filesystem backend is strictly FIFO.
    for w in 0..WORKERS {
        assert_eq!(live.downloads[w].len(), BLOCKS * BLOCK_SIZE);
        assert_eq!(live.chunk_reads[w], payload(w, 2, BLOCK_SIZE).to_vec());
        assert_eq!(live.listings[w], vec![format!("data-{w}")]);
        assert_eq!(live.drained[w].len(), MESSAGES);
        assert_eq!(sim.drained[w].len(), MESSAGES);
        for (i, msg) in live.drained[w].iter().enumerate() {
            assert_eq!(msg, &payload(w, i, 64).to_vec(), "FIFO order, worker {w}");
        }
        assert_eq!(live.residual[w], 0);
    }
}

#[test]
fn file_backend_persists_real_bytes_on_disk() {
    let store = FileStore::new_temp(FAST);
    let env = store.env(0);
    let blobs = BlobClient::new(&env, "persist");
    block_on(blobs.create_container()).unwrap();
    block_on(blobs.upload("obj", payload(0, 0, 512))).unwrap();

    // The committed blob is a real file holding exactly those bytes —
    // not an in-memory shadow.
    let on_disk = std::fs::read(store.root().join("blob").join("persist").join("obj")).unwrap();
    assert_eq!(on_disk, payload(0, 0, 512).to_vec());

    // Queue messages land as real payload files too.
    let q = QueueClient::new(&env, "persist-q");
    block_on(q.create()).unwrap();
    block_on(q.put_message(Bytes::from_static(b"durable"))).unwrap();
    let msgs: Vec<_> = std::fs::read_dir(store.root().join("queue").join("persist-q"))
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "msg"))
        .collect();
    assert_eq!(msgs.len(), 1);
    assert_eq!(std::fs::read(msgs[0].path()).unwrap(), b"durable");
}

#[test]
fn live_and_simulated_file_backends_agree_on_errors() {
    let store = FileStore::new_temp(FAST);
    let lc = LiveCluster::new(
        ClusterParams::for_backend(BackendKind::File.profile()),
        FAST,
    );

    // Missing container: both stacks refuse with the same error class.
    let fe = store.env(0);
    let se = lc.env(0);
    let live_err = block_on(BlobClient::new(&fe, "ghost").download("b")).unwrap_err();
    let sim_err = block_on(BlobClient::new(&se, "ghost").download("b")).unwrap_err();
    assert!(matches!(live_err, StorageError::ContainerNotFound(_)));
    assert!(matches!(sim_err, StorageError::ContainerNotFound(_)));

    // Missing blob inside an existing container.
    for env_err in [
        {
            let c = BlobClient::new(&fe, "real");
            block_on(c.create_container()).unwrap();
            block_on(c.download("missing")).unwrap_err()
        },
        {
            let c = BlobClient::new(&se, "real");
            block_on(c.create_container()).unwrap();
            block_on(c.download("missing")).unwrap_err()
        },
    ] {
        assert!(matches!(env_err, StorageError::BlobNotFound(_)));
    }

    // Missing queue.
    let live_err = block_on(QueueClient::new(&fe, "ghost-q").message_count()).unwrap_err();
    let sim_err = block_on(QueueClient::new(&se, "ghost-q").message_count()).unwrap_err();
    assert!(matches!(live_err, StorageError::QueueNotFound(_)));
    assert!(matches!(sim_err, StorageError::QueueNotFound(_)));
}
