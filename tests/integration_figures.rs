//! Integration: every figure regenerates at reduced scale and exhibits the
//! paper's qualitative shapes (the six shape claims in DESIGN.md §5).

use azurebench::alg1_blob::{phase, run_alg1, BlobPhase};
use azurebench::{alg3_queue, alg4_queue, alg5_table, fig9, BenchConfig};

#[test]
fn all_figures_regenerate_and_render() {
    let cfg = BenchConfig::paper()
        .with_scale(0.01)
        .with_workers(vec![1, 4]);

    let figs = azurebench::alg1_blob::figures_4_and_5(&cfg);
    assert_eq!(figs.len(), 4);
    let f6 = alg3_queue::figure_6(&cfg);
    assert_eq!(f6.len(), 3);
    let f7 = alg4_queue::figure_7(&cfg);
    assert_eq!(f7.len(), 3);
    let f8 = alg5_table::figure_8(&cfg);
    assert_eq!(f8.len(), 4);
    let f9 = fig9::figure_9(&cfg);
    assert_eq!(f9.series.len(), 7);

    // Every figure renders to table and CSV without panicking, with data.
    for f in figs.iter().chain(&f6).chain(&f7).chain(&f8).chain([&f9]) {
        let t = f.render_table();
        assert!(t.contains(&f.id));
        let csv = f.to_csv();
        assert!(csv.lines().count() >= 2, "{} csv empty", f.id);
        for s in &f.series {
            assert!(!s.points.is_empty(), "{}/{} has no data", f.id, s.name);
        }
    }

    // Table I renders too.
    let t1 = azsim_compute::vm::render_table1();
    assert!(t1.contains("Extra Large"));
}

#[test]
fn shape1_blob_updown_directions() {
    let cfg = BenchConfig::paper().with_scale(0.05);
    let w2 = run_alg1(&cfg, 2);
    let w8 = run_alg1(&cfg, 8);
    // Download time grows, throughput grows, upload time falls.
    assert!(
        phase(&w8, BlobPhase::PageFullDownload).mean_worker_seconds
            >= phase(&w2, BlobPhase::PageFullDownload).mean_worker_seconds * 0.99
    );
    assert!(
        phase(&w8, BlobPhase::PageFullDownload).throughput_mb_s
            > phase(&w2, BlobPhase::PageFullDownload).throughput_mb_s
    );
    assert!(
        phase(&w8, BlobPhase::PageUpload).mean_worker_seconds
            < phase(&w2, BlobPhase::PageUpload).mean_worker_seconds
    );
    // Page upload throughput exceeds block upload throughput.
    assert!(
        phase(&w8, BlobPhase::PageUpload).throughput_mb_s
            > phase(&w8, BlobPhase::BlockUpload).throughput_mb_s
    );
}

#[test]
fn shape2_sequential_blocks_beat_random_pages() {
    let cfg = BenchConfig::paper().with_scale(0.05);
    let aggs = run_alg1(&cfg, 8);
    assert!(
        phase(&aggs, BlobPhase::BlockSeqRead).throughput_mb_s
            > phase(&aggs, BlobPhase::PageRandomRead).throughput_mb_s
    );
}

#[test]
fn shape3_queue_ordering_and_anomaly_in_figure6() {
    let cfg = BenchConfig::paper().with_scale(0.01).with_workers(vec![2]);
    let figs = alg3_queue::figure_6(&cfg);
    let y = |fig: usize, series: &str| figs[fig].series(series).unwrap().y_at(2.0).unwrap();
    // figs[0]=put, [1]=peek, [2]=get; peek < put < get at 32 KB.
    assert!(y(1, "32KB") < y(0, "32KB"));
    assert!(y(0, "32KB") < y(2, "32KB"));
    // Get anomaly: 16 KB above 8 and 32 KB.
    assert!(y(2, "16KB") > y(2, "8KB"));
    assert!(y(2, "16KB") > y(2, "32KB"));
    // But NOT for put/peek (the anomaly is a Get-only phenomenon).
    assert!(y(0, "16KB") < y(0, "32KB"));
    assert!(y(1, "16KB") < y(1, "32KB"));
}

#[test]
fn shape4_shared_queue_think_time() {
    let cfg = BenchConfig::paper().with_scale(0.03).with_workers(vec![8]);
    let figs = alg4_queue::figure_7(&cfg);
    for f in &figs {
        let t1 = f.series("think-1s").unwrap().y_at(8.0).unwrap();
        let t5 = f.series("think-5s").unwrap().y_at(8.0).unwrap();
        assert!(t5 <= t1 * 1.05, "{}: think-5s {t5} vs think-1s {t1}", f.id);
    }
}

#[test]
fn shape5_table_degradation_for_big_entities() {
    let cfg = BenchConfig::paper()
        .with_scale(0.06)
        .with_workers(vec![1, 16]);
    let figs = alg5_table::figure_8(&cfg);
    let insert = &figs[0];
    let deg = |series: &str| {
        let s = insert.series(series).unwrap();
        s.y_at(16.0).unwrap() / s.y_at(1.0).unwrap()
    };
    assert!(deg("64KB") > 2.0, "64KB must degrade: ×{:.2}", deg("64KB"));
    assert!(
        deg("64KB") > deg("4KB") * 1.5,
        "64KB (×{:.2}) must degrade much more than 4KB (×{:.2})",
        deg("64KB"),
        deg("4KB")
    );
}

#[test]
fn shape6_queue_scales_better_than_table() {
    let cfg = BenchConfig::paper()
        .with_scale(0.05)
        .with_workers(vec![1, 16]);
    let fig = fig9::figure_9(&cfg);
    let deg = |name: &str| {
        let s = fig.series(name).unwrap();
        s.y_at(16.0).unwrap() / s.y_at(1.0).unwrap()
    };
    assert!(deg("table-insert") > deg("queue-put"));
    assert!(deg("table-update") > deg("queue-get"));
}
