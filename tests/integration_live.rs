//! Integration: live mode — the same cluster model driven by real threads
//! in (heavily time-scaled) wall-clock time, as the examples use it.

use azsim_client::{BlobClient, LiveCluster, QueueClient, TableClient};
use azsim_core::block_on;
use azsim_fabric::ClusterParams;
use azsim_storage::{Entity, PropValue, TableBatchOp};
use bytes::Bytes;
use std::time::Duration;

/// Virtual seconds per real second for tests: modeled milliseconds become
/// host microseconds.
const FAST: f64 = 20_000.0;

#[test]
fn all_three_services_work_live() {
    let lc = LiveCluster::new(ClusterParams::default(), FAST);
    let env = lc.env(0);

    let blobs = BlobClient::new(&env, "live");
    block_on(blobs.create_container()).unwrap();
    block_on(blobs.upload("b", Bytes::from_static(b"live-blob"))).unwrap();
    assert_eq!(
        block_on(blobs.download("b")).unwrap(),
        Bytes::from_static(b"live-blob")
    );

    let q = QueueClient::new(&env, "live-q");
    block_on(q.create()).unwrap();
    block_on(q.put_message(Bytes::from_static(b"m"))).unwrap();
    let m = block_on(q.get_message()).unwrap().unwrap();
    block_on(q.delete_message(&m)).unwrap();

    let t = TableClient::new(&env, "live-t");
    block_on(t.create_table()).unwrap();
    block_on(t.insert(Entity::new("p", "r").with("v", PropValue::I64(1)))).unwrap();
    assert!(block_on(t.query("p", "r")).unwrap().is_some());
}

#[test]
fn live_mode_parallel_workers_drain_a_task_pool() {
    let lc = LiveCluster::new(ClusterParams::default(), FAST);
    let submit_env = lc.env(0);
    let q = QueueClient::new(&submit_env, "pool");
    block_on(q.create()).unwrap();
    let n_tasks = 40;
    for i in 0..n_tasks {
        block_on(q.put_message(Bytes::from(vec![i as u8]))).unwrap();
    }

    let counts: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = (1..=4)
            .map(|w| {
                let env = lc.env(w);
                s.spawn(move || {
                    let q = QueueClient::new(&env, "pool");
                    let mut done = 0;
                    while let Some(m) = block_on(q.get_message()).unwrap() {
                        block_on(q.delete_message(&m)).unwrap();
                        done += 1;
                    }
                    done
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(counts.iter().sum::<usize>(), n_tasks);
    assert_eq!(block_on(q.message_count()).unwrap(), 0);
}

#[test]
fn live_mode_visibility_timeout_uses_scaled_time() {
    let lc = LiveCluster::new(ClusterParams::default(), FAST);
    let env = lc.env(0);
    let q = QueueClient::new(&env, "vis");
    block_on(q.create()).unwrap();
    block_on(q.put_message(Bytes::from_static(b"t"))).unwrap();
    // 60 virtual seconds = 3 real milliseconds at scale 20 000.
    let m1 = block_on(q.get_message_with_visibility(Duration::from_secs(60)))
        .unwrap()
        .unwrap();
    assert!(
        block_on(q.get_message_with_visibility(Duration::from_secs(60)))
            .unwrap()
            .is_none()
    );
    std::thread::sleep(Duration::from_millis(10));
    let m2 = block_on(q.get_message_with_visibility(Duration::from_secs(60)))
        .unwrap()
        .unwrap();
    assert_eq!(m1.id, m2.id);
    assert_eq!(m2.dequeue_count, 2);
}

#[test]
fn entity_group_transaction_via_live_client() {
    let lc = LiveCluster::new(ClusterParams::default(), FAST);
    let env = lc.env(0);
    let t = TableClient::new(&env, "batch");
    block_on(t.create_table()).unwrap();
    let tags = block_on(t.execute_batch(
        "p",
        vec![
            TableBatchOp::Insert(Entity::new("p", "a").with("v", PropValue::I64(1))),
            TableBatchOp::Insert(Entity::new("p", "b").with("v", PropValue::I64(2))),
        ],
    ))
    .unwrap();
    assert_eq!(tags.len(), 2);
    assert_eq!(block_on(t.query_partition("p")).unwrap().len(), 2);

    // An atomic failure leaves no trace.
    let err = block_on(t.execute_batch(
        "p",
        vec![
            TableBatchOp::Insert(Entity::new("p", "c").with("v", PropValue::I64(3))),
            TableBatchOp::Insert(Entity::new("p", "a").with("v", PropValue::I64(9))), // dup
        ],
    ));
    assert!(err.is_err());
    assert_eq!(block_on(t.query_partition("p")).unwrap().len(), 2);
    assert!(block_on(t.query("p", "c")).unwrap().is_none());
}

#[test]
fn live_metrics_accumulate_across_threads() {
    let lc = LiveCluster::new(ClusterParams::default(), FAST);
    std::thread::scope(|s| {
        for w in 0..6 {
            let env = lc.env(w);
            s.spawn(move || {
                let q = QueueClient::new(&env, format!("m{w}"));
                block_on(q.create()).unwrap();
                for _ in 0..5 {
                    block_on(q.put_message(Bytes::from_static(b"x"))).unwrap();
                }
            });
        }
    });
    let puts = lc.with_cluster(|c| {
        c.metrics()
            .counter(azsim_storage::OpClass::QueuePut)
            .unwrap()
            .completed
    });
    assert_eq!(puts, 30);
}
