//! Integration: cross-backend conformance harness.
//!
//! Every simulated backend — `was` (the paper's reference), the S3-style
//! and GCS-style peers, and the `file://` no-throttle model — runs the
//! same table-driven operation sequences, and each is held to exactly
//! what its [`BackendProfile`](azsim_fabric::BackendProfile) declares:
//! throttle shape and scope, per-object update limits, bounded
//! list-after-write visibility, and the `figures verify` safety
//! invariants. On top of the per-backend checks, a differential oracle
//! fingerprints each backend's observable history for one shared script
//! and fails if two backends that declare different semantics produce
//! identical histories — the regression that per-backend checks alone
//! cannot catch.

use azsim_fabric::BackendKind;
use azurebench::conformance::{
    check_all, check_backend, divergent_pairs, history_fingerprint, CHECKS,
};

#[test]
fn every_backend_honours_its_declared_semantics() {
    let failures = check_all();
    assert!(
        failures.is_empty(),
        "declared-semantics violations:\n{}",
        failures
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_suite_actually_covers_the_declared_axes() {
    // Guard against the table quietly shrinking: the suite must keep
    // covering throttling, object-update limits, listing visibility and
    // the verify invariants.
    let names: Vec<&str> = CHECKS.iter().map(|&(n, _)| n).collect();
    for expected in [
        "throttle-shape-and-scope",
        "object-update-limit",
        "list-after-write-visibility",
        "verify-invariants",
    ] {
        assert!(names.contains(&expected), "missing check {expected:?}");
    }
}

#[test]
fn was_reference_passes_in_isolation() {
    // The reference backend deserves its own line in a failing test run.
    let failures = check_backend(BackendKind::Was);
    assert!(failures.is_empty(), "{failures:?}");
}

#[test]
fn differential_oracle_separates_every_backend_pair() {
    // 4 backends → 6 unordered pairs. Each pair declares different
    // semantics (caps, shapes, visibility), so each must produce a
    // different observable history for the shared divergence script.
    // The acceptance bar is ≥ 3 observable divergences; the model today
    // delivers all 6, and this pins that.
    let pairs = divergent_pairs(2012);
    assert_eq!(
        pairs.len(),
        6,
        "expected every distinct backend pair to diverge, got {pairs:?}"
    );
    assert!(
        pairs.len() >= 3,
        "fewer than 3 observable cross-backend divergences: {pairs:?}"
    );
}

#[test]
fn differential_oracle_is_deterministic_and_reflexive() {
    for k in BackendKind::ALL {
        assert_eq!(
            history_fingerprint(k, 2012),
            history_fingerprint(k, 2012),
            "{k} history must be reproducible"
        );
    }
    // Divergence is seed-stable: a different seed still separates every
    // pair (the semantics differ, not one lucky hash).
    assert_eq!(divergent_pairs(7).len(), 6);
}
