//! Integration: Algorithm 5 (table benchmark) plus table semantics through
//! the full stack.

use azsim_client::{TableClient, VirtualEnv};
use azsim_core::Simulation;
use azsim_fabric::{Cluster, ClusterParams};
use azsim_storage::{Entity, EtagCondition, PropValue, StorageError};
use azurebench::alg5_table::{run_alg5, TableOp};
use azurebench::BenchConfig;
use bytes::Bytes;

#[test]
fn fig8_shape_update_most_expensive_query_cheapest() {
    let cfg = BenchConfig::paper().with_scale(0.02);
    let r = run_alg5(&cfg, 4);
    for &size in &cfg.entity_sizes() {
        let per_op = |op: TableOp| r[&(size, op)].1;
        assert!(per_op(TableOp::Query) < per_op(TableOp::Insert));
        assert!(per_op(TableOp::Update) > per_op(TableOp::Insert));
        assert!(per_op(TableOp::Update) > per_op(TableOp::Delete));
        // Query is the cheapest operation; at 64 KB under contention its
        // downlink transfer can approach delete's replication cost, so the
        // strict comparison is asserted where the paper's claim is crisp.
        if size <= 32 << 10 {
            assert!(per_op(TableOp::Query) < per_op(TableOp::Delete));
        }
    }
}

#[test]
fn fig8_flat_until_4_workers_then_big_entities_degrade() {
    let cfg = BenchConfig::paper().with_scale(0.06);
    let r1 = run_alg5(&cfg, 1);
    let r4 = run_alg5(&cfg, 4);
    let r16 = run_alg5(&cfg, 16);
    let big = 64 << 10;
    // Flat-ish to 4 workers.
    let flat = r4[&(big, TableOp::Insert)].0 / r1[&(big, TableOp::Insert)].0;
    assert!(
        flat < 1.6,
        "should be nearly flat to 4 workers, got ×{flat:.2}"
    );
    // Drastic beyond.
    let deg = r16[&(big, TableOp::Insert)].0 / r1[&(big, TableOp::Insert)].0;
    assert!(deg > 2.0, "64 KB at 16 workers must degrade, got ×{deg:.2}");
}

#[test]
fn hot_partition_hits_500_per_sec_wall_and_recovers() {
    // All workers insert into the SAME partition: the per-partition
    // 500 entities/s target throttles, the retry policy absorbs it, no
    // insert is lost (the paper's 1000-entity "server busy" episode).
    let params = ClusterParams {
        throttle_burst: 10.0,
        account_tx_rate: 1e9, // isolate the partition bucket
        ..ClusterParams::default()
    };
    let sim = Simulation::new(Cluster::new(params), 41);
    let n = 24usize;
    let per = 25usize;
    let report = sim.run_workers(n, move |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        let t = TableClient::new(&env, "hot");
        t.create_table().await.unwrap();
        for i in 0..per {
            t.insert(
                Entity::new("hot", format!("{}-{}", ctx.id().0, i))
                    .with("v", PropValue::I64(i as i64)),
            )
            .await
            .unwrap();
        }
    });
    let m = report.model.metrics();
    assert!(m.total_throttled() > 0, "hot partition must throttle");
    assert_eq!(
        report.model.table_store().entity_count("hot").unwrap(),
        n * per
    );
}

#[test]
fn etag_protects_against_lost_updates_under_concurrency() {
    // Two workers race wildcard-vs-conditional updates; the conditional
    // loser must observe PreconditionFailed rather than clobbering.
    let sim = Simulation::new(Cluster::with_defaults(), 42);
    let report = sim.run_workers(2, |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        let t = TableClient::new(&env, "race");
        t.create_table().await.unwrap();
        if ctx.id().0 == 0 {
            // Writer 0: insert, then hold a stale tag over a sleep.
            let tag = t
                .insert(Entity::new("p", "r").with("v", PropValue::I64(0)))
                .await
                .unwrap();
            ctx.sleep(std::time::Duration::from_secs(2)).await;
            // Worker 1 has updated meanwhile: the stale tag must fail.
            let res = t
                .update_if(
                    Entity::new("p", "r").with("v", PropValue::I64(100)),
                    EtagCondition::Match(tag),
                )
                .await;
            assert_eq!(res.unwrap_err(), StorageError::PreconditionFailed);
            0
        } else {
            ctx.sleep(std::time::Duration::from_secs(1)).await;
            t.update(Entity::new("p", "r").with("v", PropValue::I64(7)))
                .await
                .unwrap();
            1
        }
    });
    // Final value is worker 1's.
    let (e, _) = report
        .model
        .table_store()
        .query("race", "p", "r")
        .unwrap()
        .unwrap();
    assert_eq!(e.properties["v"], PropValue::I64(7));
}

#[test]
fn payload_integrity_through_full_stack() {
    let sim = Simulation::new(Cluster::with_defaults(), 43);
    sim.run_workers(1, |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        let t = TableClient::new(&env, "bytes");
        t.create_table().await.unwrap();
        let payload = Bytes::from((0..=255u8).cycle().take(10_000).collect::<Vec<u8>>());
        t.insert(Entity::new("p", "r").with("data", PropValue::Binary(payload.clone())))
            .await
            .unwrap();
        let (e, _) = t.query("p", "r").await.unwrap().unwrap();
        match &e.properties["data"] {
            PropValue::Binary(b) => assert_eq!(*b, payload),
            other => panic!("wrong property type {other:?}"),
        }
    });
}

#[test]
fn partition_scan_collects_all_workers_rows() {
    let n = 6usize;
    let sim = Simulation::new(Cluster::with_defaults(), 44);
    let report = sim.run_workers(n, move |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        let t = TableClient::new(&env, "scan");
        t.create_table().await.unwrap();
        // All workers share one partition, distinct rows.
        t.insert(
            Entity::new("all", format!("row-{}", ctx.id().0))
                .with("v", PropValue::I64(ctx.id().0 as i64)),
        )
        .await
        .unwrap();
        ctx.sleep(std::time::Duration::from_secs(1)).await;
        let rows = t.query_partition("all").await.unwrap();
        rows.len()
    });
    assert!(report.results.iter().all(|&len| len == n));
}
