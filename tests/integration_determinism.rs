//! Integration: reproducibility guarantees of the whole stack — identical
//! seeds must give bit-identical figures, different seeds must differ.

use azsim_client::VirtualEnv;
use azsim_core::Simulation;
use azsim_fabric::Cluster;
use azurebench::alg3_queue::{run_alg3, QueueOp};
use azurebench::alg5_table::run_alg5;
use azurebench::{alg1_blob, alg3_queue, alg4_queue, alg5_table, fig9, BenchConfig};

#[test]
fn alg3_is_bit_deterministic() {
    let cfg = BenchConfig::paper().with_scale(0.01);
    let a = run_alg3(&cfg, 4);
    let b = run_alg3(&cfg, 4);
    assert_eq!(a.len(), b.len());
    for (k, v) in &a {
        assert_eq!(v, &b[k], "mismatch at {k:?}");
    }
}

#[test]
fn alg5_is_bit_deterministic() {
    let cfg = BenchConfig::paper().with_scale(0.01);
    let a = run_alg5(&cfg, 3);
    let b = run_alg5(&cfg, 3);
    for (k, v) in &a {
        assert_eq!(v, &b[k], "mismatch at {k:?}");
    }
}

#[test]
fn different_seeds_change_fuzzed_behaviour_not_shapes() {
    let mut cfg_a = BenchConfig::paper().with_scale(0.01);
    cfg_a.seed = 1;
    let mut cfg_b = cfg_a.clone();
    cfg_b.seed = 2;
    let a = run_alg3(&cfg_a, 2);
    let b = run_alg3(&cfg_b, 2);
    // The paper-level shape (peek < put < get) holds under both seeds.
    for r in [&a, &b] {
        let size = 32 << 10;
        assert!(r[&(size, QueueOp::Peek)].1 < r[&(size, QueueOp::Put)].1);
        assert!(r[&(size, QueueOp::Put)].1 < r[&(size, QueueOp::Get)].1);
    }
}

#[test]
fn parallel_and_serial_sweeps_emit_identical_csvs() {
    // The sweep engine runs ladder points on OS threads; the emitted CSVs
    // must be byte-identical to the single-threaded schedule.
    let base = BenchConfig::paper()
        .with_scale(0.02)
        .with_workers(vec![1, 2, 4]);
    let serial = base.clone().with_sweep_threads(1);
    let parallel = base.with_sweep_threads(4);

    let a = fig9::figure_9(&serial).to_csv();
    let b = fig9::figure_9(&parallel).to_csv();
    assert_eq!(a, b, "fig9 CSV differs between schedules");

    let fa = alg3_queue::figure_6(&serial);
    let fb = alg3_queue::figure_6(&parallel);
    assert_eq!(fa.len(), fb.len());
    for (x, y) in fa.iter().zip(&fb) {
        assert_eq!(
            x.to_csv(),
            y.to_csv(),
            "{} CSV differs between schedules",
            x.id
        );
    }
}

#[test]
fn fig9_extrapolation_is_deterministic_across_schedules() {
    // The 256-worker extrapolation point (figures --extrapolate) is a
    // committed golden artifact: identical between runs and between the
    // serial and parallel sweep schedules, with the beyond-paper ladder
    // point always present and always last.
    let base = BenchConfig::paper().with_scale(0.005).with_workers(vec![1]);
    let serial = base.clone().with_sweep_threads(1);
    let parallel = base.with_sweep_threads(4);

    let a = fig9::figure_9_extrapolated(&serial);
    let b = fig9::figure_9_extrapolated(&parallel);
    assert_eq!(
        a.to_csv(),
        b.to_csv(),
        "fig9-extrapolated CSV differs between schedules"
    );
    for s in &a.series {
        assert_eq!(
            s.points.last().map(|(x, _)| *x),
            Some(fig9::EXTRAPOLATE_WORKERS as f64),
            "series {} must end at the extrapolation point",
            s.name
        );
    }
}

#[test]
fn profile_json_is_golden_across_runs_and_schedules() {
    // The `figures profile` export is a golden artifact: the same config
    // and seed must serialize byte-identically run to run AND between the
    // serial and parallel sweep schedules (the JSON deliberately excludes
    // `sweep_threads`, the only config knob allowed to differ).
    let base = BenchConfig::paper()
        .with_scale(0.02)
        .with_workers(vec![1, 2, 4]);
    let serial = base.clone().with_sweep_threads(1);
    let parallel = base.with_sweep_threads(4);

    let a = azurebench::profile::run_profile(&serial, &serial.workers, 8).to_json();
    let b = azurebench::profile::run_profile(&serial, &serial.workers, 8).to_json();
    assert_eq!(a, b, "profile.json differs between identical runs");

    let c = azurebench::profile::run_profile(&parallel, &parallel.workers, 8).to_json();
    assert_eq!(a, c, "profile.json differs between --threads 1 and 4");

    let pa = azurebench::profile::run_profile(&serial, &serial.workers, 8).to_prometheus();
    let pc = azurebench::profile::run_profile(&parallel, &parallel.workers, 8).to_prometheus();
    assert_eq!(pa, pc, "prometheus export differs between schedules");
}

#[test]
fn figure_csvs_are_identical_with_timeline_sampling_enabled() {
    // Gauge sampling is passive by construction: it reads bucket fills with
    // the side-effect-free probe and accounts busy time on transitions the
    // simulation already makes, so switching it on must not move a single
    // virtual-time event. All 15 figure CSVs — the golden artifacts — must
    // come out bit-identical with and without sampling.
    let plain = BenchConfig::paper()
        .with_scale(0.01)
        .with_workers(vec![1, 4]);
    let mut sampled = plain.clone();
    sampled.params.timeline_resolution = Some(std::time::Duration::from_millis(5));

    let csvs = |cfg: &BenchConfig| -> Vec<(String, String)> {
        let blob = alg1_blob::figures_4_and_5(cfg);
        let f6 = alg3_queue::figure_6(cfg);
        let f7 = alg4_queue::figure_7(cfg);
        let f8 = alg5_table::figure_8(cfg);
        let f9 = fig9::figure_9(cfg);
        blob.iter()
            .chain(&f6)
            .chain(&f7)
            .chain(&f8)
            .chain([&f9])
            .map(|f| (f.id.clone(), f.to_csv()))
            .collect()
    };

    let a = csvs(&plain);
    let b = csvs(&sampled);
    assert_eq!(a.len(), 15, "expected the full 15-figure suite");
    for ((id_a, csv_a), (id_b, csv_b)) in a.iter().zip(&b) {
        assert_eq!(id_a, id_b);
        assert_eq!(csv_a, csv_b, "{id_a} CSV changed when sampling was enabled");
    }
}

#[test]
fn full_stack_trace_is_reproducible() {
    // Drive a mixed workload and compare end times and server metrics.
    let run = || {
        let sim = Simulation::new(Cluster::with_defaults(), 12345);
        let report = sim.run_workers(8, |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let q = azsim_client::QueueClient::new(&env, format!("d{}", ctx.id().0 % 3));
            q.create().await.unwrap();
            for i in 0..20u32 {
                let jitter: u64 = ctx.with_rng(|r| rand::Rng::random_range(r, 0..10_000));
                ctx.sleep(std::time::Duration::from_micros(jitter)).await;
                q.put_message(bytes::Bytes::from(i.to_le_bytes().to_vec()))
                    .await
                    .unwrap();
                if let Some(m) = q.get_message().await.unwrap() {
                    q.delete_message(&m).await.unwrap();
                }
            }
            ctx.now()
        });
        let completed = report.model.metrics().total_completed();
        (report.results, report.end_time, completed, report.requests)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "per-worker end times differ");
    assert_eq!(a.1, b.1, "global end time differs");
    assert_eq!(a.2, b.2, "op counts differ");
    assert_eq!(a.3, b.3, "request counts differ");
}
