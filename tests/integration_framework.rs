//! Integration: the Section III application framework end to end,
//! including crash-tolerance fault injection.

use azsim_client::VirtualEnv;
use azsim_compute::{Deployment, VmSize};
use azsim_core::runtime::{actor, ActorCtx, ActorFn};
use azsim_core::Simulation;
use azsim_fabric::{Cluster, ClusterParams};
use azsim_framework::{BagOfTasks, TaskQueue};
use serde::{Deserialize, Serialize};
use std::time::Duration;

#[derive(Serialize, Deserialize, Clone, PartialEq, Debug)]
struct Work {
    id: u32,
}

#[test]
fn web_role_plus_workers_full_lifecycle() {
    let workers = 6usize;
    let tasks = 48u32;
    let sim = Simulation::new(Cluster::with_defaults(), 71);
    let mut actors: Vec<ActorFn<'_, Cluster, usize>> = Vec::new();
    actors.push(actor(move |ctx: ActorCtx<Cluster>| async move {
        let env = VirtualEnv::new(&ctx);
        let bag: BagOfTasks<'_, _, Work> = BagOfTasks::new(&env, "life");
        bag.init().await.unwrap();
        let n = bag
            .submit_all((0..tasks).map(|id| Work { id }))
            .await
            .unwrap();
        bag.wait_all(n).await.unwrap()
    }));
    for _ in 0..workers {
        actors.push(actor(move |ctx: ActorCtx<Cluster>| async move {
            let env = VirtualEnv::new(&ctx);
            let bag: BagOfTasks<'_, _, Work> = BagOfTasks::new(&env, "life");
            bag.init().await.unwrap();
            bag.run_worker(3, Duration::from_secs(1), &env, async |_t, _a| {
                ctx.sleep(Duration::from_millis(50)).await;
            })
            .await
            .unwrap()
            .processed
        }));
    }
    let report = sim.run(actors);
    assert!(report.results[0] >= tasks as usize);
    let total: usize = report.results[1..].iter().sum();
    assert_eq!(total, tasks as usize);
}

#[test]
fn crashed_worker_tasks_are_recovered_by_healthy_workers() {
    // Fault injection: one worker claims tasks and never completes them.
    // Visibility timeouts must hand its tasks to the healthy workers.
    let tasks = 12u32;
    let vis = Duration::from_secs(8);
    let sim = Simulation::new(Cluster::with_defaults(), 72);
    let mut actors: Vec<ActorFn<'_, Cluster, (usize, usize)>> = Vec::new();
    // The crasher: claims up to 5 tasks, abandons them all, exits.
    actors.push(actor(move |ctx: ActorCtx<Cluster>| async move {
        let env = VirtualEnv::new(&ctx);
        let tq: TaskQueue<'_, _, Work> = TaskQueue::new(&env, "rec-tasks").with_visibility(vis);
        tq.init().await.unwrap();
        // Submit everything first so the crasher definitely sees work.
        for id in 0..tasks {
            tq.submit(&Work { id }).await.unwrap();
        }
        let mut claimed = 0;
        while claimed < 5 {
            if tq.claim().await.unwrap().is_some() {
                claimed += 1; // never complete() — simulated crash
            }
        }
        (0, claimed)
    }));
    // Healthy workers arrive a little later and drain everything.
    for _ in 0..3 {
        actors.push(actor(move |ctx: ActorCtx<Cluster>| async move {
            let env = VirtualEnv::new(&ctx);
            let tq: TaskQueue<'_, _, Work> = TaskQueue::new(&env, "rec-tasks").with_visibility(vis);
            tq.init().await.unwrap();
            ctx.sleep(Duration::from_secs(1)).await;
            let mut done = 0;
            let mut retried = 0;
            let mut idle = 0;
            while idle < 6 {
                match tq.claim().await.unwrap() {
                    Some(c) => {
                        idle = 0;
                        if c.attempt > 1 {
                            retried += 1;
                        }
                        tq.complete(&c).await.unwrap();
                        done += 1;
                    }
                    None => {
                        idle += 1;
                        ctx.sleep(Duration::from_secs(2)).await;
                    }
                }
            }
            (done, retried)
        }));
    }
    let report = sim.run(actors);
    let done: usize = report.results[1..].iter().map(|(d, _)| d).sum();
    let retried: usize = report.results[1..].iter().map(|(_, r)| r).sum();
    assert_eq!(done, tasks as usize, "every task must complete");
    assert!(retried >= 5, "the 5 crashed claims must be re-delivered");
    // Queue fully drained.
    let mut model = report.model;
    assert_eq!(
        model
            .queue_store_mut()
            .approximate_count(report.end_time, "rec-tasks")
            .unwrap(),
        0
    );
}

#[test]
fn deployment_mixes_vm_sizes_with_framework() {
    let tasks = 16u32;
    let report = Deployment::new(ClusterParams::default(), 73)
        .with_role("web", 1, VmSize::Large, move |ctx, _| async move {
            let env = VirtualEnv::new(&ctx);
            let bag: BagOfTasks<'_, _, Work> = BagOfTasks::new(&env, "mix");
            bag.init().await.unwrap();
            bag.submit_all((0..tasks).map(|id| Work { id }))
                .await
                .unwrap();
            bag.wait_all(tasks as usize).await.unwrap()
        })
        .with_role("worker", 4, VmSize::ExtraSmall, move |ctx, _| async move {
            let env = VirtualEnv::new(&ctx);
            let bag: BagOfTasks<'_, _, Work> = BagOfTasks::new(&env, "mix");
            bag.init().await.unwrap();
            bag.run_worker(3, Duration::from_secs(1), &env, async |_t, _a| {})
                .await
                .unwrap()
                .processed
        })
        .run();
    let total: usize = report.results[1..].iter().sum();
    assert_eq!(total, tasks as usize);
}

#[test]
fn oversized_tasks_go_via_blob_reference_pattern() {
    // The framework guidance: payloads beyond 48 KB go to Blob storage,
    // the queue carries the name. Verify the task-queue rejects an
    // oversized inline payload but the blob-reference pattern works.
    use azsim_client::BlobClient;
    use bytes::Bytes;

    #[derive(Serialize, Deserialize)]
    struct Fat {
        blob: String,
    }

    let sim = Simulation::new(Cluster::with_defaults(), 74);
    sim.run_workers(1, |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        // Inline > 48 KB payload is rejected by the queue.
        let tq_raw = azsim_client::QueueClient::new(&env, "fat-tasks");
        tq_raw.create().await.unwrap();
        let too_big = Bytes::from(vec![0u8; 49 * 1024]);
        assert!(matches!(
            tq_raw.put_message(too_big).await,
            Err(azsim_storage::StorageError::MessageTooLarge { .. })
        ));

        // Blob-reference pattern.
        let blobs = BlobClient::new(&env, "fat");
        blobs.create_container().await.unwrap();
        let payload = Bytes::from(vec![7u8; 256 * 1024]);
        blobs.upload("input-0", payload.clone()).await.unwrap();
        let tq: TaskQueue<'_, _, Fat> = TaskQueue::new(&env, "fat-tasks");
        tq.submit(&Fat {
            blob: "input-0".into(),
        })
        .await
        .unwrap();
        let claimed = tq.claim().await.unwrap().unwrap();
        let fetched = blobs.download(&claimed.task.blob).await.unwrap();
        assert_eq!(fetched, payload);
        tq.complete(&claimed).await.unwrap();
    });
}
