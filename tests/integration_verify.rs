//! Integration: invariant-checking chaos search end to end.
//!
//! The verification workload of `azurebench::verify` runs a mixed
//! queue + table job under ambiguous-outcome faults (ack loss, busy
//! storms, crashes) and checks five safety invariants against the
//! cluster's ground-truth history: no acked write lost, at-least-once
//! with duplicates only under genuine ambiguity, no double-applied
//! If-Match retry, poison accounting, and per-key read-your-writes.
//!
//! Guarantees asserted here:
//! * **hardened policy survives** — a bounded chaos sweep over boundary
//!   schedules and seeded random plans finds zero violations;
//! * **naive policy is caught** — the same sweep with the blind-retry
//!   policy finds a violation, greedily shrinks the failing plan to
//!   fewer (or equal) ingredients, and the shrunk plan still fails;
//! * **reproducers replay deterministically** — the committed
//!   `results/repro-naive.json` re-triggers the recorded violations,
//!   and replaying twice yields identical outcomes;
//! * **dead-letter accounting holds under ack loss** — poison messages
//!   are parked exactly once even when delete acks vanish.

use azsim_fabric::{BackendKind, FaultPlan};
use azurebench::verify::{
    chaos_search, plan_events, run_verify, ReproDoc, VerifyConfig, REPRO_VERSION,
};
use std::path::Path;

/// Smaller-than-`quick` workload so the shrink loop (which re-runs the
/// workload once per candidate) stays fast in debug builds.
fn tiny(hardened: bool) -> VerifyConfig {
    VerifyConfig {
        seed: 2012,
        workers: 2,
        items: 12,
        increments: 5,
        poison: 1,
        hardened,
        backend: BackendKind::Was,
    }
}

#[test]
fn hardened_policy_survives_bounded_chaos_sweep() {
    let cfg = tiny(true);
    let seeds: Vec<u64> = (0..6).collect();
    let report = chaos_search(&cfg, &seeds, 2);
    assert_eq!(report.runs, report.boundary_runs + seeds.len());
    assert!(
        report.failure.is_none(),
        "hardened policy violated an invariant: {:?}",
        report.failure.map(|f| f.violations)
    );
}

#[test]
fn naive_policy_is_caught_shrunk_and_replays() {
    let cfg = tiny(false);
    let seeds: Vec<u64> = (0..6).collect();
    let report = chaos_search(&cfg, &seeds, 2);
    let failure = report
        .failure
        .expect("chaos search must catch the naive blind-retry policy");

    // Shrinking only removes ingredients, and the minimum still fails.
    assert!(plan_events(&failure.shrunk) <= plan_events(&failure.plan));
    assert!(plan_events(&failure.shrunk) >= 1);
    assert!(!failure.violations.is_empty());

    // The shrunk plan replays deterministically: same violations, same
    // history counters, run after run.
    let a = run_verify(&cfg, &failure.shrunk);
    let b = run_verify(&cfg, &failure.shrunk);
    assert_eq!(a, b);
    assert_eq!(a.violations, failure.violations);
}

#[test]
fn committed_reproducer_replays_the_violation() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/repro-naive.json");
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed reproducer {}: {e}", path.display()));
    let doc = ReproDoc::from_json(&json).expect("reproducer must parse");
    assert_eq!(doc.version, REPRO_VERSION);
    assert!(
        !doc.config.hardened,
        "committed reproducer targets the naive policy"
    );
    assert!(!doc.violations.is_empty());

    let outcome = doc.replay();
    assert_eq!(
        outcome.violations, doc.violations,
        "replay must reproduce the recorded violations exactly"
    );

    // The hardened policy fixes the same schedule.
    let mut fixed_cfg = doc.config;
    fixed_cfg.hardened = true;
    let fixed = run_verify(&fixed_cfg, &doc.plan.to_plan());
    assert!(
        fixed.violations.is_empty(),
        "hardened policy must survive the reproducer's plan: {:?}",
        fixed.violations
    );
}

#[test]
fn hardened_policy_survives_ack_loss_on_the_s3_backend() {
    // The invariant sweep on a peer backend: same workload, same
    // ambiguous-outcome faults, but the cluster simulates the S3-style
    // profile (account-scope SlowDown curve, eventual listings, bounded
    // read staleness). I5 (read-your-writes) is checked against the
    // *declared* staleness window — relaxed, not skipped — and all other
    // invariants must hold verbatim.
    let cfg = VerifyConfig {
        backend: BackendKind::S3,
        ..tiny(true)
    };
    let plan = FaultPlan {
        seed: 11,
        ack_loss_prob: 0.1,
        ..FaultPlan::default()
    };
    let outcome = run_verify(&cfg, &plan);
    assert!(
        outcome.violations.is_empty(),
        "hardened policy violated an invariant under the s3 backend: {:?}",
        outcome.violations
    );
    // Ack loss actually fired — the plan exercised ambiguity.
    assert!(outcome.ambiguous_executed + outcome.ambiguous_lost > 0);

    // Determinism holds on peer backends too.
    assert_eq!(outcome, run_verify(&cfg, &plan));
}

#[test]
fn s3_chaos_sweep_boundary_plans_stay_clean() {
    // Boundary schedules (storm-edge crash, queue blackout, pure
    // ambiguity storm) against the S3 profile: the hardened client must
    // survive the declared-throttle + ambiguity mix on a backend whose
    // rejections are `SlowDown`, not `ServerBusy`.
    let cfg = VerifyConfig {
        backend: BackendKind::S3,
        ..tiny(true)
    };
    let report = chaos_search(&cfg, &[3, 9], 2);
    assert!(
        report.failure.is_none(),
        "hardened policy violated an invariant under s3 boundary chaos: {:?}",
        report.failure.map(|f| f.violations)
    );
}

#[test]
fn dead_letter_accounting_holds_under_ack_loss() {
    let cfg = VerifyConfig {
        poison: 3,
        ..tiny(true)
    };
    let plan = FaultPlan {
        seed: 7,
        ack_loss_prob: 0.1,
        ..FaultPlan::default()
    };
    let outcome = run_verify(&cfg, &plan);
    assert!(
        outcome.violations.is_empty(),
        "poison accounting violated: {:?}",
        outcome.violations
    );
    assert!(
        outcome.poison_parked >= 1,
        "at least one poison copy must be parked on the dead-letter queue"
    );
    // Ack loss actually fired: the plan is not a no-op.
    assert!(outcome.ambiguous_executed + outcome.ambiguous_lost > 0);
}
