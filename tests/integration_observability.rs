//! Integration: phase-level observability under chaos.
//!
//! A queue workload runs against a cluster with a seeded [`FaultPlan`]
//! (partition-server crash, `ServerBusy` storm, random drops) and full
//! tracing enabled. The tests pin down the span model's core invariants:
//!
//! * every trace record's phase breadcrumb partitions its latency
//!   *exactly* — integer-nanosecond virtual time leaves no rounding gap;
//! * rejected operations (throttled, faulted, timed-out) carry the
//!   rejection breadcrumb and never claim server-side phase time;
//! * client-side retry waits surface as `retry_backoff` spans that fold
//!   into the aggregate, matching the policy's own retry counter;
//! * the merged profile reconciles: per class, the sum over server-side
//!   phases equals the end-to-end sum up to float accumulation.

use azsim_client::{Environment, QueueClient, ResilientPolicy, RetrySpan, VirtualEnv};
use azsim_core::{SimTime, Simulation};
use azsim_fabric::{
    BusyStorm, Cluster, ClusterParams, FaultPlan, Phase, PhaseAggregate, ServerCrash, TraceOutcome,
    TraceRecord,
};
use azsim_storage::PartitionKey;
use azurebench::profile::run_profile;
use azurebench::BenchConfig;
use std::rc::Rc;
use std::time::Duration;

const QUEUE: &str = "obs";
const WORKERS: usize = 4;
const OPS: usize = 400;

/// Storm early (t=0.3 s, 0.5 s long), crash the queue's server at t=1.5 s
/// (1.5 s failover), and drop ~2% of requests — enough chaos to exercise
/// every outcome within the workload's few virtual seconds.
fn chaos_plan(params: &ClusterParams) -> FaultPlan {
    let server = PartitionKey::Queue {
        queue: QUEUE.into(),
    }
    .server_index(params.servers);
    FaultPlan {
        seed: 11,
        crashes: vec![ServerCrash {
            server,
            at: SimTime(1_500_000_000),
            failover: Duration::from_millis(1500),
        }],
        busy_storms: vec![BusyStorm {
            at: SimTime(300_000_000),
            duration: Duration::from_millis(500),
            retry_after: Duration::from_millis(100),
        }],
        timeout_prob: 0.02,
        ..FaultPlan::default()
    }
}

/// Drive the chaos workload with tracing on; return the trace records and
/// each worker's `(retry spans, policy retry counter)`.
fn run_chaos_traced(seed: u64) -> (Vec<TraceRecord>, Vec<(Vec<RetrySpan>, u64)>) {
    let params = ClusterParams::default();
    let plan = chaos_plan(&params);
    let mut cluster = Cluster::new(params);
    cluster.set_fault_plan(plan);
    cluster.enable_tracing(WORKERS * OPS * 4 + 1024);

    let sim = Simulation::new(cluster, seed);
    let report = sim.run_workers(WORKERS, move |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        let me = env.instance();
        let policy = Rc::new(
            ResilientPolicy::new(seed ^ me as u64)
                .with_max_attempts(6)
                .with_span_log(),
        );
        let queue = QueueClient::new(&env, QUEUE).with_policy(policy.clone());
        let _ = queue.create().await;
        for _ in 0..OPS {
            let _ = queue.put_message(bytes::Bytes::from(vec![0u8; 4096])).await;
            if let Ok(Some(m)) = queue.get_message().await {
                let _ = queue.delete_message(&m).await;
            }
        }
        (policy.take_retry_spans(), policy.stats().retries)
    });
    (
        report.model.tracer().unwrap().records().to_vec(),
        report.results,
    )
}

#[test]
fn breadcrumbs_partition_latency_exactly_for_every_outcome() {
    let (records, _) = run_chaos_traced(2012);
    assert!(!records.is_empty());

    let mut seen = [false; TraceOutcome::COUNT];
    for r in &records {
        seen[r.outcome.index()] = true;
        // The partition invariant: phases sum to the record's latency with
        // no rounding gap at all (integer-nanosecond virtual time).
        assert_eq!(
            r.phases.total(),
            r.latency(),
            "phase gap in {:?} {:?} record",
            r.class,
            r.outcome
        );
        match r.outcome {
            TraceOutcome::Ok | TraceOutcome::Failed => {
                assert_eq!(
                    r.phases.get(Phase::Rejection),
                    Duration::ZERO,
                    "served ops must not carry rejection time"
                );
                assert!(
                    r.phases.get(Phase::Service) > Duration::ZERO,
                    "served ops must record service time"
                );
            }
            TraceOutcome::Throttled | TraceOutcome::Faulted | TraceOutcome::TimedOut => {
                assert!(
                    r.phases.get(Phase::Rejection) > Duration::ZERO,
                    "{:?} record must carry the rejection breadcrumb",
                    r.outcome
                );
                for p in [
                    Phase::QueueWait,
                    Phase::Service,
                    Phase::ReplicaSync,
                    Phase::Transfer,
                ] {
                    assert_eq!(
                        r.phases.get(p),
                        Duration::ZERO,
                        "{:?} record must not claim server-side {:?} time",
                        r.outcome,
                        p
                    );
                }
            }
        }
        // Server-side records never contain client-side backoff.
        assert_eq!(r.phases.get(Phase::RetryBackoff), Duration::ZERO);
    }
    // The plan must actually have produced the interesting outcomes.
    for outcome in [
        TraceOutcome::Ok,
        TraceOutcome::Throttled,
        TraceOutcome::Faulted,
        TraceOutcome::TimedOut,
    ] {
        assert!(seen[outcome.index()], "no {outcome:?} record in trace");
    }
}

#[test]
fn retry_waits_surface_as_retry_phase_spans() {
    let (_, results) = run_chaos_traced(7);
    let mut agg = PhaseAggregate::new();
    let mut total_spans = 0u64;
    let mut total_retries = 0u64;
    for (spans, retries) in &results {
        // The span log and the policy's counter are two views of the same
        // events.
        assert_eq!(spans.len() as u64, *retries);
        total_retries += retries;
        for s in spans {
            assert!(s.wait > Duration::ZERO);
            assert!(s.attempt >= 1);
            agg.record_retry(s.class, s.wait);
            total_spans += 1;
        }
    }
    assert!(
        total_retries > 0,
        "the chaos plan must force at least one retry"
    );
    // Folded into the aggregate, the spans appear as the retry_backoff
    // phase — and only there.
    let mut backoff_count = 0u64;
    for (_, stats) in agg.iter() {
        backoff_count += stats.phase(Phase::RetryBackoff).count();
        assert_eq!(stats.end_to_end().count(), 0);
        assert_eq!(stats.phase(Phase::Service).count(), 0);
    }
    assert_eq!(backoff_count, total_spans);
}

#[test]
fn chaos_trace_replays_identically() {
    let a = run_chaos_traced(99);
    let b = run_chaos_traced(99);
    assert_eq!(a.0.len(), b.0.len());
    for (x, y) in a.0.iter().zip(&b.0) {
        assert_eq!(x.issued, y.issued);
        assert_eq!(x.completed, y.completed);
        assert_eq!(x.outcome, y.outcome);
        assert_eq!(x.phases, y.phases);
    }
    assert_eq!(a.1, b.1);
}

#[test]
fn timeline_counters_reconcile_with_trace_records() {
    // The sampled counter series is a downsampled view of the very same
    // events the tracer retains: summing every `ops.submitted` bucket delta
    // must recover exactly the number of trace records, and the throttle
    // deltas exactly the throttled subset — downsampling loses resolution,
    // never mass.
    let cfg = BenchConfig::quick();
    let report = azurebench::timeline::run_timeline(&cfg, 4, 30);
    let delta_sum = |name: &str| -> f64 {
        report
            .recorder()
            .counters()
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("{name} counter series missing"))
            .series
            .series()
            .iter()
            .map(|(_, b)| b.sum)
            .sum()
    };
    let submitted = delta_sum("ops.submitted");
    assert!(submitted > 0.0, "no submissions sampled");
    assert_eq!(
        submitted as usize,
        report.records().len(),
        "submitted deltas must sum to the traced operation count"
    );
    let throttled = delta_sum("ops.throttled");
    let throttled_records = report
        .records()
        .iter()
        .filter(|r| r.outcome == TraceOutcome::Throttled)
        .count();
    assert_eq!(throttled as usize, throttled_records);
}

#[test]
fn bottleneck_pass_attributes_documented_limits_on_three_figures() {
    // The acceptance bar for the attribution pass: at the top of the
    // ladder, at least three distinct paper figures pin a saturated (or
    // actively throttling) documented limit, and the verdicts name it.
    let cfg = BenchConfig::quick().with_sweep_threads(0);
    let report = azurebench::bottleneck::run_bottlenecks(&cfg, &[64]);
    let attributed: Vec<&str> = report
        .points
        .iter()
        .filter(|p| !p.verdict.contains("no saturated resource"))
        .map(|p| p.figure.as_str())
        .collect();
    assert!(
        attributed.len() >= 3,
        "only {} figures attributed: {attributed:?}",
        attributed.len()
    );
    for figure in ["fig7", "fig6", "fig8", "fig4"] {
        assert!(
            report.points.iter().any(|p| p.figure == figure),
            "missing scenario for {figure}"
        );
    }
    // Every verdict names the top-ranked resource or, when nothing stays
    // time-saturated, the heaviest throttler among the ranked rows.
    for p in &report.points {
        if let Some(top) = p.ranked.first() {
            let throttler = p.ranked.iter().max_by_key(|r| r.throttled);
            let named = p.verdict.contains(&top.resource)
                || p.verdict.contains("no saturated")
                || throttler.is_some_and(|t| t.throttled > 0 && p.verdict.contains(&t.resource));
            assert!(
                named,
                "verdict {:?} names neither {} nor the heaviest throttler",
                p.verdict, top.resource
            );
        }
    }
}

#[test]
fn profile_phases_reconcile_per_class() {
    let cfg = BenchConfig::paper().with_scale(0.05).with_sweep_threads(1);
    let report = run_profile(&cfg, &[1, 2, 4], 12);
    let mut classes = 0;
    for (class, stats) in report.merged().iter() {
        classes += 1;
        let e2e = stats.end_to_end();
        assert!(e2e.count() > 0, "{class:?} empty");
        // Per class, server-side phase time partitions end-to-end time.
        let gap = (stats.phase_sum() - e2e.sum()).abs();
        assert!(
            gap <= 1e-9 * e2e.sum().max(1.0),
            "{class:?}: phase sum {} vs end-to-end {}",
            stats.phase_sum(),
            e2e.sum()
        );
        // Quantiles come out of the histogram ordered.
        let (p50, p95, p99) = (e2e.quantile(0.5), e2e.quantile(0.95), e2e.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{class:?} quantiles unordered");
    }
    assert!(classes >= 8, "mixed workload should cover many classes");
    let (phase_sum, e2e_sum) = report.reconciliation();
    assert!(e2e_sum > 0.0);
    assert!((phase_sum - e2e_sum).abs() <= 1e-9 * e2e_sum);
}
