//! Integration: Algorithm 1 (blob benchmark) end to end, plus blob
//! semantics exercised through the full stack (client → fabric → service)
//! at small scale.

use azsim_client::{BlobClient, VirtualEnv};
use azsim_core::Simulation;
use azsim_fabric::{Cluster, ClusterParams};
use azurebench::alg1_blob::{phase, run_alg1, BlobPhase};
use azurebench::BenchConfig;
use bytes::Bytes;

fn tiny(workers: Vec<usize>) -> BenchConfig {
    BenchConfig::paper().with_scale(0.05).with_workers(workers)
}

#[test]
fn alg1_runs_and_respects_paper_shapes_small_scale() {
    let cfg = tiny(vec![4]);
    let aggs = run_alg1(&cfg, 4);

    // Shape 1 (Fig 4): page upload beats block upload.
    assert!(
        phase(&aggs, BlobPhase::PageUpload).throughput_mb_s
            > phase(&aggs, BlobPhase::BlockUpload).throughput_mb_s
    );
    // Shape 2 (Fig 5): sequential block reads beat random page reads.
    assert!(
        phase(&aggs, BlobPhase::BlockSeqRead).throughput_mb_s
            > phase(&aggs, BlobPhase::PageRandomRead).throughput_mb_s
    );
}

#[test]
fn download_time_grows_and_throughput_grows_with_workers() {
    // Fig 4's twin claims: per-worker download time rises with workers
    // (everyone downloads everything from shared blobs) while aggregate
    // download throughput also rises.
    let cfg = tiny(vec![1]);
    let w1 = run_alg1(&cfg, 1);
    let w8 = run_alg1(&cfg, 8);
    let t1 = phase(&w1, BlobPhase::BlockFullDownload).mean_worker_seconds;
    let t8 = phase(&w8, BlobPhase::BlockFullDownload).mean_worker_seconds;
    assert!(
        t8 >= t1 * 0.99,
        "download time must not shrink: {t1} -> {t8}"
    );
    let x1 = phase(&w1, BlobPhase::BlockFullDownload).throughput_mb_s;
    let x8 = phase(&w8, BlobPhase::BlockFullDownload).throughput_mb_s;
    assert!(
        x8 > x1 * 2.0,
        "aggregate throughput must grow: {x1} -> {x8}"
    );
}

#[test]
fn upload_time_falls_with_workers() {
    // Fig 4: per-worker upload time falls as the fixed blob is split over
    // more uploaders.
    let cfg = tiny(vec![1]);
    let w1 = run_alg1(&cfg, 1);
    let w4 = run_alg1(&cfg, 4);
    for p in [BlobPhase::PageUpload, BlobPhase::BlockUpload] {
        let t1 = phase(&w1, p).mean_worker_seconds;
        let t4 = phase(&w4, p).mean_worker_seconds;
        assert!(t4 < t1, "{p:?}: upload time must fall: {t1} -> {t4}");
    }
}

#[test]
fn blob_content_integrity_through_full_stack() {
    // Round-trip content correctness under concurrent chunked upload.
    let n = 4usize;
    let chunk = 64 * 1024usize;
    let sim = Simulation::new(Cluster::new(ClusterParams::default()), 5);
    let report = sim.run_workers(n, move |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        let c = BlobClient::new(&env, "it");
        c.create_container().await.unwrap();
        let me = ctx.id().0;
        // Each worker writes a distinct fill pattern into its share.
        c.put_block(
            "shared",
            format!("{me:02}"),
            Bytes::from(vec![me as u8 + 1; chunk]),
        )
        .await
        .unwrap();
        me
    });
    let mut model = report.model;
    let (_, r) = model.submit(
        report.end_time,
        0,
        &azsim_storage::StorageRequest::PutBlockList {
            container: "it".into(),
            blob: "shared".into(),
            block_ids: (0..n).map(|i| format!("{i:02}")).collect(),
        },
    );
    r.unwrap();
    let (_, r) = model.submit(
        report.end_time,
        0,
        &azsim_storage::StorageRequest::DownloadBlob {
            container: "it".into(),
            blob: "shared".into(),
        },
    );
    let data = match r.unwrap() {
        azsim_storage::StorageOk::Data(d) => d,
        other => panic!("expected data, got {other:?}"),
    };
    assert_eq!(data.len(), n * chunk);
    for i in 0..n {
        assert!(
            data[i * chunk..(i + 1) * chunk]
                .iter()
                .all(|&b| b == i as u8 + 1),
            "chunk {i} corrupted"
        );
    }
}

#[test]
fn per_blob_write_pipe_caps_aggregate_upload() {
    // Many workers writing pages of ONE blob cannot exceed the 60 MB/s
    // per-blob target by much (burst effects aside), while writing to
    // DIFFERENT blobs scales past it.
    let chunk = 1 << 20;
    let run = |shared: bool| {
        let sim = Simulation::new(Cluster::new(ClusterParams::default()), 6);
        let workers = 16usize;
        let report = sim.run_workers(workers, move |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let c = BlobClient::new(&env, "cap");
            c.create_container().await.unwrap();
            let blob = if shared {
                "one".to_owned()
            } else {
                format!("many-{}", ctx.id().0)
            };
            c.create_page_blob(&blob, (8 * chunk) as u64).await.unwrap();
            let t0 = ctx.now();
            for i in 0..8u64 {
                c.put_page(
                    &blob,
                    i * chunk as u64,
                    Bytes::from(vec![1u8; chunk as usize]),
                )
                .await
                .unwrap();
            }
            (t0, ctx.now())
        });
        let start = report.results.iter().map(|(s, _)| *s).min().unwrap();
        let end = report.results.iter().map(|(_, e)| *e).max().unwrap();
        let bytes = 16.0 * 8.0; // MB
        bytes / end.saturating_since(start).as_secs_f64()
    };
    let shared = run(true);
    let separate = run(false);
    assert!(
        shared < 75.0,
        "single-blob upload must respect the ~60 MB/s pipe, got {shared:.1}"
    );
    assert!(
        separate > shared * 1.5,
        "separate blobs ({separate:.1}) must scale past one blob ({shared:.1})"
    );
}
