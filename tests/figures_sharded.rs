//! Integration: the sharded executor is observably invisible.
//!
//! The contract (see `azsim-core`'s `shard` module and DESIGN.md): at every
//! shard count, the sharded executor reproduces the serial executor's
//! `(time, actor, seq)` event history bit for bit — so every figure CSV,
//! every metric, and every history fingerprint in the suite is identical
//! whether the simulation ran on one thread or eight. These tests pin that
//! contract at the outermost layer, the figure harness itself.

use azsim_client::VirtualEnv;
use azsim_core::shard::{ShardPlan, ShardedSimulation};
use azsim_core::Simulation;
use azsim_fabric::Cluster;
use azurebench::{alg1_blob, alg3_queue, alg4_queue, alg5_table, fig9, fleet, BenchConfig};

/// All 15 committed figure CSVs at one shard count.
fn figure_csvs(cfg: &BenchConfig) -> Vec<(String, String)> {
    let blob = alg1_blob::figures_4_and_5(cfg);
    let f6 = alg3_queue::figure_6(cfg);
    let f7 = alg4_queue::figure_7(cfg);
    let f8 = alg5_table::figure_8(cfg);
    let f9 = fig9::figure_9(cfg);
    blob.iter()
        .chain(&f6)
        .chain(&f7)
        .chain(&f8)
        .chain([&f9])
        .map(|f| (f.id.clone(), f.to_csv()))
        .collect()
}

#[test]
fn all_figure_csvs_are_bit_identical_at_every_shard_count() {
    let base = BenchConfig::paper()
        .with_scale(0.01)
        .with_workers(vec![1, 4]);
    let serial = figure_csvs(&base);
    assert_eq!(serial.len(), 15, "expected the full 15-figure suite");
    for shards in [2u32, 4] {
        let sharded = figure_csvs(&base.clone().with_shards(shards));
        for ((id_a, csv_a), (id_b, csv_b)) in serial.iter().zip(&sharded) {
            assert_eq!(id_a, id_b);
            assert_eq!(
                csv_a, csv_b,
                "{id_a} CSV changed between --shards 1 and --shards {shards}"
            );
        }
    }
}

#[test]
fn cluster_history_fingerprint_is_identical_at_every_shard_count() {
    // Below the CSV layer: the full (time, actor, seq) event multiset of a
    // mixed queue workload over the coupled single-account Cluster, hashed.
    let body = |ctx: azsim_core::runtime::ActorCtx<Cluster>| async move {
        let env = VirtualEnv::new(&ctx);
        let q = azsim_client::QueueClient::new(&env, format!("h{}", ctx.id().0 % 3));
        q.create().await.unwrap();
        for i in 0..12u32 {
            let jitter: u64 = ctx.with_rng(|r| rand::Rng::random_range(r, 0..10_000));
            ctx.sleep(std::time::Duration::from_micros(jitter)).await;
            q.put_message(bytes::Bytes::from(i.to_le_bytes().to_vec()))
                .await
                .unwrap();
            if let Some(m) = q.get_message().await.unwrap() {
                q.delete_message(&m).await.unwrap();
            }
        }
        ctx.now()
    };
    let serial = Simulation::new(Cluster::with_defaults(), 77)
        .record_history()
        .run_workers(6, body);
    assert!(serial.history_hash.is_some());
    for shards in [2u32, 4] {
        let plan = ShardPlan::colocated(6).with_shards(shards);
        let shd = ShardedSimulation::new(Cluster::with_defaults(), 77, plan)
            .record_history()
            .run_workers(body);
        assert_eq!(serial.history_hash, shd.history_hash);
        assert_eq!(serial.results, shd.results);
        assert_eq!(serial.end_time, shd.end_time);
        assert_eq!(serial.requests, shd.requests);
        assert_eq!(
            serial.model.metrics().total_completed(),
            shd.model.metrics().total_completed()
        );
    }
}

#[test]
fn fleet_figure_is_bit_identical_and_actually_crosses_tenants() {
    // The fleet scenario is the one where shards genuinely run in parallel
    // and exchange messages under lookahead windows — the strongest
    // exercise of the conservative sync protocol.
    let base = BenchConfig::quick().with_scale(0.02);
    let serial = fleet::figure_fleet(&base);
    for shards in [2u32, 4] {
        let sharded = fleet::figure_fleet(&base.clone().with_shards(shards));
        assert_eq!(serial.len(), sharded.len());
        for (a, b) in serial.iter().zip(&sharded) {
            assert_eq!(
                a.to_csv(),
                b.to_csv(),
                "fleet CSV changed at --shards {shards}"
            );
        }
    }
    // The workload must exercise the cross-partition path, or the parity
    // above proves nothing about windowed synchronization.
    let r = fleet::run_fleet(&base, 4, 2);
    assert!(r.cross_ops > 0, "fleet workload never crossed tenants");
}

#[test]
fn fleet_windows_really_run_on_every_shard() {
    // Guard against a regression where the sharded path silently degrades
    // to everything-on-shard-0: with 4 tenants striped over 4 shards, every
    // shard must process events.
    let cfg = BenchConfig::quick().with_scale(0.02).with_shards(4);
    let r = fleet::run_fleet(&cfg, 4, 2);
    assert_eq!(r.shard_events.len(), 4);
    for (shard, events) in r.shard_events.iter().enumerate() {
        assert!(*events > 0, "shard {shard} processed no events");
    }
}
