//! Integration: Algorithm 2 (queue-based barrier) under stress — many
//! workers, many phases, and the paper's message-accounting subtlety.

use azsim_client::{QueueClient, VirtualEnv};
use azsim_core::{SimTime, Simulation};
use azsim_fabric::{Cluster, ClusterParams};
use azsim_framework::QueueBarrier;
use std::time::Duration;

#[test]
fn barrier_holds_for_many_workers_and_phases() {
    let n = 24usize;
    let phases = 4usize;
    let sim = Simulation::new(Cluster::with_defaults(), 7);
    let report = sim.run_workers(n, move |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        let mut b = QueueBarrier::new(&env, "stress", n);
        b.init().await.unwrap();
        let mut log: Vec<(SimTime, SimTime)> = Vec::new();
        for p in 0..phases {
            // Deterministic skew: a different straggler each phase.
            let skew = ((ctx.id().0 + p) % n) as u64 * 50;
            ctx.sleep(Duration::from_millis(skew)).await;
            let arrived = ctx.now();
            b.wait().await.unwrap();
            log.push((arrived, ctx.now()));
        }
        log
    });
    // Barrier property per phase: nobody leaves before everyone arrived.
    for p in 0..phases {
        let last_arrival = report.results.iter().map(|l| l[p].0).max().unwrap();
        for l in &report.results {
            assert!(
                l[p].1 >= last_arrival,
                "phase {p}: left {} before last arrival {last_arrival}",
                l[p].1
            );
        }
        // And phases are totally ordered: everyone leaves phase p before
        // anyone leaves phase p+1... (trivially true, but nobody may enter
        // p+1 before all left p's arrival point).
        if p + 1 < phases {
            let earliest_next_arrival = report.results.iter().map(|l| l[p + 1].0).min().unwrap();
            assert!(earliest_next_arrival >= last_arrival);
        }
    }
}

#[test]
fn barrier_polling_respects_queue_throttle() {
    // Aggressive polling (no sleep) from many workers would throttle the
    // count requests; the paper's 1 s back-off keeps polling cheap. Verify
    // the default barrier stays clear of ServerBusy on the sync queue.
    let n = 16usize;
    let sim = Simulation::new(
        Cluster::new(ClusterParams {
            throttle_burst: 20.0,
            ..ClusterParams::default()
        }),
        8,
    );
    let report = sim.run_workers(n, move |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        let mut b = QueueBarrier::new(&env, "pollsync", n);
        b.init().await.unwrap();
        // One severe straggler forces everyone else to poll for 30 s.
        if ctx.id().0 == 0 {
            ctx.sleep(Duration::from_secs(30)).await;
        }
        b.wait().await.unwrap();
    });
    let m = report.model.metrics();
    // 15 workers polling 1/s for ~30 s = ~450 count requests; under the
    // 500/s bucket, so no throttling.
    assert_eq!(m.total_throttled(), 0, "1 s polling must not throttle");
    assert!(report.end_time >= SimTime::from_secs(30));
}

#[test]
fn deleting_markers_would_break_the_barrier_accounting() {
    // Demonstrates the paper's subtlety: the barrier waits for
    // workers × synccount messages precisely BECAUSE markers from earlier
    // phases stay in the queue. Verify the count matches that model.
    let n = 5usize;
    let phases = 3usize;
    let sim = Simulation::new(Cluster::with_defaults(), 9);
    let report = sim.run_workers(n, move |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        let mut b = QueueBarrier::new(&env, "acct", n);
        b.init().await.unwrap();
        let q = QueueClient::new(&env, "acct");
        let mut counts = Vec::new();
        for _ in 0..phases {
            b.wait().await.unwrap();
            counts.push(q.message_count().await.unwrap());
        }
        counts
    });
    for l in &report.results {
        for (p, &c) in l.iter().enumerate() {
            // After crossing phase p (0-based), at least n*(p+1) markers
            // exist (stragglers of the *next* phase may already have added
            // theirs, so allow more).
            assert!(
                c >= n * (p + 1),
                "after phase {p}: count {c} < {}",
                n * (p + 1)
            );
            assert!(c <= n * phases);
        }
    }
}

#[test]
fn two_independent_barriers_do_not_interfere() {
    let n = 8usize; // 4 in group a, 4 in group b
    let sim = Simulation::new(Cluster::with_defaults(), 10);
    let report = sim.run_workers(n, move |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        let group = if ctx.id().0 < 4 { "a" } else { "b" };
        let mut b = QueueBarrier::new(&env, format!("grp-{group}"), 4);
        b.init().await.unwrap();
        // Group b is globally slower; group a must not wait for it.
        if group == "b" {
            ctx.sleep(Duration::from_secs(60)).await;
        }
        b.wait().await.unwrap();
        ctx.now()
    });
    let a_max = report.results[..4].iter().max().unwrap();
    let b_min = report.results[4..].iter().min().unwrap();
    assert!(
        *a_max < *b_min,
        "group a ({a_max}) must finish before group b starts crossing ({b_min})"
    );
}
