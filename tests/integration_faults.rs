//! Integration: fault injection end to end.
//!
//! A bag of tasks is drained from a shared queue while a seeded
//! [`FaultPlan`] crashes the queue's partition server and injects a
//! cluster-wide `ServerBusy` storm. The stack under test spans every
//! layer added for fault tolerance: the fabric's `FaultInjector`, the
//! client's `ResilientPolicy` (jittered backoff, deadlines, breaker) and
//! the framework's visibility-timeout + dead-letter task queue.
//!
//! Guarantees asserted here:
//! * **no task loss** — every submitted task completes despite the faults;
//! * **deterministic replay** — two runs with the same seed produce
//!   identical results and identical fault/metric counters.

use azsim_client::{Environment, ResilientPolicy, VirtualEnv};
use azsim_core::{SimTime, Simulation};
use azsim_fabric::{BusyStorm, Cluster, ClusterParams, FaultMetrics, FaultPlan, ServerCrash};
use azsim_framework::TaskQueue;
use azsim_storage::PartitionKey;
use azurebench::chaos::run_chaos;
use azurebench::BenchConfig;
use serde::{Deserialize, Serialize};
use std::rc::Rc;
use std::time::Duration;

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct Item {
    id: u32,
}

const QUEUE: &str = "bag";
const TASKS: u32 = 60;
const WORKERS: usize = 4;

/// Crash the bag's partition server at t=1 s (3 s failover) and throw a
/// 2 s `ServerBusy` storm at t=6 s, plus a sprinkle of dropped requests.
fn crash_and_storm_plan(params: &ClusterParams) -> FaultPlan {
    let server = PartitionKey::Queue {
        queue: QUEUE.into(),
    }
    .server_index(params.servers);
    FaultPlan {
        seed: 7,
        crashes: vec![ServerCrash {
            server,
            at: SimTime::from_secs(1),
            failover: Duration::from_secs(3),
        }],
        busy_storms: vec![BusyStorm {
            at: SimTime::from_secs(6),
            duration: Duration::from_secs(2),
            retry_after: Duration::from_millis(250),
        }],
        timeout_prob: 0.005,
        ..FaultPlan::default()
    }
}

/// One full bag-of-tasks run under the fault plan. Returns the sorted
/// completed ids, the per-run fault counters and the virtual makespan.
fn run_bag(seed: u64) -> (Vec<u32>, FaultMetrics, u64) {
    let params = ClusterParams::default();
    let plan = crash_and_storm_plan(&params);
    let mut cluster = Cluster::new(params);
    cluster.set_fault_plan(plan);

    let sim = Simulation::new(cluster, seed);
    let report = sim.run_workers(WORKERS, move |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        let me = env.instance();
        let policy = Rc::new(
            ResilientPolicy::new(seed ^ me as u64)
                .with_max_attempts(10)
                .with_deadline(Duration::from_secs(120)),
        );
        let tq: TaskQueue<'_, _, Item> = TaskQueue::new(&env, QUEUE)
            .with_visibility(Duration::from_secs(60))
            .with_policy(policy);
        tq.init().await.unwrap();
        if me == 0 {
            for id in 0..TASKS {
                while tq.submit(&Item { id }).await.is_err() {
                    env.sleep(Duration::from_secs(1)).await;
                }
            }
        }
        let mut done = Vec::new();
        let mut idle = 0;
        while idle < 5 {
            match tq.claim().await {
                Ok(Some(claimed)) => {
                    idle = 0;
                    env.sleep(Duration::from_millis(10)).await;
                    if tq.complete(&claimed).await.is_ok() {
                        done.push(claimed.task.id);
                    }
                }
                Ok(None) => {
                    idle += 1;
                    env.sleep(Duration::from_secs(1)).await;
                }
                Err(_) => env.sleep(Duration::from_secs(1)).await,
            }
        }
        (done, env.now().as_nanos())
    });

    let faults = *report.model.fault_metrics();
    let mut ids: Vec<u32> = Vec::new();
    let mut makespan = 0u64;
    for (done, end) in report.results {
        ids.extend(done);
        makespan = makespan.max(end);
    }
    ids.sort_unstable();
    ids.dedup();
    (ids, faults, makespan)
}

#[test]
fn bag_survives_crash_and_storm_without_task_loss() {
    let (ids, faults, _) = run_bag(2012);
    let expect: Vec<u32> = (0..TASKS).collect();
    assert_eq!(ids, expect, "every task must complete at least once");
    assert!(
        faults.crash_faults > 0,
        "the crash window must actually reject requests: {faults:?}"
    );
    assert!(
        faults.injected_busy > 0,
        "the storm must actually reject requests: {faults:?}"
    );
}

#[test]
fn same_seed_replays_identically() {
    let a = run_bag(99);
    let b = run_bag(99);
    assert_eq!(a, b, "same-seed runs must replay bit-identically");
}

#[test]
fn different_seeds_still_lose_nothing() {
    let (ids, _, _) = run_bag(4242);
    assert_eq!(ids.len() as u32, TASKS);
}

#[test]
fn chaos_scenario_is_lossless_and_deterministic() {
    let cfg = BenchConfig::paper().with_scale(0.02);
    let a = run_chaos(&cfg, 3, 0.8);
    assert_eq!(a.lost, 0);
    assert!(a.injected_faults > 0);
    let b = run_chaos(&cfg, 3, 0.8);
    assert_eq!(a, b, "chaos metrics must replay identically");
}
