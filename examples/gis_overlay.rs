//! A Crayons-style GIS overlay workload (the paper's reference [9]): the
//! scientific application whose development motivated AzureBench.
//!
//! The web role partitions two polygon layers into spatial cells, uploads
//! each cell's geometry to Blob storage as a block blob, and enqueues one
//! task per cell carrying only the *blob name* (the paper's guidance for
//! payloads beyond the 48 KB message limit). Worker roles fetch their
//! cell's geometry from Blob storage, compute the polygon-overlay
//! intersection areas with rayon-parallel local compute, store per-cell
//! results in Table storage, and signal the termination-indicator queue.
//!
//! ```text
//! cargo run --release -p azurebench --example gis_overlay
//! ```

use azsim_client::{BlobClient, TableClient, VirtualEnv};
use azsim_compute::{Deployment, VmSize};
use azsim_fabric::ClusterParams;
use azsim_framework::BagOfTasks;
use azsim_storage::{Entity, PropValue};
use bytes::Bytes;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// An axis-aligned rectangle (a degenerate but honest polygon — enough to
/// exercise the overlay data path end to end).
#[derive(Serialize, Deserialize, Clone, Copy, Debug)]
struct Rect {
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
}

impl Rect {
    fn area(&self) -> f64 {
        (self.x1 - self.x0).max(0.0) * (self.y1 - self.y0).max(0.0)
    }

    fn intersect(&self, o: &Rect) -> Rect {
        Rect {
            x0: self.x0.max(o.x0),
            y0: self.y0.max(o.y0),
            x1: self.x1.min(o.x1),
            y1: self.y1.min(o.y1),
        }
    }
}

/// One spatial cell's worth of work: where to find its two layers.
#[derive(Serialize, Deserialize, Clone)]
struct CellTask {
    cell: u32,
    blob_a: String,
    blob_b: String,
}

const CELLS: u32 = 24;
const RECTS_PER_LAYER: usize = 200;

fn random_layer(seed: u64, n: usize) -> Vec<Rect> {
    let mut rng = azsim_core::rng::stream_rng(seed, 1);
    (0..n)
        .map(|_| {
            let x0: f64 = rand::Rng::random_range(&mut rng, 0.0..100.0);
            let y0: f64 = rand::Rng::random_range(&mut rng, 0.0..100.0);
            let w: f64 = rand::Rng::random_range(&mut rng, 0.1..5.0);
            let h: f64 = rand::Rng::random_range(&mut rng, 0.1..5.0);
            Rect {
                x0,
                y0,
                x1: x0 + w,
                y1: y0 + h,
            }
        })
        .collect()
}

fn main() {
    let report = Deployment::new(ClusterParams::default(), 777)
        .with_role("web", 1, VmSize::Large, |ctx, _meta| async move {
            let env = VirtualEnv::new(&ctx);
            let blobs = BlobClient::new(&env, "gis");
            blobs.create_container().await.unwrap();
            let bag: BagOfTasks<'_, _, CellTask> = BagOfTasks::new(&env, "gis");
            bag.init().await.unwrap();
            let results = TableClient::new(&env, "overlay");
            results.create_table().await.unwrap();

            // Partition phase: one blob per (cell, layer).
            let mut tasks = Vec::new();
            for cell in 0..CELLS {
                for (layer, name) in ["a", "b"].iter().enumerate() {
                    let rects = random_layer(u64::from(cell) * 2 + layer as u64, RECTS_PER_LAYER);
                    let payload = serde_json::to_vec(&rects).unwrap();
                    blobs
                        .upload(&format!("cell-{cell}-{name}"), Bytes::from(payload))
                        .await
                        .unwrap();
                }
                tasks.push(CellTask {
                    cell,
                    blob_a: format!("cell-{cell}-a"),
                    blob_b: format!("cell-{cell}-b"),
                });
            }
            let submitted = bag.submit_all(tasks).await.unwrap();
            println!("[web] partitioned {CELLS} cells, submitted {submitted} tasks");

            let done = bag.wait_all(submitted).await.unwrap();
            println!("[web] overlay complete: {done} signals");

            // Collect the total intersection area.
            let rows = results.query_partition("area").await.unwrap();
            let total: f64 = rows
                .iter()
                .map(|(e, _)| match &e.properties["value"] {
                    PropValue::F64(v) => *v,
                    _ => unreachable!(),
                })
                .sum();
            println!("[web] total intersection area: {total:.2}");
            assert_eq!(rows.len(), CELLS as usize);
            assert!(total > 0.0, "random layers must intersect somewhere");
            total
        })
        .with_role("worker", 6, VmSize::Medium, |ctx, meta| async move {
            let env = VirtualEnv::new(&ctx);
            let blobs = BlobClient::new(&env, "gis");
            blobs.create_container().await.unwrap();
            let bag: BagOfTasks<'_, _, CellTask> = BagOfTasks::new(&env, "gis");
            bag.init().await.unwrap();
            let results = TableClient::new(&env, "overlay");
            results.create_table().await.unwrap();

            // Patient idle budget: the web role spends several virtual
            // seconds uploading cell geometry before any task appears.
            let r = bag
                .run_worker(20, Duration::from_secs(2), &env, async |task, _attempt| {
                    // I/O phase: fetch both layers from Blob storage.
                    let a: Vec<Rect> =
                        serde_json::from_slice(&blobs.download(&task.blob_a).await.unwrap())
                            .unwrap();
                    let b: Vec<Rect> =
                        serde_json::from_slice(&blobs.download(&task.blob_b).await.unwrap())
                            .unwrap();
                    // Compute phase: rayon-parallel pairwise overlay.
                    let area: f64 = a
                        .par_iter()
                        .map(|ra| b.iter().map(|rb| ra.intersect(rb).area()).sum::<f64>())
                        .sum();
                    results
                        .insert(
                            Entity::new("area", task.cell.to_string())
                                .with("value", PropValue::F64(area))
                                .with("worker", PropValue::I64(meta.actor as i64)),
                        )
                        .await
                        .unwrap();
                })
                .await
                .unwrap();
            println!("[worker {}] overlaid {} cells", meta.instance, r.processed);
            r.processed as f64
        })
        .run();

    let processed: usize = report.results[1..].iter().map(|v| *v as usize).sum();
    println!(
        "\n{processed} cells overlaid in {:.1} virtual seconds",
        report.end_time.as_secs_f64()
    );
}
