//! Fault tolerance through visibility timeouts (paper §IV-B).
//!
//! "Equipped with these properties, queues can easily facilitate the
//! behavior of a shared task pool with in-built fault tolerance
//! mechanisms": a worker that claims a task and crashes never deletes the
//! message, so after the visibility timeout the task *reappears* and a
//! healthy worker finishes it. This example makes one worker crash-prone
//! (it abandons every first attempt) and shows that every task still
//! completes exactly once.
//!
//! ```text
//! cargo run --release -p azurebench --example fault_tolerance
//! ```

use azsim_client::VirtualEnv;
use azsim_compute::{Deployment, VmSize};
use azsim_fabric::ClusterParams;
use azsim_framework::TaskQueue;
use serde::{Deserialize, Serialize};
use std::time::Duration;

#[derive(Serialize, Deserialize, Clone)]
struct Job {
    id: u32,
}

const JOBS: u32 = 20;
const VISIBILITY: Duration = Duration::from_secs(10);

fn main() {
    let report = Deployment::new(ClusterParams::default(), 99)
        .with_role("submitter", 1, VmSize::Small, |ctx, _| async move {
            let env = VirtualEnv::new(&ctx);
            let tq: TaskQueue<'_, _, Job> =
                TaskQueue::new(&env, "jobs").with_visibility(VISIBILITY);
            tq.init().await.unwrap();
            for id in 0..JOBS {
                tq.submit(&Job { id }).await.unwrap();
            }
            println!("[submitter] {JOBS} jobs queued");
            (0, 0)
        })
        // A byzantine worker: claims tasks but "crashes" (abandons) every
        // task it sees on first delivery.
        .with_role("flaky", 1, VmSize::Small, |ctx, _| async move {
            let env = VirtualEnv::new(&ctx);
            let tq: TaskQueue<'_, _, Job> =
                TaskQueue::new(&env, "jobs").with_visibility(VISIBILITY);
            tq.init().await.unwrap();
            let mut abandoned = 0;
            let mut idle = 0;
            while idle < 3 {
                match tq.claim().await.unwrap() {
                    Some(c) if c.attempt == 1 => {
                        // Crash mid-task: no complete(), no signal.
                        abandoned += 1;
                        ctx.sleep(Duration::from_millis(100)).await;
                    }
                    Some(c) => {
                        // Even the flaky worker finishes re-deliveries.
                        tq.complete(&c).await.unwrap();
                        idle = 0;
                        ctx.sleep(Duration::from_millis(100)).await;
                    }
                    None => {
                        idle += 1;
                        ctx.sleep(Duration::from_secs(2)).await;
                    }
                }
            }
            println!("[flaky] abandoned {abandoned} first attempts");
            (0, abandoned)
        })
        // Healthy workers: process whatever reappears.
        .with_role("worker", 3, VmSize::Small, |ctx, meta| async move {
            let env = VirtualEnv::new(&ctx);
            let tq: TaskQueue<'_, _, Job> =
                TaskQueue::new(&env, "jobs").with_visibility(VISIBILITY);
            tq.init().await.unwrap();
            let mut done = 0;
            let mut retried = 0;
            let mut idle = 0;
            while idle < 8 {
                match tq.claim().await.unwrap() {
                    Some(c) => {
                        idle = 0;
                        if c.attempt > 1 {
                            retried += 1;
                        }
                        ctx.sleep(Duration::from_millis(250)).await; // the "work"
                        tq.complete(&c).await.unwrap();
                        done += 1;
                    }
                    None => {
                        idle += 1;
                        ctx.sleep(Duration::from_secs(2)).await;
                    }
                }
            }
            println!(
                "[worker {}] completed {done} jobs ({retried} were re-deliveries)",
                meta.instance
            );
            (done, retried)
        })
        .run();

    let completed: u32 = report.results.iter().map(|(d, _)| *d).sum();
    let redelivered: u32 = report.results[2..].iter().map(|(_, r)| *r).sum();
    let remaining = {
        let mut model = report.model;
        model
            .queue_store_mut()
            .approximate_count(report.end_time, "jobs")
            .unwrap()
    };
    println!(
        "\n{completed} jobs completed ({redelivered} after crash re-delivery), \
         {remaining} left in queue"
    );
    assert_eq!(remaining, 0, "no job may be lost");
    assert!(
        redelivered > 0,
        "the crashes must have caused re-deliveries"
    );
}
