//! Iterative k-means clustering on the storage-backed MapReduce runtime —
//! the flagship workload of Twister4Azure (the paper's reference [15]),
//! which demonstrated that iterative MapReduce can be built from exactly
//! the Azure storage primitives this repository models.
//!
//! One driver role generates 2-D points around hidden centers, then runs
//! MapReduce rounds — map: assign each point chunk to the nearest current
//! centroid and emit partial sums; reduce: average a centroid's partial
//! sums — until the centroids stop moving. Four worker roles serve both
//! phases from the same task queue.
//!
//! ```text
//! cargo run --release -p azurebench --example kmeans_mapreduce
//! ```

use azsim_client::VirtualEnv;
use azsim_compute::{Deployment, VmSize};
use azsim_fabric::ClusterParams;
use azsim_framework::{MapReduce, MapReduceJob};
use serde::{Deserialize, Serialize};
use std::time::Duration;

const K: usize = 3;
const CHUNKS: usize = 12;
const POINTS_PER_CHUNK: usize = 200;
const HIDDEN_CENTERS: [(f64, f64); K] = [(0.0, 0.0), (10.0, 0.0), (5.0, 8.0)];

#[derive(Serialize, Deserialize, Clone)]
struct Chunk {
    points: Vec<(f64, f64)>,
    centroids: Vec<(f64, f64)>,
}

/// Reduce output: `(cluster, new centroid, points assigned)`.
type Moved = (usize, (f64, f64), u64);

struct KMeans;

impl MapReduceJob for KMeans {
    type MapIn = Chunk;
    type Key = usize; // cluster id
    type Value = (f64, f64, u64); // partial (sum_x, sum_y, count)
    type Out = Moved;

    fn map(&self, chunk: &Chunk) -> Vec<(usize, (f64, f64, u64))> {
        let mut partial = vec![(0.0, 0.0, 0u64); chunk.centroids.len()];
        for &(x, y) in &chunk.points {
            let nearest = chunk
                .centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let da = (x - a.0).powi(2) + (y - a.1).powi(2);
                    let db = (x - b.0).powi(2) + (y - b.1).powi(2);
                    da.partial_cmp(&db).unwrap()
                })
                .map(|(i, _)| i)
                .unwrap();
            partial[nearest].0 += x;
            partial[nearest].1 += y;
            partial[nearest].2 += 1;
        }
        partial
            .into_iter()
            .enumerate()
            .filter(|(_, (_, _, n))| *n > 0)
            .collect()
    }

    fn reduce(&self, key: &usize, values: Vec<(f64, f64, u64)>) -> Moved {
        let (sx, sy, n) = values.into_iter().fold((0.0, 0.0, 0u64), |acc, v| {
            (acc.0 + v.0, acc.1 + v.1, acc.2 + v.2)
        });
        (*key, (sx / n as f64, sy / n as f64), n)
    }

    fn next_round(&self, round: usize, outputs: &[Moved]) -> Option<Vec<Chunk>> {
        // Driver-side convergence handled in main (needs the point data);
        // the trait hook is unused for this job.
        let _ = (round, outputs);
        None
    }
}

fn generate_points(seed: u64) -> Vec<Vec<(f64, f64)>> {
    use rand::Rng;
    let mut rng = azsim_core::rng::stream_rng(seed, 0);
    (0..CHUNKS)
        .map(|_| {
            (0..POINTS_PER_CHUNK)
                .map(|_| {
                    let (cx, cy) = HIDDEN_CENTERS[rng.random_range(0..K)];
                    (
                        cx + rng.random_range(-1.5..1.5),
                        cy + rng.random_range(-1.5..1.5),
                    )
                })
                .collect()
        })
        .collect()
}

fn main() {
    let report = Deployment::new(ClusterParams::default(), 31337)
        .with_role("driver", 1, VmSize::Large, |ctx, _| async move {
            let env = VirtualEnv::new(&ctx);
            let mr = MapReduce::new(&env, "kmeans", KMeans, K);
            mr.init().await.unwrap();

            let chunks = generate_points(7);
            // k-means++-style deterministic seeding over the first chunk:
            // start anywhere, then repeatedly take the point farthest from
            // every chosen centroid — avoids the classic bad-local-optimum
            // start of clustered initial guesses.
            let seedset = &chunks[0];
            let mut centroids: Vec<(f64, f64)> = vec![seedset[0]];
            while centroids.len() < K {
                let far = seedset
                    .iter()
                    .max_by(|a, b| {
                        let da: f64 = centroids
                            .iter()
                            .map(|c| (a.0 - c.0).powi(2) + (a.1 - c.1).powi(2))
                            .fold(f64::INFINITY, f64::min);
                        let db: f64 = centroids
                            .iter()
                            .map(|c| (b.0 - c.0).powi(2) + (b.1 - c.1).powi(2))
                            .fold(f64::INFINITY, f64::min);
                        da.partial_cmp(&db).unwrap()
                    })
                    .copied()
                    .unwrap();
                centroids.push(far);
            }
            let mut rounds = 0;
            loop {
                rounds += 1;
                let inputs: Vec<Chunk> = chunks
                    .iter()
                    .map(|points| Chunk {
                        points: points.clone(),
                        centroids: centroids.clone(),
                    })
                    .collect();
                let moved = mr.run_driver(inputs).await.unwrap();
                let mut next = centroids.clone();
                let mut shift: f64 = 0.0;
                for (cluster, c, _) in &moved {
                    shift = shift.max(
                        ((c.0 - next[*cluster].0).powi(2) + (c.1 - next[*cluster].1).powi(2))
                            .sqrt(),
                    );
                    next[*cluster] = *c;
                }
                println!(
                    "[driver] round {rounds}: centroids {:?} (max shift {shift:.4})",
                    next.iter()
                        .map(|(x, y)| format!("({x:.2},{y:.2})"))
                        .collect::<Vec<_>>()
                );
                centroids = next;
                if shift < 1e-3 || rounds >= 15 {
                    break;
                }
            }
            // Each recovered centroid must sit near one hidden center.
            for (cx, cy) in &centroids {
                let nearest = HIDDEN_CENTERS
                    .iter()
                    .map(|(hx, hy)| ((cx - hx).powi(2) + (cy - hy).powi(2)).sqrt())
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    nearest < 0.5,
                    "centroid ({cx:.2},{cy:.2}) too far from any hidden center"
                );
            }
            println!("[driver] converged in {rounds} rounds");
            rounds
        })
        .with_role("worker", 4, VmSize::Medium, |ctx, meta| async move {
            let env = VirtualEnv::new(&ctx);
            let mr = MapReduce::new(&env, "kmeans", KMeans, K);
            mr.init().await.unwrap();
            // Patient workers: the driver runs many rounds with gaps.
            let (maps, reduces) = mr.run_worker(25, Duration::from_secs(2)).await.unwrap();
            println!("[worker {}] {maps} maps, {reduces} reduces", meta.instance);
            maps + reduces
        })
        .run();

    let tasks: usize = report.results[1..].iter().sum();
    println!(
        "\nk-means finished: {} tasks over {} storage ops in {:.1} virtual seconds",
        tasks,
        report.requests,
        report.end_time.as_secs_f64()
    );
}
