//! The paper's generic application framework (Section III, Figure 3) as a
//! runnable bag-of-tasks application: a web role submits Monte-Carlo π
//! estimation tasks to the task-assignment queue, worker roles drain the
//! pool, results land in Table storage, and completion is tracked on the
//! termination-indicator queue.
//!
//! Runs in the deterministic virtual-time simulation: 1 web role + 8
//! worker roles, coordinated exclusively through storage.
//!
//! ```text
//! cargo run --release -p azurebench --example bag_of_tasks
//! ```

use azsim_client::{TableClient, VirtualEnv};
use azsim_compute::{Deployment, VmSize};
use azsim_fabric::ClusterParams;
use azsim_framework::BagOfTasks;
use azsim_storage::{Entity, PropValue};
use serde::{Deserialize, Serialize};
use std::time::Duration;

#[derive(Serialize, Deserialize, Clone)]
struct PiTask {
    id: u32,
    samples: u64,
    seed: u64,
}

const TASKS: u32 = 64;
const SAMPLES_PER_TASK: u64 = 100_000;

fn main() {
    let report = Deployment::new(ClusterParams::default(), 4242)
        // The interactive front end: submits work, polls progress.
        .with_role("web", 1, VmSize::Large, |ctx, _env| async move {
            let env = VirtualEnv::new(&ctx);
            let bag: BagOfTasks<'_, _, PiTask> = BagOfTasks::new(&env, "pi");
            bag.init().await.unwrap();
            let results = TableClient::new(&env, "pi-results");
            results.create_table().await.unwrap();

            let submitted = bag
                .submit_all((0..TASKS).map(|id| PiTask {
                    id,
                    samples: SAMPLES_PER_TASK,
                    seed: 0xC0FFEE ^ id as u64,
                }))
                .await
                .unwrap();
            println!("[web] submitted {submitted} tasks");

            // Progress loop, as the paper's interactive UI would do.
            loop {
                let done = bag.done.count().await.unwrap();
                println!(
                    "[web] t={:.0}s  {done}/{submitted} tasks complete",
                    ctx.now().as_secs_f64()
                );
                if done >= submitted {
                    break;
                }
                ctx.sleep(Duration::from_secs(2)).await;
            }

            // Reduce: average the per-task estimates from Table storage.
            let rows = results.query_partition("estimate").await.unwrap();
            let sum: f64 = rows
                .iter()
                .map(|(e, _)| match &e.properties["pi"] {
                    PropValue::F64(v) => *v,
                    _ => unreachable!(),
                })
                .sum();
            let pi = sum / rows.len() as f64;
            println!("[web] π ≈ {pi:.5} from {} tasks", rows.len());
            assert!((pi - std::f64::consts::PI).abs() < 0.01);
            rows.len()
        })
        // The backend: 8 Small worker-role instances.
        .with_role("worker", 8, VmSize::Small, |ctx, env_meta| async move {
            let env = VirtualEnv::new(&ctx);
            let bag: BagOfTasks<'_, _, PiTask> = BagOfTasks::new(&env, "pi");
            bag.init().await.unwrap();
            let results = TableClient::new(&env, "pi-results");
            results.create_table().await.unwrap();

            let r = bag
                .run_worker(3, Duration::from_secs(1), &env, async |task, _attempt| {
                    // Monte-Carlo estimate (deterministic per task seed).
                    let mut rng = azsim_core::rng::stream_rng(task.seed, 0);
                    let mut inside = 0u64;
                    for _ in 0..task.samples {
                        let x: f64 = rand::Rng::random(&mut rng);
                        let y: f64 = rand::Rng::random(&mut rng);
                        if x * x + y * y <= 1.0 {
                            inside += 1;
                        }
                    }
                    let pi = 4.0 * inside as f64 / task.samples as f64;
                    results
                        .insert(
                            Entity::new("estimate", task.id.to_string())
                                .with("pi", PropValue::F64(pi))
                                .with("worker", PropValue::I64(env_meta.actor as i64)),
                        )
                        .await
                        .unwrap();
                })
                .await
                .unwrap();
            println!(
                "[worker {}] processed {} tasks",
                env_meta.instance, r.processed
            );
            r.processed
        })
        .run();

    let total: usize = report.results[1..].iter().sum();
    println!(
        "\nall workers together processed {total} tasks in {:.1} virtual seconds \
         ({} storage ops)",
        report.end_time.as_secs_f64(),
        report.requests
    );
    assert_eq!(total, TASKS as usize);
}
