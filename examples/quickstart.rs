//! Quickstart: the three storage services in live mode.
//!
//! Spins up a live (wall-clock, time-scaled) simulated Azure storage
//! cluster and exercises blobs, queues and tables through the SDK-style
//! clients — the five-minute tour of the public API.
//!
//! ```text
//! cargo run --release -p azurebench --example quickstart
//! ```

use azsim_client::{BlobClient, LiveCluster, QueueClient, TableClient};
use azsim_core::block_on;
use azsim_fabric::ClusterParams;
use azsim_storage::{Entity, PropValue};
use bytes::Bytes;

fn main() {
    // 60 virtual seconds per real second: "Azure" latencies become
    // sub-millisecond waits.
    let cluster = LiveCluster::new(ClusterParams::default(), 60.0);
    let env = cluster.env(0);

    // --- Blobs ---------------------------------------------------------
    let blobs = BlobClient::new(&env, "quickstart");
    block_on(blobs.create_container()).unwrap();

    // Block blob: stage two blocks, commit, read back.
    block_on(blobs.put_block("greeting", "block-0", Bytes::from_static(b"hello, "))).unwrap();
    block_on(blobs.put_block("greeting", "block-1", Bytes::from_static(b"azure!"))).unwrap();
    block_on(blobs.put_block_list("greeting", vec!["block-0".into(), "block-1".into()])).unwrap();
    let text = block_on(blobs.download("greeting")).unwrap();
    println!("block blob says: {}", String::from_utf8_lossy(&text));

    // Page blob: random access at 512-byte granularity.
    block_on(blobs.create_page_blob("random", 4096)).unwrap();
    block_on(blobs.put_page("random", 1024, Bytes::from(vec![42u8; 512]))).unwrap();
    let page = block_on(blobs.get_page("random", 1024, 512)).unwrap();
    println!("page blob page[2] starts with {:?}", &page[..4]);

    // --- Queues --------------------------------------------------------
    let queue = QueueClient::new(&env, "jobs");
    block_on(queue.create()).unwrap();
    block_on(queue.put_message(Bytes::from_static(b"job-1"))).unwrap();
    block_on(queue.put_message(Bytes::from_static(b"job-2"))).unwrap();
    println!(
        "queue holds {} messages",
        block_on(queue.message_count()).unwrap()
    );

    let peeked = block_on(queue.peek_message()).unwrap().unwrap();
    println!(
        "peeked (still in queue): {:?}",
        String::from_utf8_lossy(&peeked.data)
    );

    let msg = block_on(queue.get_message()).unwrap().unwrap();
    println!(
        "claimed {:?} (attempt {}), deleting…",
        String::from_utf8_lossy(&msg.data),
        msg.dequeue_count
    );
    block_on(queue.delete_message(&msg)).unwrap();
    println!(
        "queue now holds {} messages",
        block_on(queue.message_count()).unwrap()
    );

    // --- Tables --------------------------------------------------------
    let table = TableClient::new(&env, "runs");
    block_on(table.create_table()).unwrap();
    let tag = block_on(
        table.insert(
            Entity::new("experiment-1", "row-0")
                .with("score", PropValue::F64(0.93))
                .with("label", PropValue::Str("baseline".into())),
        ),
    )
    .unwrap();
    println!("inserted entity, etag {tag:?}");

    let (entity, _) = block_on(table.query("experiment-1", "row-0"))
        .unwrap()
        .unwrap();
    println!("queried back: {:?}", entity.properties["label"]);

    block_on(
        table.update(Entity::new("experiment-1", "row-0").with("score", PropValue::F64(0.97))),
    )
    .unwrap();
    let (entity, _) = block_on(table.query("experiment-1", "row-0"))
        .unwrap()
        .unwrap();
    println!("after wildcard update: {:?}", entity.properties["score"]);

    // --- Server-side view ----------------------------------------------
    cluster.with_cluster(|c| {
        println!(
            "\ncluster processed {} operations:",
            c.metrics().total_completed()
        );
        for (class, counter) in c.metrics().iter() {
            println!(
                "  {:<24} ×{:<4} mean {:.1} ms",
                class.label(),
                counter.completed,
                counter.latency.mean() * 1e3
            );
        }
    });
}
