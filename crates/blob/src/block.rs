//! Block blobs: staged blocks, committed block lists.
//!
//! The two creation paths the paper describes:
//!
//! 1. Blobs under 64 MB may be uploaded in a single call.
//! 2. Larger blobs are built from blocks of up to 4 MB each, staged with
//!    `PutBlock` and atomically assembled with `PutBlockList`. A blob holds
//!    at most 50 000 committed blocks (≈ 200 GB).
//!
//! A blob with only staged (uncommitted) blocks is not yet readable — it
//! comes into existence at the first commit (or single-shot upload).

use azsim_storage::limits::{MAX_BLOCKS_PER_BLOB, MAX_BLOCK_BLOB_SIZE, MAX_BLOCK_SIZE};
use azsim_storage::{StorageError, StorageResult};
use bytes::{Bytes, BytesMut};
use std::collections::HashMap;

/// A block blob's state: committed content plus a staging area.
#[derive(Clone, Debug, Default)]
pub struct BlockBlob {
    committed: Vec<(String, Bytes)>,
    staged: HashMap<String, Bytes>,
    committed_size: u64,
    /// Lazily assembled full content. Shared (`Bytes` is refcounted) by
    /// every concurrent whole-blob download — without this, N workers
    /// downloading the same 100 MB blob would hold N separate copies in
    /// the simulator's event heap.
    download_cache: Option<Bytes>,
}

impl BlockBlob {
    /// An empty, uncommitted block blob (exists only as a staging target).
    pub fn new() -> Self {
        Self::default()
    }

    /// A blob created by a single-shot upload: one implicit committed block.
    pub fn from_single_upload(data: Bytes) -> Self {
        let size = data.len() as u64;
        BlockBlob {
            committed: vec![(String::from("\u{0}single"), data)],
            staged: HashMap::new(),
            committed_size: size,
            download_cache: None,
        }
    }

    /// Whether any block list has been committed (an uncommitted blob is
    /// invisible to readers).
    pub fn is_committed(&self) -> bool {
        !self.committed.is_empty() || self.committed_size > 0
    }

    /// Stage one block.
    pub fn put_block(&mut self, block_id: String, data: Bytes) -> StorageResult<()> {
        if data.len() as u64 > MAX_BLOCK_SIZE {
            return Err(StorageError::BlockTooLarge {
                size: data.len() as u64,
            });
        }
        self.staged.insert(block_id, data);
        Ok(())
    }

    /// Atomically commit `ids` as the blob's new content. Each id is
    /// resolved against the staging area first, then against the committed
    /// list (matching the real service's latest/committed search order).
    /// On success the staging area is cleared.
    pub fn put_block_list(&mut self, ids: &[String]) -> StorageResult<()> {
        if ids.len() > MAX_BLOCKS_PER_BLOB {
            return Err(StorageError::TooManyBlocks { count: ids.len() });
        }
        // Validate everything before mutating: commits are atomic.
        let mut resolved: Vec<(String, Bytes)> = Vec::with_capacity(ids.len());
        let mut total: u64 = 0;
        for id in ids {
            let data = if let Some(d) = self.staged.get(id) {
                d.clone()
            } else if let Some((_, d)) = self.committed.iter().find(|(cid, _)| cid == id) {
                d.clone()
            } else {
                return Err(StorageError::UnknownBlockId(id.clone()));
            };
            total += data.len() as u64;
            resolved.push((id.clone(), data));
        }
        if total > MAX_BLOCK_BLOB_SIZE {
            return Err(StorageError::BlobTooLarge { size: total });
        }
        self.committed = resolved;
        self.committed_size = total;
        self.staged.clear();
        self.download_cache = None;
        Ok(())
    }

    /// Read the `index`-th committed block (the paper's sequential
    /// block-at-a-time download path).
    pub fn get_block(&self, index: usize) -> StorageResult<Bytes> {
        self.committed
            .get(index)
            .map(|(_, d)| d.clone())
            .ok_or_else(|| StorageError::UnknownBlockId(format!("#{index}")))
    }

    /// Number of committed blocks.
    pub fn block_count(&self) -> usize {
        self.committed.len()
    }

    /// Number of staged (uncommitted) blocks.
    pub fn staged_count(&self) -> usize {
        self.staged.len()
    }

    /// Total committed size in bytes.
    pub fn size(&self) -> u64 {
        self.committed_size
    }

    /// The full committed content (`DownloadText()` path). Cached: all
    /// concurrent downloads share one buffer.
    pub fn download(&mut self) -> Bytes {
        if self.committed.len() == 1 {
            return self.committed[0].1.clone();
        }
        if let Some(c) = &self.download_cache {
            return c.clone();
        }
        let mut out = BytesMut::with_capacity(self.committed_size as usize);
        for (_, d) in &self.committed {
            out.extend_from_slice(d);
        }
        let out = out.freeze();
        self.download_cache = Some(out.clone());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn stage_then_commit_in_list_order() {
        let mut b = BlockBlob::new();
        b.put_block("b".into(), bytes("world")).unwrap();
        b.put_block("a".into(), bytes("hello ")).unwrap();
        assert!(!b.is_committed());
        b.put_block_list(&["a".into(), "b".into()]).unwrap();
        assert!(b.is_committed());
        assert_eq!(b.download(), bytes("hello world"));
        assert_eq!(b.block_count(), 2);
        assert_eq!(b.size(), 11);
        assert_eq!(b.staged_count(), 0, "commit clears staging");
    }

    #[test]
    fn commit_can_reuse_committed_blocks() {
        let mut b = BlockBlob::new();
        b.put_block("x".into(), bytes("ab")).unwrap();
        b.put_block_list(&["x".into()]).unwrap();
        // Recommit referencing the already-committed block plus a new one.
        b.put_block("y".into(), bytes("cd")).unwrap();
        b.put_block_list(&["x".into(), "y".into(), "x".into()])
            .unwrap();
        assert_eq!(b.download(), bytes("abcdab"));
    }

    #[test]
    fn staged_version_shadows_committed_same_id() {
        let mut b = BlockBlob::new();
        b.put_block("x".into(), bytes("old")).unwrap();
        b.put_block_list(&["x".into()]).unwrap();
        b.put_block("x".into(), bytes("new")).unwrap();
        b.put_block_list(&["x".into()]).unwrap();
        assert_eq!(b.download(), bytes("new"));
    }

    #[test]
    fn unknown_block_id_fails_commit_atomically() {
        let mut b = BlockBlob::new();
        b.put_block("a".into(), bytes("aa")).unwrap();
        b.put_block_list(&["a".into()]).unwrap();
        b.put_block("b".into(), bytes("bb")).unwrap();
        let err = b.put_block_list(&["a".into(), "nope".into()]).unwrap_err();
        assert_eq!(err, StorageError::UnknownBlockId("nope".into()));
        // Old content intact, staging preserved (commit failed atomically).
        assert_eq!(b.download(), bytes("aa"));
        assert_eq!(b.staged_count(), 1);
    }

    #[test]
    fn oversized_block_rejected() {
        let mut b = BlockBlob::new();
        let big = Bytes::from(vec![0u8; (MAX_BLOCK_SIZE + 1) as usize]);
        assert!(matches!(
            b.put_block("big".into(), big),
            Err(StorageError::BlockTooLarge { .. })
        ));
        // Exactly 4 MB is fine.
        let ok = Bytes::from(vec![0u8; MAX_BLOCK_SIZE as usize]);
        b.put_block("ok".into(), ok).unwrap();
    }

    #[test]
    fn too_many_blocks_rejected() {
        let mut b = BlockBlob::new();
        let ids: Vec<String> = (0..MAX_BLOCKS_PER_BLOB + 1)
            .map(|i| i.to_string())
            .collect();
        assert!(matches!(
            b.put_block_list(&ids),
            Err(StorageError::TooManyBlocks { .. })
        ));
    }

    #[test]
    fn get_block_by_index() {
        let mut b = BlockBlob::new();
        for (i, s) in ["x", "y", "z"].iter().enumerate() {
            b.put_block(i.to_string(), bytes(s)).unwrap();
        }
        b.put_block_list(&["0".into(), "1".into(), "2".into()])
            .unwrap();
        assert_eq!(b.get_block(1).unwrap(), bytes("y"));
        assert!(matches!(
            b.get_block(3),
            Err(StorageError::UnknownBlockId(_))
        ));
    }

    #[test]
    fn single_upload_is_one_block() {
        let mut b = BlockBlob::from_single_upload(bytes("payload"));
        assert!(b.is_committed());
        assert_eq!(b.block_count(), 1);
        assert_eq!(b.download(), bytes("payload"));
    }

    #[test]
    fn empty_commit_produces_empty_committed_blob() {
        let mut b = BlockBlob::new();
        b.put_block("a".into(), bytes("data")).unwrap();
        b.put_block_list(&[]).unwrap();
        assert_eq!(b.block_count(), 0);
        assert_eq!(b.download(), Bytes::new());
        assert_eq!(b.staged_count(), 0);
    }

    proptest::proptest! {
        /// However blocks are staged (order, restaging, shadowing), the
        /// committed content equals the concatenation of the final staged
        /// values in list order.
        #[test]
        fn prop_commit_equals_concat(
            chunks in proptest::collection::vec(
                proptest::collection::vec(0u8..=255, 0..64), 1..20),
            order in proptest::collection::vec(0usize..20, 1..30)
        ) {
            let mut b = BlockBlob::new();
            for (i, c) in chunks.iter().enumerate() {
                b.put_block(i.to_string(), Bytes::from(c.clone())).unwrap();
            }
            let ids: Vec<String> = order.iter()
                .map(|&i| (i % chunks.len()).to_string())
                .collect();
            b.put_block_list(&ids).unwrap();
            let mut expect = Vec::new();
            for &i in &order {
                expect.extend_from_slice(&chunks[i % chunks.len()]);
            }
            let got = b.download();
            proptest::prop_assert_eq!(got.as_ref(), expect.as_slice());
            proptest::prop_assert_eq!(b.size() as usize, expect.len());
        }
    }
}
