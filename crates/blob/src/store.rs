//! The account-level blob namespace: containers of blobs.

use crate::block::BlockBlob;
use crate::page::PageBlob;
use azsim_storage::limits::MAX_SINGLE_SHOT_UPLOAD;
use azsim_storage::{StorageError, StorageResult};
use bytes::Bytes;
use std::collections::HashMap;

/// A blob is either a block blob or a page blob; the type is fixed at
/// creation and operations of the wrong flavour fail with
/// [`StorageError::WrongBlobType`].
#[derive(Clone, Debug)]
pub enum Blob {
    /// Block blob.
    Block(BlockBlob),
    /// Page blob.
    Page(PageBlob),
}

impl Blob {
    /// Committed size in bytes (a page blob's fixed size).
    pub fn size(&self) -> u64 {
        match self {
            Blob::Block(b) => b.size(),
            Blob::Page(p) => p.size(),
        }
    }
}

/// All blob state of one storage account.
#[derive(Clone, Debug, Default)]
pub struct BlobStore {
    containers: HashMap<String, HashMap<String, Blob>>,
}

impl BlobStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a container; idempotent (`CreateIfNotExist` semantics).
    pub fn create_container(&mut self, name: &str) -> StorageResult<()> {
        self.containers.entry(name.to_owned()).or_default();
        Ok(())
    }

    /// Whether a container exists.
    pub fn container_exists(&self, name: &str) -> bool {
        self.containers.contains_key(name)
    }

    /// Names of blobs in a container (sorted, for determinism).
    pub fn list_blobs(&self, container: &str) -> StorageResult<Vec<String>> {
        let c = self.container(container)?;
        let mut names: Vec<String> = c.keys().cloned().collect();
        names.sort();
        Ok(names)
    }

    fn container(&self, name: &str) -> StorageResult<&HashMap<String, Blob>> {
        self.containers
            .get(name)
            .ok_or_else(|| StorageError::ContainerNotFound(name.to_owned()))
    }

    fn container_mut(&mut self, name: &str) -> StorageResult<&mut HashMap<String, Blob>> {
        self.containers
            .get_mut(name)
            .ok_or_else(|| StorageError::ContainerNotFound(name.to_owned()))
    }

    fn blob(&self, container: &str, blob: &str) -> StorageResult<&Blob> {
        self.container(container)?
            .get(blob)
            .ok_or_else(|| StorageError::BlobNotFound(blob.to_owned()))
    }

    /// Stage a block against a (possibly not-yet-committed) block blob.
    pub fn put_block(
        &mut self,
        container: &str,
        blob: &str,
        block_id: String,
        data: Bytes,
    ) -> StorageResult<()> {
        let c = self.container_mut(container)?;
        match c
            .entry(blob.to_owned())
            .or_insert_with(|| Blob::Block(BlockBlob::new()))
        {
            Blob::Block(b) => b.put_block(block_id, data),
            Blob::Page(_) => Err(StorageError::WrongBlobType),
        }
    }

    /// Commit a block list.
    pub fn put_block_list(
        &mut self,
        container: &str,
        blob: &str,
        ids: &[String],
    ) -> StorageResult<()> {
        let c = self.container_mut(container)?;
        match c
            .entry(blob.to_owned())
            .or_insert_with(|| Blob::Block(BlockBlob::new()))
        {
            Blob::Block(b) => b.put_block_list(ids),
            Blob::Page(_) => Err(StorageError::WrongBlobType),
        }
    }

    /// Single-shot upload of a block blob ≤ 64 MB (replaces existing
    /// block-blob content).
    pub fn upload_block_blob(
        &mut self,
        container: &str,
        blob: &str,
        data: Bytes,
    ) -> StorageResult<()> {
        if data.len() as u64 > MAX_SINGLE_SHOT_UPLOAD {
            return Err(StorageError::UploadTooLarge {
                size: data.len() as u64,
            });
        }
        let c = self.container_mut(container)?;
        if let Some(Blob::Page(_)) = c.get(blob) {
            return Err(StorageError::WrongBlobType);
        }
        c.insert(
            blob.to_owned(),
            Blob::Block(BlockBlob::from_single_upload(data)),
        );
        Ok(())
    }

    /// Read one committed block by index.
    pub fn get_block(&self, container: &str, blob: &str, index: usize) -> StorageResult<Bytes> {
        match self.blob(container, blob)? {
            Blob::Block(b) if b.is_committed() => b.get_block(index),
            Blob::Block(_) => Err(StorageError::BlobNotFound(blob.to_owned())),
            Blob::Page(_) => Err(StorageError::WrongBlobType),
        }
    }

    /// Download a whole blob of either type.
    pub fn download(&mut self, container: &str, blob: &str) -> StorageResult<Bytes> {
        let c = self.container_mut(container)?;
        match c.get_mut(blob) {
            Some(Blob::Block(b)) if b.is_committed() => Ok(b.download()),
            Some(Blob::Block(_)) | None => Err(StorageError::BlobNotFound(blob.to_owned())),
            Some(Blob::Page(p)) => Ok(p.download()),
        }
    }

    /// Create a page blob of fixed size. Re-creating an existing page blob
    /// resets it; creating over a block blob fails.
    pub fn create_page_blob(
        &mut self,
        container: &str,
        blob: &str,
        size: u64,
    ) -> StorageResult<()> {
        let c = self.container_mut(container)?;
        if let Some(Blob::Block(_)) = c.get(blob) {
            return Err(StorageError::WrongBlobType);
        }
        c.insert(blob.to_owned(), Blob::Page(PageBlob::create(size)?));
        Ok(())
    }

    /// Write a page range.
    pub fn put_page(
        &mut self,
        container: &str,
        blob: &str,
        offset: u64,
        data: Bytes,
    ) -> StorageResult<()> {
        let c = self.container_mut(container)?;
        match c.get_mut(blob) {
            Some(Blob::Page(p)) => p.put_page(offset, data),
            Some(Blob::Block(_)) => Err(StorageError::WrongBlobType),
            None => Err(StorageError::BlobNotFound(blob.to_owned())),
        }
    }

    /// Read a page range.
    pub fn get_page(
        &self,
        container: &str,
        blob: &str,
        offset: u64,
        length: u64,
    ) -> StorageResult<Bytes> {
        match self.blob(container, blob)? {
            Blob::Page(p) => p.get_page(offset, length),
            Blob::Block(_) => Err(StorageError::WrongBlobType),
        }
    }

    /// Delete a blob of either type.
    pub fn delete(&mut self, container: &str, blob: &str) -> StorageResult<()> {
        let c = self.container_mut(container)?;
        c.remove(blob)
            .map(|_| ())
            .ok_or_else(|| StorageError::BlobNotFound(blob.to_owned()))
    }

    /// Size of a committed blob.
    pub fn blob_size(&self, container: &str, blob: &str) -> StorageResult<u64> {
        Ok(self.blob(container, blob)?.size())
    }

    /// Total committed bytes across the account (capacity accounting).
    pub fn total_bytes(&self) -> u64 {
        self.containers
            .values()
            .flat_map(|c| c.values())
            .map(|b| match b {
                Blob::Block(b) => b.size(),
                // Count written pages, not the sparse maximum size.
                Blob::Page(p) => p.written_pages() as u64 * 512,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_container() -> BlobStore {
        let mut s = BlobStore::new();
        s.create_container("c").unwrap();
        s
    }

    #[test]
    fn container_lifecycle() {
        let mut s = BlobStore::new();
        assert!(!s.container_exists("c"));
        s.create_container("c").unwrap();
        s.create_container("c").unwrap(); // idempotent
        assert!(s.container_exists("c"));
        assert!(matches!(
            s.list_blobs("missing"),
            Err(StorageError::ContainerNotFound(_))
        ));
        assert_eq!(s.list_blobs("c").unwrap(), Vec::<String>::new());
    }

    #[test]
    fn block_blob_end_to_end() {
        let mut s = store_with_container();
        s.put_block("c", "b", "0".into(), Bytes::from_static(b"he"))
            .unwrap();
        s.put_block("c", "b", "1".into(), Bytes::from_static(b"llo"))
            .unwrap();
        // Uncommitted blob is not downloadable.
        assert!(matches!(
            s.download("c", "b"),
            Err(StorageError::BlobNotFound(_))
        ));
        s.put_block_list("c", "b", &["0".into(), "1".into()])
            .unwrap();
        assert_eq!(s.download("c", "b").unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(
            s.get_block("c", "b", 1).unwrap(),
            Bytes::from_static(b"llo")
        );
        assert_eq!(s.blob_size("c", "b").unwrap(), 5);
        s.delete("c", "b").unwrap();
        assert!(matches!(
            s.download("c", "b"),
            Err(StorageError::BlobNotFound(_))
        ));
    }

    #[test]
    fn page_blob_end_to_end() {
        let mut s = store_with_container();
        s.create_page_blob("c", "p", 4096).unwrap();
        s.put_page("c", "p", 1024, Bytes::from(vec![5u8; 512]))
            .unwrap();
        let r = s.get_page("c", "p", 1024, 512).unwrap();
        assert!(r.iter().all(|&x| x == 5));
        assert_eq!(s.download("c", "p").unwrap().len(), 4096);
        // Recreating resets content.
        s.create_page_blob("c", "p", 2048).unwrap();
        assert!(s.download("c", "p").unwrap().iter().all(|&x| x == 0));
    }

    #[test]
    fn type_confusion_is_rejected() {
        let mut s = store_with_container();
        s.create_page_blob("c", "p", 1024).unwrap();
        assert!(matches!(
            s.put_block("c", "p", "0".into(), Bytes::from_static(b"x")),
            Err(StorageError::WrongBlobType)
        ));
        assert!(matches!(
            s.upload_block_blob("c", "p", Bytes::from_static(b"x")),
            Err(StorageError::WrongBlobType)
        ));
        s.upload_block_blob("c", "b", Bytes::from_static(b"x"))
            .unwrap();
        assert!(matches!(
            s.put_page("c", "b", 0, Bytes::from(vec![0u8; 512])),
            Err(StorageError::WrongBlobType)
        ));
        assert!(matches!(
            s.get_page("c", "b", 0, 512),
            Err(StorageError::WrongBlobType)
        ));
        assert!(matches!(
            s.create_page_blob("c", "b", 512),
            Err(StorageError::WrongBlobType)
        ));
    }

    #[test]
    fn single_shot_upload_respects_64mb_limit() {
        let mut s = store_with_container();
        let too_big = Bytes::from(vec![0u8; (MAX_SINGLE_SHOT_UPLOAD + 1) as usize]);
        assert!(matches!(
            s.upload_block_blob("c", "b", too_big),
            Err(StorageError::UploadTooLarge { .. })
        ));
    }

    #[test]
    fn operations_on_missing_blob_or_container() {
        let mut s = store_with_container();
        assert!(matches!(
            s.put_page("c", "nope", 0, Bytes::from(vec![0u8; 512])),
            Err(StorageError::BlobNotFound(_))
        ));
        assert!(matches!(
            s.delete("c", "nope"),
            Err(StorageError::BlobNotFound(_))
        ));
        assert!(matches!(
            s.put_block("nope", "b", "0".into(), Bytes::new()),
            Err(StorageError::ContainerNotFound(_))
        ));
    }

    #[test]
    fn list_blobs_sorted_and_total_bytes() {
        let mut s = store_with_container();
        s.upload_block_blob("c", "zz", Bytes::from(vec![0u8; 10]))
            .unwrap();
        s.upload_block_blob("c", "aa", Bytes::from(vec![0u8; 20]))
            .unwrap();
        s.create_page_blob("c", "mm", 1024 * 1024).unwrap();
        s.put_page("c", "mm", 0, Bytes::from(vec![1u8; 512]))
            .unwrap();
        assert_eq!(s.list_blobs("c").unwrap(), vec!["aa", "mm", "zz"]);
        // 10 + 20 committed block bytes + one written page.
        assert_eq!(s.total_bytes(), 30 + 512);
    }
}
