//! Page blobs: fixed-size, 512-byte-aligned random access.
//!
//! "A Page blob is created and initialized with a maximum size; pages can
//! be added at any location in the blob by specifying the offset. The
//! offset boundary should be divisible by 512, and the total data that can
//! be updated in one operation is 4 MB. A Page blob can store up to 1 TB."
//! (paper §IV-A). Unwritten ranges read back as zeros.

use azsim_storage::limits::{MAX_PAGE_BLOB_SIZE, MAX_PAGE_WRITE, PAGE_ALIGNMENT};
use azsim_storage::{StorageError, StorageResult};
use bytes::{Bytes, BytesMut};
use std::collections::BTreeMap;

/// A page blob: a sparse map from 512-byte page index to page contents.
#[derive(Clone, Debug)]
pub struct PageBlob {
    size: u64,
    pages: BTreeMap<u64, Bytes>,
    /// Lazily assembled full content, shared by concurrent whole-blob
    /// downloads; invalidated by writes.
    download_cache: Option<Bytes>,
}

impl PageBlob {
    /// Create a page blob with the given maximum size (multiple of 512,
    /// at most 1 TB). No storage is consumed until pages are written.
    pub fn create(size: u64) -> StorageResult<Self> {
        if size > MAX_PAGE_BLOB_SIZE {
            return Err(StorageError::BlobTooLarge { size });
        }
        if !size.is_multiple_of(PAGE_ALIGNMENT) {
            return Err(StorageError::InvalidPageRange {
                offset: 0,
                length: size,
            });
        }
        Ok(PageBlob {
            size,
            pages: BTreeMap::new(),
            download_cache: None,
        })
    }

    /// The blob's fixed maximum size.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Number of distinct 512-byte pages ever written.
    pub fn written_pages(&self) -> usize {
        self.pages.len()
    }

    fn check_range(&self, offset: u64, length: u64) -> StorageResult<()> {
        let bad = || StorageError::InvalidPageRange { offset, length };
        if length == 0
            || !offset.is_multiple_of(PAGE_ALIGNMENT)
            || !length.is_multiple_of(PAGE_ALIGNMENT)
            || offset.checked_add(length).is_none_or(|end| end > self.size)
        {
            return Err(bad());
        }
        Ok(())
    }

    /// Write a page range. Overlapping earlier writes are overwritten
    /// (last writer wins at 512-byte granularity).
    pub fn put_page(&mut self, offset: u64, data: Bytes) -> StorageResult<()> {
        self.download_cache = None;
        let length = data.len() as u64;
        if length > MAX_PAGE_WRITE {
            return Err(StorageError::InvalidPageRange { offset, length });
        }
        self.check_range(offset, length)?;
        let first = offset / PAGE_ALIGNMENT;
        let count = length / PAGE_ALIGNMENT;
        for i in 0..count {
            let lo = (i * PAGE_ALIGNMENT) as usize;
            let hi = lo + PAGE_ALIGNMENT as usize;
            self.pages.insert(first + i, data.slice(lo..hi));
        }
        Ok(())
    }

    /// Read a page range; unwritten pages read as zeros.
    ///
    /// When the requested range exactly covers pages that are still
    /// adjacent views of one upload buffer (the common case: a read aligned
    /// with an earlier `put_page`), the result is a zero-copy re-join of
    /// that buffer. Otherwise the range is assembled into a fresh buffer
    /// with a single ordered scan.
    pub fn get_page(&self, offset: u64, length: u64) -> StorageResult<Bytes> {
        self.check_range(offset, length)?;
        let first = offset / PAGE_ALIGNMENT;
        let count = length / PAGE_ALIGNMENT;
        if let Some(joined) = self.rejoin(first, count) {
            return Ok(joined);
        }
        let mut out = BytesMut::zeroed(length as usize);
        for (&idx, p) in self.pages.range(first..first + count) {
            let lo = ((idx - first) * PAGE_ALIGNMENT) as usize;
            out[lo..lo + PAGE_ALIGNMENT as usize].copy_from_slice(p);
        }
        Ok(out.freeze())
    }

    /// Try to reassemble `count` pages starting at `first` as one widened
    /// view of their shared backing buffer (zero-copy). `None` if any page
    /// is missing or the pages are not adjacent slices of one buffer.
    fn rejoin(&self, first: u64, count: u64) -> Option<Bytes> {
        let mut it = self.pages.range(first..first + count);
        let (&k0, p0) = it.next()?;
        if k0 != first {
            return None;
        }
        let mut joined = p0.clone();
        let mut expect = first + 1;
        for (&k, p) in it {
            if k != expect {
                return None;
            }
            joined = joined.try_join(p)?;
            expect += 1;
        }
        (expect == first + count).then_some(joined)
    }

    /// Download the entire blob (`openRead()` path): all `size` bytes with
    /// zeros in unwritten holes. Cached: all concurrent downloads share
    /// one buffer.
    pub fn download(&mut self) -> Bytes {
        if let Some(c) = &self.download_cache {
            return c.clone();
        }
        let out = self.get_page(0, self.size).unwrap_or_else(|_| Bytes::new());
        self.download_cache = Some(out.clone());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_validates_size() {
        assert!(PageBlob::create(0).is_ok());
        assert!(PageBlob::create(1024).is_ok());
        assert!(matches!(
            PageBlob::create(1000),
            Err(StorageError::InvalidPageRange { .. })
        ));
        assert!(matches!(
            PageBlob::create(MAX_PAGE_BLOB_SIZE + 512),
            Err(StorageError::BlobTooLarge { .. })
        ));
        // Exactly 1 TB is allowed — and consumes no memory until written.
        let huge = PageBlob::create(MAX_PAGE_BLOB_SIZE).unwrap();
        assert_eq!(huge.written_pages(), 0);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut b = PageBlob::create(4096).unwrap();
        let data = Bytes::from(vec![7u8; 1024]);
        b.put_page(512, data.clone()).unwrap();
        assert_eq!(b.get_page(512, 1024).unwrap(), data);
        assert_eq!(b.written_pages(), 2);
    }

    #[test]
    fn unwritten_ranges_read_zero() {
        let mut b = PageBlob::create(2048).unwrap();
        b.put_page(512, Bytes::from(vec![9u8; 512])).unwrap();
        let all = b.download();
        assert_eq!(all.len(), 2048);
        assert!(all[..512].iter().all(|&x| x == 0));
        assert!(all[512..1024].iter().all(|&x| x == 9));
        assert!(all[1024..].iter().all(|&x| x == 0));
    }

    #[test]
    fn alignment_rules_enforced() {
        let mut b = PageBlob::create(8192).unwrap();
        // Misaligned offset.
        assert!(b.put_page(100, Bytes::from(vec![0u8; 512])).is_err());
        // Misaligned length.
        assert!(b.put_page(0, Bytes::from(vec![0u8; 100])).is_err());
        // Empty write.
        assert!(b.put_page(0, Bytes::new()).is_err());
        // Past the end.
        assert!(b.put_page(8192, Bytes::from(vec![0u8; 512])).is_err());
        assert!(b.put_page(7680, Bytes::from(vec![0u8; 1024])).is_err());
        // Reads follow the same rules.
        assert!(b.get_page(1, 512).is_err());
        assert!(b.get_page(0, 0).is_err());
        assert!(b.get_page(0, 8704).is_err());
    }

    #[test]
    fn write_larger_than_4mb_rejected() {
        let mut b = PageBlob::create(8 * 1024 * 1024).unwrap();
        let big = Bytes::from(vec![0u8; (MAX_PAGE_WRITE + PAGE_ALIGNMENT) as usize]);
        assert!(matches!(
            b.put_page(0, big),
            Err(StorageError::InvalidPageRange { .. })
        ));
        let ok = Bytes::from(vec![1u8; MAX_PAGE_WRITE as usize]);
        b.put_page(0, ok).unwrap();
    }

    #[test]
    fn overlapping_writes_last_writer_wins() {
        let mut b = PageBlob::create(2048).unwrap();
        b.put_page(0, Bytes::from(vec![1u8; 1536])).unwrap();
        b.put_page(512, Bytes::from(vec![2u8; 512])).unwrap();
        let out = b.get_page(0, 1536).unwrap();
        assert!(out[..512].iter().all(|&x| x == 1));
        assert!(out[512..1024].iter().all(|&x| x == 2));
        assert!(out[1024..].iter().all(|&x| x == 1));
    }

    proptest::proptest! {
        /// Arbitrary aligned writes match a flat reference buffer.
        #[test]
        fn prop_matches_reference_model(
            writes in proptest::collection::vec(
                (0u64..16, 1u64..8, 0u8..=255), 0..40)
        ) {
            const SIZE: u64 = 16 * 512;
            let mut blob = PageBlob::create(SIZE).unwrap();
            let mut reference = vec![0u8; SIZE as usize];
            for (page, len_pages, fill) in writes {
                let offset = page * 512;
                let len = (len_pages * 512).min(SIZE - offset);
                if len == 0 { continue; }
                let data = vec![fill; len as usize];
                blob.put_page(offset, Bytes::from(data.clone())).unwrap();
                reference[offset as usize..(offset + len) as usize]
                    .copy_from_slice(&data);
            }
            let got = blob.download();
            proptest::prop_assert_eq!(got.as_ref(), reference.as_slice());
        }
    }
}
