//! # azsim-blob — the simulated Windows Azure Blob storage service
//!
//! Blob storage is "similar to the traditional file system" (paper §IV-A):
//! a storage account holds containers, a container holds blobs, and a blob
//! is either a **block blob** (content assembled from ≤ 4 MB blocks via a
//! staged-then-committed block list, up to 50 000 blocks) or a **page blob**
//! (fixed maximum size up to 1 TB, 512-byte-aligned random read/write,
//! introduced later precisely to allow fast random access).
//!
//! This crate implements the *semantics* only. Timing, partition placement
//! (container + blob name), the 60 MB/s per-blob pipe and every throttle
//! live in `azsim-fabric`.

pub mod block;
pub mod page;
pub mod store;

pub use block::BlockBlob;
pub use page::PageBlob;
pub use store::{Blob, BlobStore};
