//! Algorithm 2: synchronization among worker role instances.
//!
//! Azure has no barrier primitive, so the paper builds one from a queue
//! used as shared memory: each worker puts a marker message, then polls the
//! *approximate message count* until it reaches the number of workers.
//!
//! The subtlety the paper highlights: markers must **not** be deleted (a
//! worker still inside the polling loop would never see the count reach the
//! target), so messages accumulate across barrier phases and each phase `k`
//! waits for `workers × k` messages. Each worker also sleeps one second
//! between count requests so the polling itself does not throttle the
//! queue.

use azsim_client::{Environment, QueueClient};
use azsim_storage::StorageResult;
use bytes::Bytes;
use std::time::Duration;

/// A reusable queue-backed barrier for `workers` participants.
pub struct QueueBarrier<'e, E: Environment> {
    queue: QueueClient<'e, E>,
    env: &'e E,
    workers: usize,
    sync_count: usize,
    poll_interval: Duration,
}

impl<'e, E: Environment> QueueBarrier<'e, E> {
    /// Bind a barrier to `queue_name` for `workers` participants. All
    /// participants must use the same name and count.
    pub fn new(env: &'e E, queue_name: impl Into<String>, workers: usize) -> Self {
        assert!(workers > 0, "a barrier needs at least one participant");
        QueueBarrier {
            queue: QueueClient::new(env, queue_name),
            env,
            workers,
            sync_count: 0,
            poll_interval: Duration::from_secs(1),
        }
    }

    /// Change the polling interval (the paper uses one second).
    pub fn with_poll_interval(mut self, d: Duration) -> Self {
        self.poll_interval = d;
        self
    }

    /// Create the underlying queue; idempotent, so every participant can
    /// (and should) call it.
    pub async fn init(&self) -> StorageResult<()> {
        self.queue.create().await
    }

    /// Number of completed synchronization phases.
    pub fn phases(&self) -> usize {
        self.sync_count
    }

    /// Enter the barrier and block (in virtual/scaled time) until all
    /// `workers` participants of this phase have arrived.
    pub async fn wait(&mut self) -> StorageResult<()> {
        self.sync_count += 1;
        // Announce arrival. Markers are never deleted — see module docs.
        self.queue.put_message(Bytes::from_static(b"sync")).await?;
        let target = self.workers * self.sync_count;
        loop {
            let arrived = self.queue.message_count().await?;
            if arrived >= target {
                return Ok(());
            }
            self.env.sleep(self.poll_interval).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azsim_client::VirtualEnv;
    use azsim_core::{SimTime, Simulation};
    use azsim_fabric::Cluster;

    #[test]
    fn all_workers_cross_together() {
        let n = 8usize;
        let sim = Simulation::new(Cluster::with_defaults(), 1);
        let report = sim.run_workers(n, move |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let mut barrier = QueueBarrier::new(&env, "sync", n);
            barrier.init().await.unwrap();
            // Stagger arrivals: worker i arrives i seconds in.
            ctx.sleep(Duration::from_secs(ctx.id().0 as u64)).await;
            let arrived_at = ctx.now();
            barrier.wait().await.unwrap();
            (arrived_at, ctx.now())
        });
        // No worker may leave before the last one arrived.
        let last_arrival = report.results.iter().map(|(a, _)| *a).max().unwrap();
        for (_, left) in &report.results {
            assert!(
                *left >= last_arrival,
                "worker crossed at {left} before last arrival {last_arrival}"
            );
        }
    }

    #[test]
    fn repeated_phases_account_for_leftover_messages() {
        let n = 4usize;
        let phases = 3usize;
        let sim = Simulation::new(Cluster::with_defaults(), 2);
        let report = sim.run_workers(n, move |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let mut barrier =
                QueueBarrier::new(&env, "sync", n).with_poll_interval(Duration::from_millis(100));
            barrier.init().await.unwrap();
            let mut crossings = Vec::new();
            for p in 0..phases {
                // Make one worker slow in every phase.
                if ctx.id().0 == p % n {
                    ctx.sleep(Duration::from_secs(2)).await;
                }
                barrier.wait().await.unwrap();
                crossings.push(ctx.now());
            }
            assert_eq!(barrier.phases(), phases);
            crossings
        });
        // Phase k's slowest arrival bounds everyone's phase-k crossing.
        for p in 0..phases {
            let crossings: Vec<SimTime> = report.results.iter().map(|c| c[p]).collect();
            let spread = crossings
                .iter()
                .max()
                .unwrap()
                .saturating_since(*crossings.iter().min().unwrap());
            // All workers cross within ~one poll interval + op costs.
            assert!(
                spread < Duration::from_secs(2),
                "phase {p} crossings too spread: {spread:?}"
            );
        }
        // Markers accumulate: n per phase.
        let mut model = report.model;
        let count = model
            .queue_store_mut()
            .approximate_count(report.end_time, "sync")
            .unwrap();
        assert_eq!(count, n * phases);
    }

    #[test]
    fn single_worker_barrier_is_immediate() {
        let sim = Simulation::new(Cluster::with_defaults(), 3);
        let report = sim.run_workers(1, |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let mut b = QueueBarrier::new(&env, "solo", 1);
            b.init().await.unwrap();
            b.wait().await.unwrap();
            ctx.now()
        });
        // One put + one count: well under a second — no poll sleep needed.
        assert!(report.results[0] < SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_workers_rejected() {
        let sim = Simulation::new(Cluster::with_defaults(), 4);
        sim.run_workers(1, |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let _ = QueueBarrier::new(&env, "bad", 0);
        });
    }
}
