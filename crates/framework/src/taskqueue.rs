//! Typed task envelopes over a queue.
//!
//! Tasks are serialized as JSON (references to large inputs should go via
//! blob names — the paper's guidance for payloads beyond the 48 KB message
//! limit). A claimed task must be [`completed`](TaskQueue::complete)
//! within its visibility timeout or it reappears for another worker — the
//! built-in fault-tolerance mechanism of the shared-task-pool pattern.

use azsim_client::{Environment, QueueClient};
use azsim_storage::{QueueMessage, StorageError, StorageResult};
use bytes::Bytes;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::marker::PhantomData;
use std::time::Duration;

/// A task claimed from the queue; keep it to `complete` (delete) the
/// underlying message.
pub struct ClaimedTask<T> {
    /// The decoded task.
    pub task: T,
    /// How many times this task has been claimed (> 1 means a previous
    /// worker crashed or timed out).
    pub attempt: u32,
    message: QueueMessage,
}

/// A typed task queue for payload type `T`.
pub struct TaskQueue<'e, T> {
    queue: QueueClient<'e>,
    visibility: Duration,
    _marker: PhantomData<fn() -> T>,
}

impl<'e, T: Serialize + DeserializeOwned> TaskQueue<'e, T> {
    /// Bind to `queue_name` with a default 2-minute processing window.
    pub fn new(env: &'e dyn Environment, queue_name: impl Into<String>) -> Self {
        TaskQueue {
            queue: QueueClient::new(env, queue_name),
            visibility: Duration::from_secs(120),
            _marker: PhantomData,
        }
    }

    /// Change the visibility timeout (the per-task processing window).
    pub fn with_visibility(mut self, d: Duration) -> Self {
        self.visibility = d;
        self
    }

    /// Create the underlying queue (idempotent).
    pub fn init(&self) -> StorageResult<()> {
        self.queue.create()
    }

    /// Submit one task.
    pub fn submit(&self, task: &T) -> StorageResult<()> {
        let json = serde_json::to_vec(task).map_err(|_| StorageError::MessageTooLarge {
            size: 0, // unserializable tasks shouldn't occur; size unknown
        })?;
        self.queue.put_message(Bytes::from(json))
    }

    /// Claim the next task, if any. The task stays invisible to other
    /// workers for the visibility timeout.
    pub fn claim(&self) -> StorageResult<Option<ClaimedTask<T>>> {
        match self.queue.get_message_with_visibility(self.visibility)? {
            None => Ok(None),
            Some(message) => {
                let task: T = serde_json::from_slice(&message.data)
                    .expect("malformed task payload on task queue");
                Ok(Some(ClaimedTask {
                    task,
                    attempt: message.dequeue_count,
                    message,
                }))
            }
        }
    }

    /// Mark a claimed task done (deletes the message). Fails with
    /// [`StorageError::PopReceiptMismatch`] if the task already timed out
    /// and was handed to another worker — the caller must treat its own
    /// work as superseded.
    pub fn complete(&self, claimed: &ClaimedTask<T>) -> StorageResult<()> {
        self.queue.delete_message(&claimed.message)
    }

    /// Tasks currently in the queue (visible + in-flight).
    pub fn pending(&self) -> StorageResult<usize> {
        self.queue.message_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azsim_client::VirtualEnv;
    use azsim_core::Simulation;
    use azsim_fabric::Cluster;
    use serde::Deserialize;

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Job {
        id: u32,
        input_blob: String,
    }

    #[test]
    fn submit_claim_complete_roundtrip() {
        let sim = Simulation::new(Cluster::with_defaults(), 7);
        sim.run_workers(1, |ctx| {
            let env = VirtualEnv::new(ctx);
            let tq: TaskQueue<'_, Job> = TaskQueue::new(&env, "tasks");
            tq.init().unwrap();
            tq.submit(&Job {
                id: 7,
                input_blob: "chunk-7".into(),
            })
            .unwrap();
            assert_eq!(tq.pending().unwrap(), 1);
            let claimed = tq.claim().unwrap().unwrap();
            assert_eq!(claimed.task.id, 7);
            assert_eq!(claimed.attempt, 1);
            tq.complete(&claimed).unwrap();
            assert_eq!(tq.pending().unwrap(), 0);
            assert!(tq.claim().unwrap().is_none());
        });
    }

    #[test]
    fn abandoned_task_reappears_for_another_worker() {
        let sim = Simulation::new(Cluster::with_defaults(), 8);
        sim.run_workers(1, |ctx| {
            let env = VirtualEnv::new(ctx);
            let tq: TaskQueue<'_, Job> =
                TaskQueue::new(&env, "tasks").with_visibility(Duration::from_secs(5));
            tq.init().unwrap();
            tq.submit(&Job {
                id: 1,
                input_blob: "x".into(),
            })
            .unwrap();
            // First claim: "crash" (never complete).
            let first = tq.claim().unwrap().unwrap();
            assert_eq!(first.attempt, 1);
            // Within the window nothing is claimable.
            assert!(tq.claim().unwrap().is_none());
            // After the window the task is re-delivered.
            ctx.sleep(Duration::from_secs(6));
            let second = tq.claim().unwrap().unwrap();
            assert_eq!(second.task, first.task);
            assert_eq!(second.attempt, 2);
            tq.complete(&second).unwrap();
            // The crashed claimer's receipt is now useless.
            assert!(matches!(
                tq.complete(&first),
                Err(StorageError::PopReceiptMismatch)
            ));
        });
    }

    #[test]
    fn tasks_fan_out_across_workers_exactly_once() {
        let n_workers = 6usize;
        let n_tasks = 40u32;
        let sim = Simulation::new(Cluster::with_defaults(), 9);
        let report = sim.run_workers(n_workers, move |ctx| {
            let env = VirtualEnv::new(ctx);
            let tq: TaskQueue<'_, Job> = TaskQueue::new(&env, "tasks");
            tq.init().unwrap();
            if ctx.id().0 == 0 {
                for id in 0..n_tasks {
                    tq.submit(&Job {
                        id,
                        input_blob: format!("b{id}"),
                    })
                    .unwrap();
                }
            }
            // Everyone (submitter included) drains the pool; idle-poll a
            // few times before giving up.
            let mut got = Vec::new();
            let mut idle = 0;
            while idle < 3 {
                match tq.claim().unwrap() {
                    Some(c) => {
                        idle = 0;
                        tq.complete(&c).unwrap();
                        got.push(c.task.id);
                    }
                    None => {
                        idle += 1;
                        ctx.sleep(Duration::from_secs(1));
                    }
                }
            }
            got
        });
        let mut all: Vec<u32> = report.results.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<u32> = (0..n_tasks).collect();
        assert_eq!(all, expect, "every task exactly once");
    }
}
