//! Typed task envelopes over a queue.
//!
//! Tasks are serialized as JSON (references to large inputs should go via
//! blob names — the paper's guidance for payloads beyond the 48 KB message
//! limit). A claimed task must be [`completed`](TaskQueue::complete)
//! within its visibility timeout or it reappears for another worker — the
//! built-in fault-tolerance mechanism of the shared-task-pool pattern.
//!
//! ## Poison messages
//!
//! The visibility-timeout loop has a failure mode: a task that *cannot* be
//! processed (malformed payload, or a payload that reliably crashes its
//! worker) is re-delivered forever, wasting a worker slot on every cycle.
//! `TaskQueue` therefore supports **dead-lettering**: undecodable messages
//! — and, when [`with_max_attempts`](TaskQueue::with_max_attempts) is set,
//! messages whose dequeue count exceeds the limit — are moved to a
//! companion `<name>-poison` queue instead of being handed to workers. The
//! poison queue is created lazily on first use, so clean runs pay nothing.

use azsim_client::{ClientPolicy, Environment, QueueClient};
use azsim_storage::{QueueMessage, StorageError, StorageResult};
use bytes::Bytes;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::cell::Cell;
use std::marker::PhantomData;
use std::time::Duration;

/// A task claimed from the queue; keep it to `complete` (delete) the
/// underlying message.
pub struct ClaimedTask<T> {
    /// The decoded task.
    pub task: T,
    /// How many times this task has been claimed (> 1 means a previous
    /// worker crashed or timed out).
    pub attempt: u32,
    message: QueueMessage,
}

/// A typed task queue for payload type `T`.
pub struct TaskQueue<'e, E: Environment, T> {
    queue: QueueClient<'e, E>,
    poison: QueueClient<'e, E>,
    visibility: Duration,
    max_attempts: Option<u32>,
    dead_lettered: Cell<u64>,
    _marker: PhantomData<fn() -> T>,
}

impl<'e, E: Environment, T: Serialize + DeserializeOwned> TaskQueue<'e, E, T> {
    /// Bind to `queue_name` with a default 2-minute processing window.
    pub fn new(env: &'e E, queue_name: impl Into<String>) -> Self {
        let name = queue_name.into();
        let poison = QueueClient::new(env, format!("{name}-poison"));
        TaskQueue {
            queue: QueueClient::new(env, name),
            poison,
            visibility: Duration::from_secs(120),
            max_attempts: None,
            dead_lettered: Cell::new(0),
            _marker: PhantomData,
        }
    }

    /// Change the visibility timeout (the per-task processing window).
    pub fn with_visibility(mut self, d: Duration) -> Self {
        self.visibility = d;
        self
    }

    /// Dead-letter tasks once they have been claimed more than
    /// `max_attempts` times (a claim loop that keeps crashing on one task
    /// stops re-processing it). Default: unlimited redelivery.
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = Some(max_attempts.max(1));
        self
    }

    /// Replace the retry policy on the underlying queue clients (e.g. a
    /// shared [`azsim_client::ResilientPolicy`] when running under fault
    /// injection). Default: the paper-faithful `RetryPolicy`.
    pub fn with_policy(mut self, policy: impl Into<ClientPolicy>) -> Self {
        let policy: ClientPolicy = policy.into();
        self.queue = self.queue.with_policy(policy.clone());
        self.poison = self.poison.with_policy(policy);
        self
    }

    /// Create the underlying queue (idempotent).
    pub async fn init(&self) -> StorageResult<()> {
        self.queue.create().await
    }

    /// Submit one task.
    pub async fn submit(&self, task: &T) -> StorageResult<()> {
        let json = serde_json::to_vec(task).map_err(|_| StorageError::MessageTooLarge {
            size: 0, // unserializable tasks shouldn't occur; size unknown
        })?;
        self.queue.put_message(Bytes::from(json)).await
    }

    /// Claim the next task, if any. The task stays invisible to other
    /// workers for the visibility timeout.
    ///
    /// Poison messages (undecodable payloads, or — with
    /// [`with_max_attempts`](TaskQueue::with_max_attempts) — tasks
    /// redelivered too many times) are moved to the `<name>-poison` queue
    /// and skipped; the claim keeps going until it finds a healthy task or
    /// drains the queue.
    pub async fn claim(&self) -> StorageResult<Option<ClaimedTask<T>>> {
        loop {
            let Some(message) = self
                .queue
                .get_message_with_visibility(self.visibility)
                .await?
            else {
                return Ok(None);
            };
            if let Some(max) = self.max_attempts {
                if message.dequeue_count > max {
                    self.dead_letter(&message).await?;
                    continue;
                }
            }
            match serde_json::from_slice::<T>(&message.data) {
                Ok(task) => {
                    return Ok(Some(ClaimedTask {
                        task,
                        attempt: message.dequeue_count,
                        message,
                    }))
                }
                Err(_) => {
                    self.dead_letter(&message).await?;
                    continue;
                }
            }
        }
    }

    /// Move a claimed message to the poison queue and delete the original.
    async fn dead_letter(&self, message: &QueueMessage) -> StorageResult<()> {
        self.poison.create().await?; // idempotent; lazy so clean runs pay nothing
        self.poison.put_message(message.data.clone()).await?;
        self.queue.delete_message(message).await?;
        self.dead_lettered.set(self.dead_lettered.get() + 1);
        Ok(())
    }

    /// Messages this handle has dead-lettered.
    pub fn dead_lettered(&self) -> u64 {
        self.dead_lettered.get()
    }

    /// Messages currently parked in the companion poison queue (across all
    /// handles). Zero if nothing was ever dead-lettered.
    pub async fn dead_letter_count(&self) -> StorageResult<usize> {
        match self.poison.message_count().await {
            Err(StorageError::QueueNotFound(_)) => Ok(0),
            other => other,
        }
    }

    /// Mark a claimed task done (deletes the message). Fails with
    /// [`StorageError::PopReceiptMismatch`] if the task already timed out
    /// and was handed to another worker — the caller must treat its own
    /// work as superseded.
    pub async fn complete(&self, claimed: &ClaimedTask<T>) -> StorageResult<()> {
        self.queue.delete_message(&claimed.message).await
    }

    /// Mark a claimed task done with pop-receipt revalidation: `Ok(true)`
    /// when this call deleted the message, `Ok(false)` when the receipt
    /// was stale (the task timed out and belongs to another worker now —
    /// treat your own work as superseded, but don't fail the loop). Use
    /// under fault injection, where a retried delete whose first attempt
    /// secretly executed would otherwise surface `PopReceiptMismatch` as
    /// an error.
    pub async fn complete_checked(&self, claimed: &ClaimedTask<T>) -> StorageResult<bool> {
        azsim_client::delete_message_checked(&self.queue, &claimed.message).await
    }

    /// Tasks currently in the queue (visible + in-flight).
    pub async fn pending(&self) -> StorageResult<usize> {
        self.queue.message_count().await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azsim_client::VirtualEnv;
    use azsim_core::Simulation;
    use azsim_fabric::Cluster;
    use serde::Deserialize;

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Job {
        id: u32,
        input_blob: String,
    }

    #[test]
    fn submit_claim_complete_roundtrip() {
        let sim = Simulation::new(Cluster::with_defaults(), 7);
        sim.run_workers(1, |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let tq: TaskQueue<'_, _, Job> = TaskQueue::new(&env, "tasks");
            tq.init().await.unwrap();
            tq.submit(&Job {
                id: 7,
                input_blob: "chunk-7".into(),
            })
            .await
            .unwrap();
            assert_eq!(tq.pending().await.unwrap(), 1);
            let claimed = tq.claim().await.unwrap().unwrap();
            assert_eq!(claimed.task.id, 7);
            assert_eq!(claimed.attempt, 1);
            tq.complete(&claimed).await.unwrap();
            assert_eq!(tq.pending().await.unwrap(), 0);
            assert!(tq.claim().await.unwrap().is_none());
        });
    }

    #[test]
    fn abandoned_task_reappears_for_another_worker() {
        let sim = Simulation::new(Cluster::with_defaults(), 8);
        sim.run_workers(1, |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let tq: TaskQueue<'_, _, Job> =
                TaskQueue::new(&env, "tasks").with_visibility(Duration::from_secs(5));
            tq.init().await.unwrap();
            tq.submit(&Job {
                id: 1,
                input_blob: "x".into(),
            })
            .await
            .unwrap();
            // First claim: "crash" (never complete).
            let first = tq.claim().await.unwrap().unwrap();
            assert_eq!(first.attempt, 1);
            // Within the window nothing is claimable.
            assert!(tq.claim().await.unwrap().is_none());
            // After the window the task is re-delivered.
            ctx.sleep(Duration::from_secs(6)).await;
            let second = tq.claim().await.unwrap().unwrap();
            assert_eq!(second.task, first.task);
            assert_eq!(second.attempt, 2);
            tq.complete(&second).await.unwrap();
            // The crashed claimer's receipt is now useless.
            assert!(matches!(
                tq.complete(&first).await,
                Err(StorageError::PopReceiptMismatch)
            ));
        });
    }

    #[test]
    fn tasks_fan_out_across_workers_exactly_once() {
        let n_workers = 6usize;
        let n_tasks = 40u32;
        let sim = Simulation::new(Cluster::with_defaults(), 9);
        let report = sim.run_workers(n_workers, move |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let tq: TaskQueue<'_, _, Job> = TaskQueue::new(&env, "tasks");
            tq.init().await.unwrap();
            if ctx.id().0 == 0 {
                for id in 0..n_tasks {
                    tq.submit(&Job {
                        id,
                        input_blob: format!("b{id}"),
                    })
                    .await
                    .unwrap();
                }
            }
            // Everyone (submitter included) drains the pool; idle-poll a
            // few times before giving up.
            let mut got = Vec::new();
            let mut idle = 0;
            while idle < 3 {
                match tq.claim().await.unwrap() {
                    Some(c) => {
                        idle = 0;
                        tq.complete(&c).await.unwrap();
                        got.push(c.task.id);
                    }
                    None => {
                        idle += 1;
                        ctx.sleep(Duration::from_secs(1)).await;
                    }
                }
            }
            got
        });
        let mut all: Vec<u32> = report.results.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<u32> = (0..n_tasks).collect();
        assert_eq!(all, expect, "every task exactly once");
    }

    #[test]
    fn malformed_payloads_are_dead_lettered_not_fatal() {
        let sim = Simulation::new(Cluster::with_defaults(), 10);
        sim.run_workers(1, |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let tq: TaskQueue<'_, _, Job> = TaskQueue::new(&env, "tasks");
            tq.init().await.unwrap();
            assert_eq!(tq.dead_letter_count().await.unwrap(), 0);
            // A buggy producer wrote garbage ahead of a healthy task.
            let raw = azsim_client::QueueClient::new(&env, "tasks");
            raw.put_message(Bytes::from_static(b"{not json"))
                .await
                .unwrap();
            tq.submit(&Job {
                id: 3,
                input_blob: "b3".into(),
            })
            .await
            .unwrap();
            // The claim skips the poison message and returns the real task.
            let claimed = tq.claim().await.unwrap().unwrap();
            assert_eq!(claimed.task.id, 3);
            tq.complete(&claimed).await.unwrap();
            assert_eq!(tq.dead_lettered(), 1);
            assert_eq!(tq.dead_letter_count().await.unwrap(), 1);
            assert_eq!(tq.pending().await.unwrap(), 0);
        });
    }

    #[test]
    fn repeatedly_redelivered_tasks_are_dead_lettered() {
        let sim = Simulation::new(Cluster::with_defaults(), 11);
        sim.run_workers(1, |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let tq: TaskQueue<'_, _, Job> = TaskQueue::new(&env, "tasks")
                .with_visibility(Duration::from_secs(1))
                .with_max_attempts(2);
            tq.init().await.unwrap();
            tq.submit(&Job {
                id: 9,
                input_blob: "crashy".into(),
            })
            .await
            .unwrap();
            // Two workers claim and "crash" (never complete).
            for attempt in 1..=2 {
                let c = tq.claim().await.unwrap().unwrap();
                assert_eq!(c.attempt, attempt);
                ctx.sleep(Duration::from_secs(2)).await;
            }
            // The third delivery exceeds max_attempts: parked, not re-run.
            assert!(tq.claim().await.unwrap().is_none());
            assert_eq!(tq.dead_lettered(), 1);
            assert_eq!(tq.dead_letter_count().await.unwrap(), 1);
            assert_eq!(tq.pending().await.unwrap(), 0);
        });
    }
}
