//! The end-to-end bag-of-tasks pattern (paper Figure 3).
//!
//! A web role submits tasks to the task-assignment queue and polls the
//! termination-indicator queue for progress; worker roles drain the pool.
//! Crash tolerance comes for free from visibility timeouts: an abandoned
//! task reappears and is re-processed, and the superseded worker's late
//! completion is detected via the pop receipt.

use crate::taskqueue::TaskQueue;
use crate::termination::TerminationIndicator;
use azsim_client::Environment;
use azsim_storage::{StorageError, StorageResult};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::time::Duration;

/// Summary of one worker's run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Tasks processed and successfully completed (deleted + signaled).
    pub processed: usize,
    /// Tasks whose completion was superseded — this worker took too long
    /// and the task was re-delivered to someone else.
    pub superseded: usize,
    /// Poison tasks moved to the dead-letter queue instead of being
    /// processed (delivery attempts exceeded the configured limit).
    pub dead_lettered: usize,
}

/// A bag-of-tasks application: task queue + termination indicator, plus a
/// dead-letter queue for *poison tasks* — tasks that crash every worker
/// that claims them. Without a delivery-attempt limit, such a task would
/// reappear forever and the job would never drain; with one, the task is
/// parked on `{base}-dead` (still counted on the indicator so the web role
/// terminates) for offline inspection.
pub struct BagOfTasks<'e, E: Environment, T> {
    /// The task-assignment queue.
    pub tasks: TaskQueue<'e, E, T>,
    /// The termination-indicator queue.
    pub done: TerminationIndicator<'e, E>,
    /// The dead-letter queue for poison tasks.
    pub dead: TaskQueue<'e, E, T>,
    max_attempts: u32,
}

impl<'e, E: Environment, T: Serialize + DeserializeOwned> BagOfTasks<'e, E, T> {
    /// Bind to the queues `{base}-tasks` / `{base}-done` / `{base}-dead`.
    /// Tasks are dead-lettered after 5 delivery attempts by default.
    pub fn new(env: &'e E, base: &str) -> Self {
        BagOfTasks {
            tasks: TaskQueue::new(env, format!("{base}-tasks")),
            done: TerminationIndicator::new(env, format!("{base}-done")),
            dead: TaskQueue::new(env, format!("{base}-dead")),
            max_attempts: 5,
        }
    }

    /// Change the delivery-attempt limit before a task is dead-lettered.
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        assert!(n > 0);
        self.max_attempts = n;
        self
    }

    /// Override the per-task processing window.
    pub fn with_visibility(mut self, d: Duration) -> Self {
        self.tasks = self.tasks.with_visibility(d);
        self
    }

    /// Create all queues (idempotent; every role should call it).
    pub async fn init(&self) -> StorageResult<()> {
        self.tasks.init().await?;
        self.dead.init().await?;
        self.done.init().await
    }

    /// Web-role side: submit every task; returns how many were submitted.
    pub async fn submit_all(&self, tasks: impl IntoIterator<Item = T>) -> StorageResult<usize> {
        let mut n = 0;
        for t in tasks {
            self.tasks.submit(&t).await?;
            n += 1;
        }
        Ok(n)
    }

    /// Web-role side: block until `expected` completion signals arrived.
    pub async fn wait_all(&self, expected: usize) -> StorageResult<usize> {
        self.done.wait_for(expected).await
    }

    /// Worker-role side: drain the pool. Gives up after `idle_polls`
    /// consecutive empty polls separated by `idle_backoff`.
    ///
    /// `process` receives the task and its attempt number (> 1 on a retry
    /// after some worker crashed); it may await (e.g. sleep to model
    /// compute time).
    pub async fn run_worker(
        &self,
        idle_polls: usize,
        idle_backoff: Duration,
        env: &E,
        mut process: impl AsyncFnMut(T, u32),
    ) -> StorageResult<WorkerReport> {
        let mut report = WorkerReport::default();
        let mut idle = 0;
        while idle < idle_polls {
            match self.tasks.claim().await? {
                None => {
                    idle += 1;
                    env.sleep(idle_backoff).await;
                }
                Some(claimed) => {
                    idle = 0;
                    let attempt = claimed.attempt;
                    if attempt > self.max_attempts {
                        // Poison task: park it on the dead-letter queue and
                        // still signal so the web role's count completes.
                        match self.tasks.complete(&claimed).await {
                            Ok(()) => {
                                self.dead.submit(&claimed.task).await?;
                                self.done
                                    .signal(format!("dead-after-{attempt}").into_bytes())
                                    .await?;
                                report.dead_lettered += 1;
                            }
                            Err(StorageError::PopReceiptMismatch) => {
                                report.superseded += 1;
                            }
                            Err(e) => return Err(e),
                        }
                        continue;
                    }
                    match self.tasks.complete(&claimed).await {
                        Ok(()) => {
                            process(claimed.task, attempt).await;
                            self.done
                                .signal(format!("attempt-{attempt}").into_bytes())
                                .await?;
                            report.processed += 1;
                        }
                        Err(StorageError::PopReceiptMismatch) => {
                            // Someone else owns the task now; drop our work.
                            report.superseded += 1;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azsim_client::VirtualEnv;
    use azsim_core::runtime::{actor, ActorCtx, ActorFn};
    use azsim_core::Simulation;
    use azsim_fabric::Cluster;
    use serde::Deserialize;

    #[derive(Serialize, Deserialize, Clone, PartialEq, Debug)]
    struct Unit {
        id: u32,
    }

    #[test]
    fn web_plus_workers_complete_everything() {
        let workers = 5usize;
        let n_tasks = 30u32;
        let sim = Simulation::new(Cluster::with_defaults(), 21);
        let mut actors: Vec<ActorFn<'_, Cluster, (usize, usize)>> = Vec::new();
        // Web role.
        actors.push(actor(move |ctx: ActorCtx<Cluster>| async move {
            let env = VirtualEnv::new(&ctx);
            let bag: BagOfTasks<'_, _, Unit> = BagOfTasks::new(&env, "app");
            bag.init().await.unwrap();
            let submitted = bag
                .submit_all((0..n_tasks).map(|id| Unit { id }))
                .await
                .unwrap();
            let done = bag.wait_all(submitted).await.unwrap();
            (submitted, done)
        }));
        // Worker roles.
        for _ in 0..workers {
            actors.push(actor(move |ctx: ActorCtx<Cluster>| async move {
                let env = VirtualEnv::new(&ctx);
                let bag: BagOfTasks<'_, _, Unit> = BagOfTasks::new(&env, "app");
                bag.init().await.unwrap();
                let r = bag
                    .run_worker(3, Duration::from_secs(1), &env, async |_task, _attempt| {})
                    .await
                    .unwrap();
                (r.processed, r.superseded)
            }));
        }
        let report = sim.run(actors);
        let (submitted, done) = report.results[0];
        assert_eq!(submitted, n_tasks as usize);
        assert!(done >= n_tasks as usize);
        let processed: usize = report.results[1..].iter().map(|(p, _)| p).sum();
        assert_eq!(processed, n_tasks as usize);
    }

    #[test]
    fn poison_tasks_are_dead_lettered_not_looped_forever() {
        // One task payload deterministically "crashes" its processor: the
        // worker claims it but abandons processing (simulated by never
        // completing within the window is hard to express with the closure
        // API, so we exercise the attempt-limit path directly: pre-poison
        // the message by claiming and abandoning it past the limit).
        let sim = Simulation::new(Cluster::with_defaults(), 23);
        let report = sim.run_workers(1, |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let bag: BagOfTasks<'_, _, Unit> = BagOfTasks::new(&env, "poison")
                .with_max_attempts(3)
                .with_visibility(Duration::from_secs(2));
            bag.init().await.unwrap();
            bag.submit_all([Unit { id: 666 }, Unit { id: 1 }])
                .await
                .unwrap();
            // Burn three delivery attempts of whatever comes first in a
            // deterministic way: claim-and-abandon the poison id.
            let mut burned = 0;
            while burned < 3 {
                if let Some(c) = bag.tasks.claim().await.unwrap() {
                    if c.task.id == 666 {
                        burned += 1; // abandon: no complete()
                        ctx.sleep(Duration::from_secs(3)).await; // let it reappear
                    } else {
                        bag.tasks.complete(&c).await.unwrap();
                        bag.done.signal("ok".as_bytes().to_vec()).await.unwrap();
                    }
                } else {
                    ctx.sleep(Duration::from_secs(1)).await;
                }
            }
            // Now run the normal worker loop: the poison task arrives with
            // attempt 4 > 3 and must be dead-lettered, not processed.
            let mut processed_ids = Vec::new();
            let r = bag
                .run_worker(3, Duration::from_secs(1), &env, async |t: Unit, _a| {
                    processed_ids.push(t.id);
                })
                .await
                .unwrap();
            assert!(
                !processed_ids.contains(&666),
                "poison must not be processed"
            );
            assert_eq!(r.dead_lettered, 1);
            // The dead-letter queue holds it for inspection.
            let parked = bag.dead.claim().await.unwrap().unwrap();
            assert_eq!(parked.task.id, 666);
            // And the indicator still accounts for both tasks.
            assert!(bag.done.count().await.unwrap() >= 2);
        });
        let _ = report;
    }

    #[test]
    fn processing_spreads_across_workers() {
        let workers = 4usize;
        let n_tasks = 40u32;
        let sim = Simulation::new(Cluster::with_defaults(), 22);
        let report = sim.run_workers(workers, move |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let bag: BagOfTasks<'_, _, Unit> = BagOfTasks::new(&env, "spread");
            bag.init().await.unwrap();
            if ctx.id().0 == 0 {
                bag.submit_all((0..n_tasks).map(|id| Unit { id }))
                    .await
                    .unwrap();
            }
            let r = bag
                .run_worker(3, Duration::from_secs(1), &env, async |_t, _a| {
                    // Simulate compute so tasks interleave across workers.
                    ctx.sleep(Duration::from_millis(200)).await;
                })
                .await
                .unwrap();
            r.processed
        });
        let total: usize = report.results.iter().sum();
        assert_eq!(total, n_tasks as usize);
        // With 40 tasks, 4 workers and equal task cost, nobody should have
        // grabbed everything.
        assert!(
            report.results.iter().all(|&p| p > 0),
            "work must spread: {:?}",
            report.results
        );
    }
}
