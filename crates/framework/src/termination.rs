//! The termination-indicator queue.
//!
//! Because Azure queues are not FIFO, putting an "end of work" marker on
//! the *task* queue is unsafe — a worker might read it before real tasks
//! and quit early (paper §IV-B). The recommended pattern is a dedicated
//! queue where workers signal completed units and the web role polls the
//! message count to track progress and update the user interface.

use azsim_client::{Environment, QueueClient};
use azsim_storage::StorageResult;
use bytes::Bytes;
use std::time::Duration;

/// A write-mostly signal queue: workers [`signal`](Self::signal) events,
/// the front end [`count`](Self::count)s or
/// [`wait_for`](Self::wait_for)s them.
pub struct TerminationIndicator<'e, E: Environment> {
    queue: QueueClient<'e, E>,
    env: &'e E,
    poll_interval: Duration,
}

impl<'e, E: Environment> TerminationIndicator<'e, E> {
    /// Bind to `queue_name`.
    pub fn new(env: &'e E, queue_name: impl Into<String>) -> Self {
        TerminationIndicator {
            queue: QueueClient::new(env, queue_name),
            env,
            poll_interval: Duration::from_secs(1),
        }
    }

    /// Change the polling interval used by [`wait_for`](Self::wait_for).
    pub fn with_poll_interval(mut self, d: Duration) -> Self {
        self.poll_interval = d;
        self
    }

    /// Create the underlying queue (idempotent).
    pub async fn init(&self) -> StorageResult<()> {
        self.queue.create().await
    }

    /// Signal one completed unit of work, with a small payload describing
    /// it (phase id, task id — anything the front end may display).
    pub async fn signal(&self, what: impl Into<Bytes>) -> StorageResult<()> {
        self.queue.put_message(what.into()).await
    }

    /// Number of signals so far.
    pub async fn count(&self) -> StorageResult<usize> {
        self.queue.message_count().await
    }

    /// Block until at least `n` signals have been recorded, polling with a
    /// one-second back-off (the paper's pattern for progress reporting).
    pub async fn wait_for(&self, n: usize) -> StorageResult<usize> {
        loop {
            let c = self.count().await?;
            if c >= n {
                return Ok(c);
            }
            self.env.sleep(self.poll_interval).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azsim_client::VirtualEnv;
    use azsim_core::runtime::{actor, ActorCtx, ActorFn};
    use azsim_core::Simulation;
    use azsim_fabric::Cluster;

    #[test]
    fn web_role_observes_worker_progress() {
        let workers = 6usize;
        let sim = Simulation::new(Cluster::with_defaults(), 5);
        let mut actors: Vec<ActorFn<'_, Cluster, usize>> = Vec::new();
        // Web role: waits for all workers.
        actors.push(actor(move |ctx: ActorCtx<Cluster>| async move {
            let env = VirtualEnv::new(&ctx);
            let ind = TerminationIndicator::new(&env, "done");
            ind.init().await.unwrap();
            ind.wait_for(workers).await.unwrap()
        }));
        // Workers: do "work" (sleep), then signal.
        for w in 0..workers {
            actors.push(actor(move |ctx: ActorCtx<Cluster>| async move {
                let env = VirtualEnv::new(&ctx);
                let ind = TerminationIndicator::new(&env, "done");
                ind.init().await.unwrap();
                ctx.sleep(Duration::from_millis(500 * (w as u64 + 1))).await;
                ind.signal(format!("task-{w}").into_bytes()).await.unwrap();
                0
            }));
        }
        let report = sim.run(actors);
        assert_eq!(report.results[0], workers);
        // The web role finished after the slowest worker signaled.
        assert!(report.end_time >= azsim_core::SimTime::from_millis(500 * workers as u64));
    }

    #[test]
    fn count_reflects_signals() {
        let sim = Simulation::new(Cluster::with_defaults(), 6);
        sim.run_workers(1, |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let ind = TerminationIndicator::new(&env, "done");
            ind.init().await.unwrap();
            assert_eq!(ind.count().await.unwrap(), 0);
            for i in 0..5 {
                ind.signal(vec![i as u8]).await.unwrap();
            }
            assert_eq!(ind.count().await.unwrap(), 5);
            // wait_for returns immediately once satisfied.
            assert_eq!(ind.wait_for(5).await.unwrap(), 5);
        });
    }
}
