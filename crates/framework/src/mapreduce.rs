//! MapReduce over Azure storage primitives.
//!
//! The paper's introduction singles out Azure's lack of "traditional
//! parallel programming support such as MPI and map-reduce", and points at
//! Twister4Azure (its reference \[15\]) — an *iterative* MapReduce runtime
//! built purely from the storage services this repository models. This
//! module provides that substrate:
//!
//! * **map tasks** travel on a task-assignment queue; each mapper writes
//!   its partitioned intermediate data to Blob storage (one block blob per
//!   `(map task, reduce bucket)`), then signals a termination indicator;
//! * the **driver** (web role) watches the indicator, then enqueues one
//!   **reduce task** per bucket; reducers pull every mapper's bucket blob,
//!   group by key, reduce, and write an output blob;
//! * workers are *phase-agnostic*: one worker loop serves map and reduce
//!   tasks alike, so the same role instances carry the whole job;
//! * **iteration** (the Twister4Azure contribution): the driver feeds each
//!   round's reduce outputs into the next round's map inputs until the job
//!   declares convergence.
//!
//! Crash tolerance is inherited from the task queue's visibility timeouts:
//! a mapper or reducer that dies mid-task has its task re-delivered, and
//! intermediate blob writes are idempotent (same name, same content).

use crate::taskqueue::TaskQueue;
use crate::termination::TerminationIndicator;
use azsim_client::{BlobClient, Environment};
use azsim_storage::{StorageError, StorageResult};
use bytes::Bytes;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// A MapReduce job definition.
pub trait MapReduceJob {
    /// One map task's input.
    type MapIn: Serialize + DeserializeOwned + Clone;
    /// Intermediate key (its ordering defines reduce grouping).
    type Key: Serialize + DeserializeOwned + Ord + Clone;
    /// Intermediate value.
    type Value: Serialize + DeserializeOwned;
    /// One reduce group's output.
    type Out: Serialize + DeserializeOwned + Clone;

    /// The map function.
    fn map(&self, input: &Self::MapIn) -> Vec<(Self::Key, Self::Value)>;

    /// The reduce function.
    fn reduce(&self, key: &Self::Key, values: Vec<Self::Value>) -> Self::Out;

    /// Which reduce bucket a key belongs to (0..`buckets`). The default
    /// hashes the key's JSON encoding.
    fn bucket(&self, key: &Self::Key, buckets: usize) -> usize {
        let json = serde_json::to_vec(key).expect("key must serialize");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in json {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        (h % buckets as u64) as usize
    }

    /// Iterative driver hook: given a finished round's outputs, produce
    /// the next round's map inputs, or `None` when converged. The default
    /// is a single-round job.
    fn next_round(&self, _round: usize, _outputs: &[Self::Out]) -> Option<Vec<Self::MapIn>> {
        None
    }
}

#[derive(Serialize, Deserialize, Clone)]
enum MrTask<M> {
    Map {
        round: usize,
        id: usize,
        input: M,
        buckets: usize,
    },
    Reduce {
        round: usize,
        bucket: usize,
        maps: usize,
    },
}

/// Storage naming + clients for one MapReduce application.
pub struct MapReduce<'e, E: Environment, J: MapReduceJob> {
    job: J,
    name: String,
    tasks: TaskQueue<'e, E, MrTask<J::MapIn>>,
    done: TerminationIndicator<'e, E>,
    blobs: BlobClient<'e, E>,
    env: &'e E,
    /// Number of reduce buckets.
    pub buckets: usize,
}

impl<'e, E: Environment, J: MapReduceJob> MapReduce<'e, E, J> {
    /// Bind a MapReduce application `name` with `buckets` reduce buckets.
    pub fn new(env: &'e E, name: &str, job: J, buckets: usize) -> Self {
        assert!(buckets > 0);
        MapReduce {
            job,
            name: name.to_owned(),
            tasks: TaskQueue::new(env, format!("{name}-mr-tasks")),
            done: TerminationIndicator::new(env, format!("{name}-mr-done")),
            blobs: BlobClient::new(env, format!("{name}-mr")),
            env,
            buckets,
        }
    }

    /// Create the underlying queues and container (idempotent; every role
    /// must call it).
    pub async fn init(&self) -> StorageResult<()> {
        self.tasks.init().await?;
        self.done.init().await?;
        self.blobs.create_container().await
    }

    fn inter_blob(&self, round: usize, map_id: usize, bucket: usize) -> String {
        format!("{}/r{round}/inter-m{map_id}-b{bucket}", self.name)
    }

    fn out_blob(&self, round: usize, bucket: usize) -> String {
        format!("{}/r{round}/out-b{bucket}", self.name)
    }

    /// Driver side: run the whole (possibly iterative) job to completion
    /// and return the final round's outputs. Workers must be running
    /// [`run_worker`](Self::run_worker) concurrently.
    pub async fn run_driver(&self, inputs: Vec<J::MapIn>) -> StorageResult<Vec<J::Out>> {
        let mut round = 0usize;
        let mut inputs = inputs;
        // Signals accumulate on the indicator queue across rounds AND
        // across repeated `run_driver` calls (an outer iterative loop, as
        // in k-means); always baseline against the current count.
        let mut signals_seen = self.done.count().await?;
        loop {
            let maps = inputs.len();
            for (id, input) in inputs.iter().enumerate() {
                self.tasks
                    .submit(&MrTask::Map {
                        round,
                        id,
                        input: input.clone(),
                        buckets: self.buckets,
                    })
                    .await?;
            }
            // Wait for all maps of this round, then fan out reduces.
            signals_seen += maps;
            self.done.wait_for(signals_seen).await?;
            for bucket in 0..self.buckets {
                self.tasks
                    .submit(&MrTask::Reduce {
                        round,
                        bucket,
                        maps,
                    })
                    .await?;
            }
            signals_seen += self.buckets;
            self.done.wait_for(signals_seen).await?;

            // Collect this round's outputs.
            let mut outputs: Vec<J::Out> = Vec::new();
            for bucket in 0..self.buckets {
                let blob = self.out_blob(round, bucket);
                let data = self.blobs.download(&blob).await?;
                let mut part: Vec<J::Out> =
                    serde_json::from_slice(&data).expect("malformed reduce output");
                outputs.append(&mut part);
            }
            match self.job.next_round(round, &outputs) {
                Some(next) => {
                    round += 1;
                    inputs = next;
                }
                None => return Ok(outputs),
            }
        }
    }

    async fn execute_map(
        &self,
        round: usize,
        id: usize,
        input: &J::MapIn,
        buckets: usize,
    ) -> StorageResult<()> {
        let pairs = self.job.map(input);
        let mut by_bucket: Vec<Vec<(J::Key, J::Value)>> =
            (0..buckets).map(|_| Vec::new()).collect();
        for (k, v) in pairs {
            let b = self.job.bucket(&k, buckets);
            by_bucket[b].push((k, v));
        }
        for (b, pairs) in by_bucket.into_iter().enumerate() {
            // Empty buckets still get a blob so reducers need no listing.
            let json = serde_json::to_vec(&pairs).expect("intermediate data must serialize");
            self.blobs
                .upload(&self.inter_blob(round, id, b), Bytes::from(json))
                .await?;
        }
        Ok(())
    }

    async fn execute_reduce(&self, round: usize, bucket: usize, maps: usize) -> StorageResult<()> {
        let mut grouped: BTreeMap<J::Key, Vec<J::Value>> = BTreeMap::new();
        for m in 0..maps {
            let data = self
                .blobs
                .download(&self.inter_blob(round, m, bucket))
                .await?;
            let pairs: Vec<(J::Key, J::Value)> =
                serde_json::from_slice(&data).expect("malformed intermediate data");
            for (k, v) in pairs {
                grouped.entry(k).or_default().push(v);
            }
        }
        let outputs: Vec<J::Out> = grouped
            .into_iter()
            .map(|(k, vs)| self.job.reduce(&k, vs))
            .collect();
        let json = serde_json::to_vec(&outputs).expect("reduce output must serialize");
        self.blobs
            .upload(&self.out_blob(round, bucket), Bytes::from(json))
            .await?;
        Ok(())
    }

    /// Worker side: serve map and reduce tasks until the pool stays empty
    /// for `idle_polls` polls of `idle_backoff` each. Returns
    /// `(maps_done, reduces_done)`.
    pub async fn run_worker(
        &self,
        idle_polls: usize,
        idle_backoff: Duration,
    ) -> StorageResult<(usize, usize)> {
        let mut maps_done = 0;
        let mut reduces_done = 0;
        let mut idle = 0;
        while idle < idle_polls {
            match self.tasks.claim().await? {
                None => {
                    idle += 1;
                    self.env.sleep(idle_backoff).await;
                }
                Some(claimed) => {
                    idle = 0;
                    match &claimed.task {
                        MrTask::Map {
                            round,
                            id,
                            input,
                            buckets,
                        } => self.execute_map(*round, *id, input, *buckets).await?,
                        MrTask::Reduce {
                            round,
                            bucket,
                            maps,
                        } => self.execute_reduce(*round, *bucket, *maps).await?,
                    }
                    match self.tasks.complete(&claimed).await {
                        Ok(()) => {
                            match &claimed.task {
                                MrTask::Map { .. } => maps_done += 1,
                                MrTask::Reduce { .. } => reduces_done += 1,
                            }
                            self.done.signal(Bytes::from_static(b"t")).await?;
                        }
                        // Superseded by a re-delivery: the blob writes are
                        // idempotent, the other worker signals.
                        Err(StorageError::PopReceiptMismatch) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        Ok((maps_done, reduces_done))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azsim_client::VirtualEnv;
    use azsim_core::runtime::{actor, ActorCtx, ActorFn};
    use azsim_core::Simulation;
    use azsim_fabric::Cluster;

    /// Classic word count.
    struct WordCount;
    impl MapReduceJob for WordCount {
        type MapIn = String;
        type Key = String;
        type Value = u64;
        type Out = (String, u64);
        fn map(&self, input: &String) -> Vec<(String, u64)> {
            input
                .split_whitespace()
                .map(|w| (w.to_lowercase(), 1))
                .collect()
        }
        fn reduce(&self, key: &String, values: Vec<u64>) -> (String, u64) {
            (key.clone(), values.into_iter().sum())
        }
    }

    fn run_wordcount(workers: usize, docs: Vec<&str>) -> Vec<(String, u64)> {
        let docs: Vec<String> = docs.into_iter().map(String::from).collect();
        let sim = Simulation::new(Cluster::with_defaults(), 55);
        let mut actors: Vec<ActorFn<'_, Cluster, Vec<(String, u64)>>> = Vec::new();
        let driver_docs = docs.clone();
        actors.push(actor(move |ctx: ActorCtx<Cluster>| async move {
            let env = VirtualEnv::new(&ctx);
            let mr = MapReduce::new(&env, "wc", WordCount, 3);
            mr.init().await.unwrap();
            let mut out = mr.run_driver(driver_docs).await.unwrap();
            out.sort();
            out
        }));
        for _ in 0..workers {
            actors.push(actor(move |ctx: ActorCtx<Cluster>| async move {
                let env = VirtualEnv::new(&ctx);
                let mr = MapReduce::new(&env, "wc", WordCount, 3);
                mr.init().await.unwrap();
                mr.run_worker(4, Duration::from_secs(1)).await.unwrap();
                Vec::new()
            }));
        }
        let report = sim.run(actors);
        report.results.into_iter().next().unwrap()
    }

    #[test]
    fn word_count_end_to_end() {
        let out = run_wordcount(
            3,
            vec![
                "the quick brown fox",
                "the lazy dog and the quick cat",
                "brown dog",
            ],
        );
        let get = |w: &str| out.iter().find(|(k, _)| k == w).map(|(_, c)| *c);
        assert_eq!(get("the"), Some(3));
        assert_eq!(get("quick"), Some(2));
        assert_eq!(get("brown"), Some(2));
        assert_eq!(get("dog"), Some(2));
        assert_eq!(get("cat"), Some(1));
        // Nothing invented.
        let total: u64 = out.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 13);
    }

    #[test]
    fn single_worker_suffices() {
        let out = run_wordcount(1, vec!["a b a"]);
        assert_eq!(out, vec![("a".into(), 2), ("b".into(), 1)]);
    }

    /// An iterative job: repeatedly halve numbers until all are ≤ 1
    /// (a miniature stand-in for k-means-style convergence loops).
    struct HalveUntilSmall;
    impl MapReduceJob for HalveUntilSmall {
        type MapIn = u64;
        type Key = u64; // bucket everything together per parity
        type Value = u64;
        type Out = u64;
        fn map(&self, input: &u64) -> Vec<(u64, u64)> {
            vec![(*input % 2, *input / 2)]
        }
        fn reduce(&self, _key: &u64, values: Vec<u64>) -> u64 {
            values.into_iter().max().unwrap_or(0)
        }
        fn next_round(&self, round: usize, outputs: &[u64]) -> Option<Vec<u64>> {
            assert!(round < 20, "must converge");
            if outputs.iter().all(|&v| v <= 1) {
                None
            } else {
                Some(outputs.to_vec())
            }
        }
    }

    #[test]
    fn iterative_job_converges_across_rounds() {
        let sim = Simulation::new(Cluster::with_defaults(), 56);
        let mut actors: Vec<ActorFn<'_, Cluster, Vec<u64>>> = Vec::new();
        actors.push(actor(|ctx: ActorCtx<Cluster>| async move {
            let env = VirtualEnv::new(&ctx);
            let mr = MapReduce::new(&env, "halve", HalveUntilSmall, 2);
            mr.init().await.unwrap();
            mr.run_driver(vec![37, 8, 129]).await.unwrap()
        }));
        for _ in 0..2 {
            actors.push(actor(|ctx: ActorCtx<Cluster>| async move {
                let env = VirtualEnv::new(&ctx);
                let mr = MapReduce::new(&env, "halve", HalveUntilSmall, 2);
                mr.init().await.unwrap();
                mr.run_worker(6, Duration::from_secs(1)).await.unwrap();
                Vec::new()
            }));
        }
        let report = sim.run(actors);
        let out = &report.results[0];
        assert!(!out.is_empty());
        assert!(out.iter().all(|&v| v <= 1), "converged outputs: {out:?}");
    }
}
