//! # azsim-framework — the paper's generic application framework
//!
//! Section III of the paper lays out a reusable structure for scientific
//! (bag-of-task) applications on Azure: a **web role** posts work to a
//! *task-assignment queue*; N **worker roles** poll it, fetch data from
//! storage, process, and signal completion on a dedicated
//! *termination-indicator queue* the web role polls for progress. Because
//! one role instance cannot query another's state, *all* coordination goes
//! through storage.
//!
//! This crate implements that framework over `azsim-client`:
//!
//! * [`termination::TerminationIndicator`] — the dedicated signaling queue
//!   (the paper warns a non-FIFO task queue must never carry the "end of
//!   work" marker);
//! * [`barrier::QueueBarrier`] — Algorithm 2's queue-as-shared-memory
//!   barrier, including the message-count accounting across repeated
//!   synchronization phases and the one-second polling back-off;
//! * [`taskqueue::TaskQueue`] — typed (serde-JSON) task envelopes over a
//!   queue, with visibility-timeout-based crash recovery;
//! * [`bag::BagOfTasks`] — the end-to-end pattern: submit, process, track;
//! * [`mapreduce::MapReduce`] — a Twister4Azure-style (iterative) MapReduce
//!   runtime built purely from queues, blobs and the indicator pattern —
//!   the programming model the paper notes Azure lacks natively.

pub mod bag;
pub mod barrier;
pub mod mapreduce;
pub mod taskqueue;
pub mod termination;

pub use bag::{BagOfTasks, WorkerReport};
pub use barrier::QueueBarrier;
pub use mapreduce::{MapReduce, MapReduceJob};
pub use taskqueue::{ClaimedTask, TaskQueue};
pub use termination::TerminationIndicator;
