//! # azsim-client — SDK-style clients for the simulated Azure storage
//!
//! The counterpart of the 2011 Azure SDK's `CloudBlobClient`,
//! `CloudQueueClient` and `CloudTableClient`: typed, `async` wrappers over
//! the request protocol, with the paper's retry behaviour (sleep one second
//! on `ServerBusy`, then retry) built in.
//!
//! Clients are generic over an [`Environment`]:
//!
//! * [`VirtualEnv`] runs against the stackless-coroutine virtual-time
//!   simulation — awaiting a call or a sleep suspends the worker until the
//!   event heap delivers its wakeup (the benchmark mode);
//! * [`live::LiveEnv`] runs against the very same [`azsim_fabric::Cluster`]
//!   in real (optionally time-scaled) wall-clock time — its futures are
//!   already complete when returned, so drive them with
//!   [`azsim_core::block_on`] (the mode the interactive examples use);
//! * [`file::FileEnv`] runs against an actual filesystem directory — the
//!   `file://` live backend that validates the client stack against a
//!   real storage medium instead of the simulated cluster.

pub mod blob;
pub mod env;
pub mod file;
pub mod idempotent;
pub mod live;
pub mod queue;
pub mod resilience;
pub mod retry;
pub mod table;

pub use blob::BlobClient;
pub use env::{Environment, FleetEnv, VirtualEnv};
pub use file::{FileEnv, FileStore};
pub use idempotent::{delete_message_checked, insert_idempotent, update_idempotent, OP_MARKER};
pub use live::{LiveCluster, LiveEnv};
pub use queue::QueueClient;
pub use resilience::{
    BackoffConfig, BreakerConfig, BreakerEvent, BreakerTransition, ClientPolicy, ErrorClass,
    ResilienceStats, ResilientPolicy, RetryBudgetConfig, RetrySpan,
};
pub use retry::RetryPolicy;
pub use table::TableClient;
