//! Composable resilience layer: classification, backoff, deadlines and a
//! per-partition circuit breaker.
//!
//! The paper-faithful [`crate::RetryPolicy`] (sleep one second on
//! `ServerBusy`, retry) stays the default everywhere so figure
//! reproductions are unchanged. [`ResilientPolicy`] is the opt-in
//! alternative for running workloads under fault injection
//! (`azsim_fabric::FaultPlan`): it layers
//!
//! * **retry/abort classification** per error kind ([`classify`]):
//!   throttles and server faults are safely retryable, timeouts are
//!   *ambiguous* (the operation may have executed server-side) and only
//!   retried when the caller accepts at-least-once semantics, semantic
//!   errors abort immediately;
//! * **exponential backoff with decorrelated jitter**
//!   ([`BackoffConfig`]): each sleep is drawn uniformly from
//!   `[base, prev * multiplier]` and capped, which spreads synchronized
//!   retry storms; a longer server-provided `retry_after` hint always
//!   wins;
//! * **per-operation deadlines**: once the next sleep would push the
//!   operation past its budget the policy gives up with
//!   `StorageError::Timeout` instead of sleeping;
//! * a **per-partition circuit breaker** ([`BreakerConfig`]): after a run
//!   of consecutive transient failures against one [`PartitionKey`] the
//!   breaker opens and further calls fail fast (no cluster traffic) until
//!   a cooldown elapses, then a half-open probe decides whether to close.
//!
//! All randomness comes from a dedicated seeded stream, so a simulation
//! run with a `ResilientPolicy` is exactly as reproducible as one with
//! the fixed-backoff paper policy.

use crate::env::Environment;
use crate::retry::RetryPolicy;
use azsim_core::rng::stream_rng;
use azsim_core::SimTime;
use azsim_storage::{
    OpClass, PartitionKey, StorageError, StorageOk, StorageRequest, StorageResult,
};
use rand::rngs::SmallRng;
use rand::Rng;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

/// RNG stream tag for backoff jitter (see [`azsim_core::rng::stream_rng`]).
const JITTER_STREAM: u64 = 0xB0FF;

/// What a client should do with a failed operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorClass {
    /// Safe to retry: the server rejected the request without executing it
    /// (`ServerBusy`, `ServerFault`).
    Transient,
    /// The request *may* have executed server-side (`Timeout`): retrying is
    /// only safe for idempotent operations / at-least-once semantics.
    Ambiguous,
    /// A semantic answer (not-found, precondition failed, …): retrying the
    /// identical request cannot succeed.
    Permanent,
}

/// Classify an error for retry purposes.
pub fn classify(err: &StorageError) -> ErrorClass {
    match err {
        StorageError::ServerBusy { .. }
        | StorageError::SlowDown { .. }
        | StorageError::ServerFault { .. } => ErrorClass::Transient,
        StorageError::Timeout { .. } => ErrorClass::Ambiguous,
        _ => ErrorClass::Permanent,
    }
}

/// Exponential backoff with decorrelated jitter.
///
/// The `n`-th sleep is drawn uniformly from `[base, prev * multiplier]`
/// (clamped to `cap`), where `prev` is the previous sleep — the
/// "decorrelated jitter" scheme that avoids synchronized retry waves while
/// still growing exponentially in expectation.
#[derive(Clone, Copy, Debug)]
pub struct BackoffConfig {
    /// Minimum (and first) sleep.
    pub base: Duration,
    /// Upper bound on any single sleep.
    pub cap: Duration,
    /// Growth factor of the sampling window.
    pub multiplier: f64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(10),
            multiplier: 3.0,
        }
    }
}

impl BackoffConfig {
    /// Draw the next sleep given the previous one.
    fn next(&self, rng: &mut SmallRng, prev: Duration) -> Duration {
        let hi = (prev.as_secs_f64() * self.multiplier).min(self.cap.as_secs_f64());
        let lo = self.base.as_secs_f64().min(hi);
        if hi <= lo {
            return Duration::from_secs_f64(lo);
        }
        Duration::from_secs_f64(rng.random_range(lo..hi))
    }
}

/// Per-partition circuit-breaker configuration.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive transient failures against one partition that open the
    /// breaker.
    pub failure_threshold: u32,
    /// How long an open breaker fails fast before allowing a half-open
    /// probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_secs(30),
        }
    }
}

/// Client-wide retry-budget configuration: a token pool shared by every
/// operation the policy runs.
///
/// Each retry spends one token; each successful attempt refills
/// `refill_per_success` tokens (capped at `capacity`). Under a healthy
/// cluster the pool stays full and the budget is invisible; under a wide
/// fault (an ack-loss storm timing out every request) the pool drains and
/// the client stops amplifying the outage with retry traffic — at most
/// `capacity + refill_per_success × successes` retries are ever sent.
/// When the budget is exhausted the operation fails with its *own* last
/// error (a timeout stays a timeout), so callers still see what the
/// cluster actually did.
#[derive(Clone, Copy, Debug)]
pub struct RetryBudgetConfig {
    /// Maximum (and initial) number of banked retry tokens.
    pub capacity: u32,
    /// Tokens earned back per successful attempt.
    pub refill_per_success: f64,
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        RetryBudgetConfig {
            capacity: 10,
            refill_per_success: 0.1,
        }
    }
}

/// Counters accumulated by a [`ResilientPolicy`] across operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Requests actually sent to the cluster.
    pub attempts: u64,
    /// Sleeps taken before re-sending.
    pub retries: u64,
    /// Operations abandoned after exhausting `max_attempts`.
    pub giveups: u64,
    /// Operations rejected locally by an open breaker (no cluster traffic).
    pub fast_failures: u64,
    /// Times a breaker transitioned closed → open.
    pub breaker_opens: u64,
    /// Operations abandoned because the deadline budget ran out.
    pub deadline_expired: u64,
    /// Retries suppressed because the retry budget was exhausted (the
    /// operation failed with its own last error, not a synthetic one).
    pub budget_exhausted: u64,
}

#[derive(Clone, Debug)]
struct BreakerState {
    consecutive: u32,
    open_until: Option<SimTime>,
    last_error: StorageError,
    /// Whether this breaker has opened at least once since it was created —
    /// gates the `Closed` event so healthy partitions don't emit one on
    /// every streak reset.
    opened: bool,
}

/// A circuit-breaker state transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerTransition {
    /// Closed → open: consecutive transient failures hit the threshold;
    /// further calls fail fast until the cooldown elapses.
    Opened,
    /// Open → half-open: the cooldown elapsed and one probe operation is
    /// allowed through.
    HalfOpen,
    /// Half-open (or any failing streak after an open) → closed: the
    /// partition answered, the breaker entry is dropped.
    Closed,
}

/// One recorded breaker state transition. Collected when event logging is
/// enabled ([`ResilientPolicy::with_event_log`]) so harnesses can render
/// breaker lifecycles on telemetry timelines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BreakerEvent {
    /// Virtual time of the transition.
    pub at: SimTime,
    /// The partition whose breaker transitioned.
    pub partition: PartitionKey,
    /// Which transition occurred.
    pub kind: BreakerTransition,
}

/// One recorded retry wait: the client-side backoff span between two
/// attempts of the same operation. Collected when span logging is enabled
/// ([`ResilientPolicy::with_span_log`]) so harnesses can attribute retry
/// time to the `retry_backoff` phase of the observability layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetrySpan {
    /// Class of the operation being retried.
    pub class: OpClass,
    /// Virtual time the wait began.
    pub at: SimTime,
    /// How long the policy slept before the next attempt.
    pub wait: Duration,
    /// The attempt number that just failed (1-based).
    pub attempt: usize,
}

struct Inner {
    rng: SmallRng,
    breakers: HashMap<PartitionKey, BreakerState>,
    stats: ResilienceStats,
    spans: Option<Vec<RetrySpan>>,
    events: Option<Vec<BreakerEvent>>,
    /// Banked retry tokens (meaningful only with a budget configured).
    budget_tokens: f64,
}

/// The composable resilience executor. Construct with [`ResilientPolicy::new`],
/// tune with the `with_*` builders, then drive requests through
/// [`ResilientPolicy::run`] exactly like [`crate::RetryPolicy`].
pub struct ResilientPolicy {
    backoff: BackoffConfig,
    max_attempts: usize,
    deadline: Option<Duration>,
    breaker: Option<BreakerConfig>,
    budget: Option<RetryBudgetConfig>,
    retry_ambiguous: bool,
    state: RefCell<Inner>,
}

impl ResilientPolicy {
    /// A policy with default backoff, 8 attempts, no deadline, breaker
    /// enabled with defaults, timeouts retried. `seed` fixes the jitter
    /// stream for reproducibility.
    pub fn new(seed: u64) -> Self {
        ResilientPolicy {
            backoff: BackoffConfig::default(),
            max_attempts: 8,
            deadline: None,
            breaker: Some(BreakerConfig::default()),
            budget: None,
            retry_ambiguous: true,
            state: RefCell::new(Inner {
                rng: stream_rng(seed, JITTER_STREAM),
                breakers: HashMap::new(),
                stats: ResilienceStats::default(),
                spans: None,
                events: None,
                budget_tokens: 0.0,
            }),
        }
    }

    /// Replace the backoff schedule.
    pub fn with_backoff(mut self, backoff: BackoffConfig) -> Self {
        self.backoff = backoff;
        self
    }

    /// Maximum attempts per operation (including the first); `1` disables
    /// retries.
    pub fn with_max_attempts(mut self, max_attempts: usize) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Per-operation wall budget: once elapsed time plus the pending sleep
    /// would exceed it, the operation fails with `StorageError::Timeout`.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Replace (or, with `None`, disable) the per-partition circuit breaker.
    pub fn with_breaker(mut self, breaker: Option<BreakerConfig>) -> Self {
        self.breaker = breaker;
        self
    }

    /// Enable a client-wide retry budget (off by default): a token pool
    /// that caps total retry traffic so a cluster-wide fault cannot
    /// amplify into a retry storm. See [`RetryBudgetConfig`].
    pub fn with_retry_budget(mut self, budget: RetryBudgetConfig) -> Self {
        self.state.borrow_mut().budget_tokens = budget.capacity as f64;
        self.budget = Some(budget);
        self
    }

    /// Treat ambiguous errors (timeouts) as fatal instead of retrying —
    /// for callers that need at-most-once semantics.
    pub fn abort_on_ambiguous(mut self) -> Self {
        self.retry_ambiguous = false;
        self
    }

    /// Record every retry wait as a [`RetrySpan`] (off by default — spans
    /// cost one `Vec` push per retry).
    pub fn with_span_log(self) -> Self {
        self.state.borrow_mut().spans = Some(Vec::new());
        self
    }

    /// Record every breaker state transition as a [`BreakerEvent`] (off by
    /// default — events cost one `Vec` push per transition).
    pub fn with_event_log(self) -> Self {
        self.state.borrow_mut().events = Some(Vec::new());
        self
    }

    /// Drain the recorded breaker events (empty unless
    /// [`ResilientPolicy::with_event_log`] was enabled).
    pub fn take_breaker_events(&self) -> Vec<BreakerEvent> {
        self.state
            .borrow_mut()
            .events
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ResilienceStats {
        self.state.borrow().stats
    }

    /// Drain the recorded retry spans (empty unless
    /// [`ResilientPolicy::with_span_log`] was enabled).
    pub fn take_retry_spans(&self) -> Vec<RetrySpan> {
        self.state
            .borrow_mut()
            .spans
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Execute `req` against `env` under this policy.
    pub async fn run<E: Environment>(
        &self,
        env: &E,
        req: &StorageRequest,
    ) -> StorageResult<StorageOk> {
        let pk = req.partition();
        let start = env.now();

        if let Some(err) = self.breaker_gate(env.now(), &pk) {
            return Err(err);
        }

        let mut prev = self.backoff.base;
        let mut attempt = 0;
        loop {
            attempt += 1;
            self.state.borrow_mut().stats.attempts += 1;
            let err = match env.execute(req.clone()).await {
                Ok(ok) => {
                    self.record_outcome(env.now(), &pk, None);
                    if let Some(b) = self.budget {
                        let inner = &mut *self.state.borrow_mut();
                        inner.budget_tokens =
                            (inner.budget_tokens + b.refill_per_success).min(b.capacity as f64);
                    }
                    return Ok(ok);
                }
                Err(err) => err,
            };

            let retryable = match classify(&err) {
                ErrorClass::Transient => true,
                ErrorClass::Ambiguous => self.retry_ambiguous,
                ErrorClass::Permanent => {
                    // A semantic answer proves the partition is serving:
                    // reset its failure streak, then abort.
                    self.record_outcome(env.now(), &pk, None);
                    return Err(err);
                }
            };
            let opened = self.record_outcome(env.now(), &pk, Some(&err));
            if !retryable || opened {
                return Err(err);
            }
            if attempt >= self.max_attempts {
                self.state.borrow_mut().stats.giveups += 1;
                return Err(err);
            }
            if self.budget.is_some() {
                let inner = &mut *self.state.borrow_mut();
                if inner.budget_tokens < 1.0 {
                    // Budget dry: surface the operation's own error so the
                    // caller sees what the cluster did, not a synthetic
                    // budget-exhausted mask.
                    inner.stats.budget_exhausted += 1;
                    return Err(err);
                }
                inner.budget_tokens -= 1.0;
            }

            let jittered = {
                let inner = &mut *self.state.borrow_mut();
                self.backoff.next(&mut inner.rng, prev)
            };
            prev = jittered;
            let sleep = jittered.max(err.retry_after().unwrap_or(Duration::ZERO));

            if let Some(deadline) = self.deadline {
                let elapsed = env.now().saturating_since(start);
                if elapsed + sleep >= deadline {
                    self.state.borrow_mut().stats.deadline_expired += 1;
                    return Err(StorageError::Timeout { elapsed });
                }
            }

            {
                let inner = &mut *self.state.borrow_mut();
                inner.stats.retries += 1;
                if let Some(spans) = &mut inner.spans {
                    spans.push(RetrySpan {
                        class: req.class(),
                        at: env.now(),
                        wait: sleep,
                        attempt,
                    });
                }
            }
            env.sleep(sleep).await;
        }
    }

    /// Fail fast if the partition's breaker is open; transition open →
    /// half-open when the cooldown has elapsed. Takes the current time
    /// rather than an environment so it stays a plain synchronous helper.
    fn breaker_gate(&self, now: SimTime, pk: &PartitionKey) -> Option<StorageError> {
        self.breaker?;
        let inner = &mut *self.state.borrow_mut();
        let b = inner.breakers.get_mut(pk)?;
        let until = b.open_until?;
        if now < until {
            let err = b.last_error.clone();
            inner.stats.fast_failures += 1;
            return Some(err);
        }
        // Cooldown over: half-open. Let this operation probe the partition;
        // its first failure re-opens immediately (streak is still at the
        // threshold), success closes the breaker.
        b.open_until = None;
        if let Some(events) = &mut inner.events {
            events.push(BreakerEvent {
                at: now,
                partition: pk.clone(),
                kind: BreakerTransition::HalfOpen,
            });
        }
        None
    }

    /// Update the partition's breaker after an attempt. `err` is `None` on
    /// success (or a semantic answer). Returns true when this failure
    /// opened the breaker.
    fn record_outcome(&self, now: SimTime, pk: &PartitionKey, err: Option<&StorageError>) -> bool {
        let Some(cfg) = self.breaker else {
            return false;
        };
        let inner = &mut *self.state.borrow_mut();
        match err {
            None => {
                if inner.breakers.remove(pk).is_some_and(|b| b.opened) {
                    if let Some(events) = &mut inner.events {
                        events.push(BreakerEvent {
                            at: now,
                            partition: pk.clone(),
                            kind: BreakerTransition::Closed,
                        });
                    }
                }
                false
            }
            Some(err) => {
                let b = inner
                    .breakers
                    .entry(pk.clone())
                    .or_insert_with(|| BreakerState {
                        consecutive: 0,
                        open_until: None,
                        last_error: err.clone(),
                        opened: false,
                    });
                b.consecutive += 1;
                b.last_error = err.clone();
                if b.consecutive >= cfg.failure_threshold && b.open_until.is_none() {
                    b.open_until = Some(now + cfg.cooldown);
                    b.opened = true;
                    inner.stats.breaker_opens += 1;
                    if let Some(events) = &mut inner.events {
                        events.push(BreakerEvent {
                            at: now,
                            partition: pk.clone(),
                            kind: BreakerTransition::Opened,
                        });
                    }
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// The policy slot every client carries: either the paper-faithful
/// [`RetryPolicy`] (the default — figure reproductions are unchanged) or a
/// shared [`ResilientPolicy`]. An `Rc` lets one worker's clients share a
/// single jitter stream, breaker map and stat counters.
#[derive(Clone)]
pub enum ClientPolicy {
    /// The paper's fixed-backoff `ServerBusy` retry loop.
    Paper(RetryPolicy),
    /// The composable resilience layer, shared across clients.
    Resilient(Rc<ResilientPolicy>),
}

impl Default for ClientPolicy {
    fn default() -> Self {
        ClientPolicy::Paper(RetryPolicy::default())
    }
}

impl From<RetryPolicy> for ClientPolicy {
    fn from(p: RetryPolicy) -> Self {
        ClientPolicy::Paper(p)
    }
}

impl From<ResilientPolicy> for ClientPolicy {
    fn from(p: ResilientPolicy) -> Self {
        ClientPolicy::Resilient(Rc::new(p))
    }
}

impl From<Rc<ResilientPolicy>> for ClientPolicy {
    fn from(p: Rc<ResilientPolicy>) -> Self {
        ClientPolicy::Resilient(p)
    }
}

impl ClientPolicy {
    /// Execute `req` against `env` under whichever policy is configured.
    pub async fn run<E: Environment>(
        &self,
        env: &E,
        req: &StorageRequest,
    ) -> StorageResult<StorageOk> {
        match self {
            ClientPolicy::Paper(p) => p.run(env, req).await,
            ClientPolicy::Resilient(p) => p.run(env, req).await,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azsim_core::block_on;
    use std::cell::{Cell, RefCell};
    use std::collections::VecDeque;

    /// An environment driven by a script of responses, with a virtual
    /// clock that advances on sleep.
    struct ScriptedEnv {
        clock: Cell<SimTime>,
        script: RefCell<VecDeque<StorageResult<StorageOk>>>,
        calls: Cell<usize>,
        slept: RefCell<Vec<Duration>>,
    }

    impl ScriptedEnv {
        fn new(script: Vec<StorageResult<StorageOk>>) -> Self {
            ScriptedEnv {
                clock: Cell::new(SimTime::ZERO),
                script: RefCell::new(script.into()),
                calls: Cell::new(0),
                slept: RefCell::new(Vec::new()),
            }
        }

        fn advance(&self, d: Duration) {
            self.clock.set(self.clock.get() + d);
        }
    }

    impl Environment for ScriptedEnv {
        fn now(&self) -> SimTime {
            self.clock.get()
        }
        fn sleep(&self, d: Duration) -> impl std::future::Future<Output = ()> {
            self.slept.borrow_mut().push(d);
            self.advance(d);
            std::future::ready(())
        }
        fn execute(
            &self,
            _req: StorageRequest,
        ) -> impl std::future::Future<Output = StorageResult<StorageOk>> {
            self.calls.set(self.calls.get() + 1);
            std::future::ready(
                self.script
                    .borrow_mut()
                    .pop_front()
                    .unwrap_or(Ok(StorageOk::Ack)),
            )
        }
        fn instance(&self) -> usize {
            0
        }
    }

    fn busy(ms: u64) -> StorageResult<StorageOk> {
        Err(StorageError::ServerBusy {
            retry_after: Duration::from_millis(ms),
        })
    }

    fn fault(ms: u64) -> StorageResult<StorageOk> {
        Err(StorageError::ServerFault {
            retry_after: Duration::from_millis(ms),
        })
    }

    fn req() -> StorageRequest {
        StorageRequest::GetMessageCount { queue: "q".into() }
    }

    #[test]
    fn classification_per_error_kind() {
        assert_eq!(
            classify(&StorageError::ServerBusy {
                retry_after: Duration::ZERO
            }),
            ErrorClass::Transient
        );
        assert_eq!(
            classify(&StorageError::ServerFault {
                retry_after: Duration::ZERO
            }),
            ErrorClass::Transient
        );
        assert_eq!(
            classify(&StorageError::Timeout {
                elapsed: Duration::ZERO
            }),
            ErrorClass::Ambiguous
        );
        assert_eq!(
            classify(&StorageError::QueueNotFound("q".into())),
            ErrorClass::Permanent
        );
    }

    #[test]
    fn retries_transient_errors_with_bounded_jitter() {
        let env = ScriptedEnv::new(vec![busy(0), fault(0), busy(0)]);
        let policy = ResilientPolicy::new(7);
        block_on(policy.run(&env, &req())).unwrap();
        assert_eq!(env.calls.get(), 4);
        let slept = env.slept.borrow();
        assert_eq!(slept.len(), 3);
        let cfg = BackoffConfig::default();
        for d in slept.iter() {
            assert!(*d >= cfg.base && *d <= cfg.cap, "sleep {d:?} out of range");
        }
        let stats = policy.stats();
        assert_eq!(stats.attempts, 4);
        assert_eq!(stats.retries, 3);
    }

    #[test]
    fn longer_retry_after_hint_wins_over_jitter() {
        let env = ScriptedEnv::new(vec![busy(5_000)]);
        let policy = ResilientPolicy::new(1);
        block_on(policy.run(&env, &req())).unwrap();
        assert_eq!(env.slept.borrow()[0], Duration::from_secs(5));
    }

    #[test]
    fn jitter_sequence_is_seed_deterministic() {
        let sleeps = |seed: u64| {
            let env = ScriptedEnv::new(vec![busy(0); 5]);
            block_on(
                ResilientPolicy::new(seed)
                    .with_breaker(None)
                    .run(&env, &req()),
            )
            .unwrap();
            let slept = env.slept.borrow().clone();
            slept
        };
        assert_eq!(sleeps(42), sleeps(42));
        assert_ne!(sleeps(42), sleeps(43));
    }

    #[test]
    fn permanent_errors_abort_immediately() {
        let env = ScriptedEnv::new(vec![Err(StorageError::QueueNotFound("q".into()))]);
        let r = block_on(ResilientPolicy::new(0).run(&env, &req()));
        assert!(matches!(r, Err(StorageError::QueueNotFound(_))));
        assert_eq!(env.calls.get(), 1);
        assert!(env.slept.borrow().is_empty());
    }

    #[test]
    fn ambiguous_errors_abort_when_configured() {
        let timeout = || {
            Err(StorageError::Timeout {
                elapsed: Duration::from_secs(30),
            })
        };
        // Default: retried like any transient error.
        let env = ScriptedEnv::new(vec![timeout()]);
        block_on(ResilientPolicy::new(0).run(&env, &req())).unwrap();
        assert_eq!(env.calls.get(), 2);
        // At-most-once: aborted.
        let env = ScriptedEnv::new(vec![timeout()]);
        let r = block_on(
            ResilientPolicy::new(0)
                .abort_on_ambiguous()
                .run(&env, &req()),
        );
        assert!(matches!(r, Err(StorageError::Timeout { .. })));
        assert_eq!(env.calls.get(), 1);
    }

    #[test]
    fn deadline_stops_retrying_before_the_sleep() {
        let env = ScriptedEnv::new(vec![busy(0); 100]);
        let policy = ResilientPolicy::new(3)
            .with_max_attempts(100)
            .with_backoff(BackoffConfig {
                base: Duration::from_millis(60),
                cap: Duration::from_millis(60),
                multiplier: 1.0,
            })
            .with_deadline(Duration::from_millis(100));
        let r = block_on(policy.run(&env, &req()));
        assert!(matches!(r, Err(StorageError::Timeout { .. })));
        // One 60 ms sleep fits the 100 ms budget; the second would not.
        assert_eq!(env.slept.borrow().len(), 1);
        assert_eq!(policy.stats().deadline_expired, 1);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let env = ScriptedEnv::new(vec![busy(0); 100]);
        let policy = ResilientPolicy::new(0).with_max_attempts(3);
        let r = block_on(policy.run(&env, &req()));
        assert!(matches!(r, Err(StorageError::ServerBusy { .. })));
        assert_eq!(env.calls.get(), 3);
        assert_eq!(policy.stats().giveups, 1);
    }

    #[test]
    fn breaker_opens_and_fails_fast_per_partition() {
        let env = ScriptedEnv::new(vec![fault(0); 100]);
        let policy = ResilientPolicy::new(0)
            .with_max_attempts(1)
            .with_breaker(Some(BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_secs(30),
            }));
        for _ in 0..3 {
            block_on(policy.run(&env, &req())).unwrap_err();
        }
        assert_eq!(env.calls.get(), 3);
        assert_eq!(policy.stats().breaker_opens, 1);
        // Open: the next call is rejected locally without cluster traffic.
        let r = block_on(policy.run(&env, &req()));
        assert!(matches!(r, Err(StorageError::ServerFault { .. })));
        assert_eq!(env.calls.get(), 3);
        assert_eq!(policy.stats().fast_failures, 1);
        // A different partition is unaffected.
        block_on(policy.run(
            &env,
            &StorageRequest::GetMessageCount {
                queue: "other".into(),
            },
        ))
        .unwrap_err();
        assert_eq!(env.calls.get(), 4);
    }

    #[test]
    fn breaker_half_open_probe_closes_on_success() {
        let env = ScriptedEnv::new(vec![fault(0), fault(0)]);
        let policy = ResilientPolicy::new(0)
            .with_max_attempts(1)
            .with_breaker(Some(BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_secs(1),
            }));
        block_on(policy.run(&env, &req())).unwrap_err();
        block_on(policy.run(&env, &req())).unwrap_err();
        assert_eq!(policy.stats().breaker_opens, 1);
        env.advance(Duration::from_secs(2));
        // Half-open probe succeeds (script exhausted → Ack) and closes the
        // breaker: further calls flow normally.
        block_on(policy.run(&env, &req())).unwrap();
        block_on(policy.run(&env, &req())).unwrap();
        assert_eq!(env.calls.get(), 4);
        assert_eq!(policy.stats().fast_failures, 0);
    }

    #[test]
    fn breaker_lifecycle_surfaces_as_events() {
        let env = ScriptedEnv::new(vec![fault(0), fault(0)]);
        let policy = ResilientPolicy::new(0)
            .with_max_attempts(1)
            .with_breaker(Some(BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_secs(1),
            }))
            .with_event_log();
        block_on(policy.run(&env, &req())).unwrap_err();
        block_on(policy.run(&env, &req())).unwrap_err();
        let open_at = env.now();
        env.advance(Duration::from_secs(2));
        // Half-open probe succeeds (script exhausted → Ack) and closes.
        block_on(policy.run(&env, &req())).unwrap();
        let events = policy.take_breaker_events();
        let pk = req().partition();
        assert_eq!(
            events,
            vec![
                BreakerEvent {
                    at: open_at,
                    partition: pk.clone(),
                    kind: BreakerTransition::Opened,
                },
                BreakerEvent {
                    at: env.now(),
                    partition: pk.clone(),
                    kind: BreakerTransition::HalfOpen,
                },
                BreakerEvent {
                    at: env.now(),
                    partition: pk,
                    kind: BreakerTransition::Closed,
                },
            ]
        );
        // Drained: a second take returns nothing.
        assert!(policy.take_breaker_events().is_empty());
    }

    #[test]
    fn breaker_half_open_probe_retrips_under_second_window() {
        // A second crash window at the half-open instant: the probe fails
        // and the breaker must re-open immediately (streak still at the
        // threshold), going back to failing fast without new traffic.
        let env = ScriptedEnv::new(vec![fault(0), fault(0), fault(0)]);
        let policy = ResilientPolicy::new(0)
            .with_max_attempts(1)
            .with_breaker(Some(BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_secs(1),
            }))
            .with_event_log();
        block_on(policy.run(&env, &req())).unwrap_err();
        block_on(policy.run(&env, &req())).unwrap_err();
        assert_eq!(policy.stats().breaker_opens, 1);
        env.advance(Duration::from_secs(2));
        // Half-open probe hits the second window and fails → re-trip.
        block_on(policy.run(&env, &req())).unwrap_err();
        assert_eq!(env.calls.get(), 3);
        assert_eq!(
            policy.stats().breaker_opens,
            2,
            "probe failure must re-open"
        );
        // Open again: fail fast, no cluster traffic.
        block_on(policy.run(&env, &req())).unwrap_err();
        assert_eq!(env.calls.get(), 3);
        assert_eq!(policy.stats().fast_failures, 1);
        let kinds: Vec<BreakerTransition> = policy
            .take_breaker_events()
            .into_iter()
            .map(|e| e.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                BreakerTransition::Opened,
                BreakerTransition::HalfOpen,
                BreakerTransition::Opened,
            ]
        );
    }

    #[test]
    fn budget_exhaustion_surfaces_the_original_error() {
        // Three timeouts with a 2-token budget: two retries spend the
        // budget, the third failure surfaces as the operation's own error
        // (a timeout stays a timeout — no synthetic masking error).
        let timeout = || {
            Err(StorageError::Timeout {
                elapsed: Duration::from_secs(30),
            })
        };
        let env = ScriptedEnv::new(vec![timeout(), timeout(), timeout()]);
        let policy = ResilientPolicy::new(0)
            .with_breaker(None)
            .with_max_attempts(10)
            .with_retry_budget(RetryBudgetConfig {
                capacity: 2,
                refill_per_success: 1.0,
            });
        let r = block_on(policy.run(&env, &req()));
        assert!(
            matches!(r, Err(StorageError::Timeout { .. })),
            "exhaustion must surface the underlying error, got {r:?}"
        );
        // 1 initial attempt + 2 budgeted retries, then the pool is dry.
        assert_eq!(env.calls.get(), 3);
        assert_eq!(policy.stats().budget_exhausted, 1);
        assert_eq!(
            policy.stats().giveups,
            0,
            "budget, not max_attempts, stopped it"
        );
        // A success refills the pool: the next failure can retry again.
        let r = block_on(policy.run(&env, &req()));
        assert!(r.is_ok(), "script exhausted → Ack");
        let env2 = &env;
        env2.script.borrow_mut().push_back(timeout());
        block_on(policy.run(env2, &req())).unwrap();
        assert_eq!(policy.stats().retries, 3, "refilled token spent on a retry");
    }

    #[test]
    fn healthy_partitions_emit_no_breaker_events() {
        // A failing streak below the threshold that then succeeds must not
        // emit Closed — the breaker never opened.
        let env = ScriptedEnv::new(vec![fault(0), Ok(StorageOk::Ack)]);
        let policy = ResilientPolicy::new(0).with_event_log();
        block_on(policy.run(&env, &req())).unwrap();
        assert!(policy.take_breaker_events().is_empty());
    }
}
