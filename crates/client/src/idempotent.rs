//! Idempotent retry helpers for ambiguous outcomes.
//!
//! Under fault injection a client can observe `StorageError::Timeout` for
//! an operation that *did* execute server-side (a lost ack, or a crash
//! that cut an in-flight replicated write). Blindly re-issuing such an
//! operation duplicates it: a retried `AddRow` double-inserts, a retried
//! read-modify-write double-applies, a retried `DeleteMessage` presents a
//! receipt that is no longer current. The helpers here make the retry
//! loops safe:
//!
//! * [`insert_idempotent`] — a duplicate-key failure after an ambiguous
//!   insert is resolved by reading the row back: if it carries our exact
//!   payload, the first attempt executed and the insert *succeeded*;
//! * [`update_idempotent`] — read-modify-write under an `If-Match` ETag
//!   condition, with a per-mutation marker property so a re-issued update
//!   whose predecessor secretly executed is detected instead of applied
//!   twice;
//! * [`delete_message_checked`] — queue deletes with pop-receipt
//!   revalidation: a stale receipt after an ambiguous delete means the
//!   message is no longer ours (already deleted, or re-delivered), not
//!   that the workflow failed.
//!
//! All helpers compose with [`crate::ResilientPolicy`]'s blind transient
//! retries: the policy handles clean rejections, these handle ambiguity.

use crate::env::Environment;
use crate::queue::QueueClient;
use crate::table::TableClient;
use azsim_storage::{
    ETag, Entity, EtagCondition, PropValue, QueueMessage, StorageError, StorageResult,
};

/// Property name holding the id of the last logical mutation applied by
/// [`update_idempotent`]. Rows driven through that helper carry it.
pub const OP_MARKER: &str = "last_op";

/// Insert `entity`, treating an `AlreadyExists` answer after a possible
/// ambiguous retry as success *iff* the stored row carries our exact
/// payload (first attempt executed, ack was lost). A genuine conflict —
/// someone else's row under the same key — still surfaces as
/// `AlreadyExists`.
pub async fn insert_idempotent<E: Environment>(
    table: &TableClient<'_, E>,
    entity: &Entity,
) -> StorageResult<ETag> {
    match table.insert(entity.clone()).await {
        Ok(tag) => Ok(tag),
        Err(StorageError::AlreadyExists) => {
            let stored = table
                .query(&entity.partition_key, &entity.row_key)
                .await?
                .ok_or(StorageError::AlreadyExists)?;
            if stored.0 == *entity {
                Ok(stored.1)
            } else {
                Err(StorageError::AlreadyExists)
            }
        }
        Err(e) => Err(e),
    }
}

/// Read-modify-write one existing entity idempotently.
///
/// `op_id` must uniquely identify this *logical* mutation (e.g.
/// `"w3-incr17"`); `mutate` applies it to the current row. The helper
/// loops read → mutate → conditional `If-Match` update:
///
/// * if the stored row already carries `op_id` in its [`OP_MARKER`]
///   property, a previous ambiguous attempt executed — done, nothing is
///   applied twice;
/// * if the `If-Match` update fails with `PreconditionFailed`, the row
///   moved under us (a concurrent writer, or our own secretly-executed
///   re-issue) — re-read and re-decide;
/// * transient faults inside each step are absorbed by the client's
///   configured policy.
///
/// Returns the winning ETag. A caller that sees an ambiguous error can
/// safely re-invoke with the same `op_id`.
pub async fn update_idempotent<E, F>(
    table: &TableClient<'_, E>,
    partition: &str,
    row: &str,
    op_id: &str,
    mutate: F,
) -> StorageResult<ETag>
where
    E: Environment,
    F: Fn(&mut Entity),
{
    loop {
        let Some((mut entity, etag)) = table.query(partition, row).await? else {
            return Err(StorageError::EntityNotFound);
        };
        if entity.properties.get(OP_MARKER) == Some(&PropValue::Str(op_id.to_owned())) {
            return Ok(etag);
        }
        mutate(&mut entity);
        entity
            .properties
            .insert(OP_MARKER.to_owned(), PropValue::Str(op_id.to_owned()));
        match table.update_if(entity, EtagCondition::Match(etag)).await {
            Ok(tag) => return Ok(tag),
            Err(StorageError::PreconditionFailed) => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Delete a claimed message with pop-receipt revalidation. Returns
/// `Ok(true)` when this call (or a secretly-executed earlier attempt)
/// removed the message, `Ok(false)` when the receipt is stale — the
/// message either was already deleted or timed out and was re-delivered
/// to another consumer; in both cases it is no longer ours and retrying
/// the delete is wrong.
pub async fn delete_message_checked<E: Environment>(
    queue: &QueueClient<'_, E>,
    msg: &QueueMessage,
) -> StorageResult<bool> {
    match queue.delete_message(msg).await {
        Ok(()) => Ok(true),
        Err(StorageError::PopReceiptMismatch) => Ok(false),
        Err(e) => Err(e),
    }
}
