//! `CloudTableClient` analogue, bound to one table.

use crate::env::Environment;
use crate::resilience::ClientPolicy;
use azsim_storage::{
    ETag, Entity, EtagCondition, StorageOk, StorageRequest, StorageResult, TableBatchOp,
};

/// A client bound to one table.
pub struct TableClient<'e, E: Environment> {
    env: &'e E,
    table: String,
    policy: ClientPolicy,
}

impl<'e, E: Environment> TableClient<'e, E> {
    /// Bind a client to `table`.
    pub fn new(env: &'e E, table: impl Into<String>) -> Self {
        TableClient {
            env,
            table: table.into(),
            policy: ClientPolicy::default(),
        }
    }

    /// Replace the retry policy: a paper-faithful [`crate::RetryPolicy`] or a
    /// [`crate::ResilientPolicy`] (via [`ClientPolicy`]).
    pub fn with_policy(mut self, policy: impl Into<ClientPolicy>) -> Self {
        self.policy = policy.into();
        self
    }

    /// The bound table name.
    pub fn table(&self) -> &str {
        &self.table
    }

    async fn run(&self, req: StorageRequest) -> StorageResult<StorageOk> {
        self.policy.run(self.env, &req).await
    }

    /// Create the table (idempotent).
    pub async fn create_table(&self) -> StorageResult<()> {
        self.run(StorageRequest::CreateTable {
            table: self.table.clone(),
        })
        .await
        .map(|_| ())
    }

    /// Delete the table and all entities.
    pub async fn delete_table(&self) -> StorageResult<()> {
        self.run(StorageRequest::DeleteTable {
            table: self.table.clone(),
        })
        .await
        .map(|_| ())
    }

    /// Insert a new entity (`AddRow` in the paper's pseudocode).
    pub async fn insert(&self, entity: Entity) -> StorageResult<ETag> {
        match self
            .run(StorageRequest::InsertEntity {
                table: self.table.clone(),
                entity,
            })
            .await?
        {
            StorageOk::Tag(t) => Ok(t),
            other => unreachable!("unexpected response {other:?}"),
        }
    }

    /// Point query by key pair (`Query` in the paper's pseudocode).
    pub async fn query(&self, partition: &str, row: &str) -> StorageResult<Option<(Entity, ETag)>> {
        match self
            .run(StorageRequest::QueryEntity {
                table: self.table.clone(),
                partition: partition.to_owned(),
                row: row.to_owned(),
            })
            .await?
        {
            StorageOk::Entity(e) => Ok(e),
            other => unreachable!("unexpected response {other:?}"),
        }
    }

    /// All entities of one partition, row-key ordered.
    pub async fn query_partition(&self, partition: &str) -> StorageResult<Vec<(Entity, ETag)>> {
        match self
            .run(StorageRequest::QueryPartition {
                table: self.table.clone(),
                partition: partition.to_owned(),
            })
            .await?
        {
            StorageOk::Entities(es) => Ok(es),
            other => unreachable!("unexpected response {other:?}"),
        }
    }

    /// Unconditional update — the paper's wildcard-`*` ETag flavour.
    pub async fn update(&self, entity: Entity) -> StorageResult<ETag> {
        self.update_if(entity, EtagCondition::Any).await
    }

    /// Conditional update.
    pub async fn update_if(&self, entity: Entity, condition: EtagCondition) -> StorageResult<ETag> {
        match self
            .run(StorageRequest::UpdateEntity {
                table: self.table.clone(),
                entity,
                condition,
            })
            .await?
        {
            StorageOk::Tag(t) => Ok(t),
            other => unreachable!("unexpected response {other:?}"),
        }
    }

    /// Execute an entity-group transaction: up to 100 operations against
    /// one partition, applied atomically (all or nothing).
    pub async fn execute_batch(
        &self,
        partition: &str,
        ops: Vec<TableBatchOp>,
    ) -> StorageResult<Vec<Option<ETag>>> {
        match self
            .run(StorageRequest::ExecuteBatch {
                table: self.table.clone(),
                partition: partition.to_owned(),
                ops,
            })
            .await?
        {
            StorageOk::BatchTags(tags) => Ok(tags),
            other => unreachable!("unexpected response {other:?}"),
        }
    }

    /// Unconditional delete.
    pub async fn delete_entity(&self, partition: &str, row: &str) -> StorageResult<()> {
        self.delete_entity_if(partition, row, EtagCondition::Any)
            .await
    }

    /// Conditional delete.
    pub async fn delete_entity_if(
        &self,
        partition: &str,
        row: &str,
        condition: EtagCondition,
    ) -> StorageResult<()> {
        self.run(StorageRequest::DeleteEntity {
            table: self.table.clone(),
            partition: partition.to_owned(),
            row: row.to_owned(),
            condition,
        })
        .await
        .map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::VirtualEnv;
    use azsim_core::Simulation;
    use azsim_fabric::Cluster;
    use azsim_storage::PropValue;

    #[test]
    fn table_crud_via_client() {
        let sim = Simulation::new(Cluster::with_defaults(), 17);
        sim.run_workers(1, |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let t = TableClient::new(&env, "results");
            t.create_table().await.unwrap();

            let e = Entity::new("p0", "r0").with("score", PropValue::I64(10));
            let tag = t.insert(e).await.unwrap();

            let (got, got_tag) = t.query("p0", "r0").await.unwrap().unwrap();
            assert_eq!(got.properties["score"], PropValue::I64(10));
            assert_eq!(got_tag, tag);

            let e2 = Entity::new("p0", "r0").with("score", PropValue::I64(20));
            let tag2 = t.update(e2).await.unwrap();
            assert_ne!(tag, tag2);

            // Stale conditional update fails.
            let e3 = Entity::new("p0", "r0").with("score", PropValue::I64(30));
            assert!(t.update_if(e3, EtagCondition::Match(tag)).await.is_err());

            t.delete_entity("p0", "r0").await.unwrap();
            assert!(t.query("p0", "r0").await.unwrap().is_none());
            t.delete_table().await.unwrap();
        });
    }

    #[test]
    fn per_worker_partitions_like_algorithm_5() {
        let n = 4usize;
        let rows = 20usize;
        let sim = Simulation::new(Cluster::with_defaults(), 23);
        let report = sim.run_workers(n, move |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let t = TableClient::new(&env, "bench");
            t.create_table().await.unwrap();
            let pk = format!("role-{}", env.instance());
            for r in 0..rows {
                t.insert(Entity::new(&pk, r.to_string()).with("v", PropValue::I64(r as i64)))
                    .await
                    .unwrap();
            }
            t.query_partition(&pk).await.unwrap().len()
        });
        assert!(report.results.iter().all(|&len| len == rows));
        assert_eq!(
            report.model.table_store().entity_count("bench").unwrap(),
            n * rows
        );
    }
}
