//! Execution environments: where a client's calls actually go.

use azsim_core::runtime::ActorCtx;
use azsim_core::SimTime;
use azsim_fabric::{Cluster, Fleet, FleetReq};
use azsim_storage::{StorageOk, StorageRequest, StorageResult};
use std::future::Future;
use std::time::Duration;

/// A place a storage client can run: provides a clock, a sleep primitive
/// and a request executor. Implemented by [`VirtualEnv`] (simulated time)
/// and [`crate::LiveEnv`] (wall-clock time).
///
/// `sleep` and `execute` return futures so the same client code runs on the
/// stackless-coroutine simulator (where awaiting suspends the actor until
/// the event heap delivers the wakeup) and in live mode (where the returned
/// futures are already complete — drive them with [`azsim_core::block_on`]).
/// The methods are declared as `-> impl Future` rather than `async fn` so
/// implementors may return named/ready future types and the trait stays
/// lint-clean; the trait is not object-safe, so clients are generic over
/// `E: Environment` instead of holding `&dyn Environment`.
pub trait Environment {
    /// Current time (virtual in simulation, epoch-relative in live mode).
    fn now(&self) -> SimTime;
    /// Wait for `d` (virtual or scaled-real).
    fn sleep(&self, d: Duration) -> impl Future<Output = ()>;
    /// Execute one storage request to completion.
    fn execute(&self, req: StorageRequest) -> impl Future<Output = StorageResult<StorageOk>>;
    /// The role-instance index this environment belongs to.
    fn instance(&self) -> usize;
}

/// Environment backed by the virtual-time runtime: holds its own clone of a
/// worker's [`ActorCtx`] over the [`Cluster`] model (context handles are
/// cheap `Rc`-backed clones sharing one clock and scheduler state).
pub struct VirtualEnv {
    ctx: ActorCtx<Cluster>,
}

impl VirtualEnv {
    /// Wrap an actor context.
    pub fn new(ctx: &ActorCtx<Cluster>) -> Self {
        VirtualEnv { ctx: ctx.clone() }
    }

    /// The underlying actor context (for direct RNG access etc.).
    pub fn ctx(&self) -> &ActorCtx<Cluster> {
        &self.ctx
    }
}

impl Environment for VirtualEnv {
    fn now(&self) -> SimTime {
        self.ctx.now()
    }

    fn sleep(&self, d: Duration) -> impl Future<Output = ()> {
        self.ctx.sleep(d)
    }

    fn execute(&self, req: StorageRequest) -> impl Future<Output = StorageResult<StorageOk>> {
        self.ctx.call(req)
    }

    fn instance(&self) -> usize {
        self.ctx.id().0
    }
}

/// Environment over a multi-account [`Fleet`], pinned to one tenant: every
/// request this environment executes is addressed to `tenant`'s account, so
/// the whole client stack (queue/blob/table clients, retry policies) runs
/// unchanged against any tenant of a sharded fleet. Calls to a foreign
/// tenant (one that is not the actor's home partition in the shard plan)
/// transparently pay the modeled front-end leg each way.
pub struct FleetEnv {
    ctx: ActorCtx<Fleet>,
    tenant: u32,
}

impl FleetEnv {
    /// Wrap an actor context, addressing `tenant`'s account.
    pub fn new(ctx: &ActorCtx<Fleet>, tenant: u32) -> Self {
        FleetEnv {
            ctx: ctx.clone(),
            tenant,
        }
    }

    /// The same actor's view of a different tenant (cheap clone — both
    /// handles share one clock and scheduler state).
    pub fn for_tenant(&self, tenant: u32) -> Self {
        FleetEnv {
            ctx: self.ctx.clone(),
            tenant,
        }
    }

    /// The tenant this environment addresses.
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// The underlying actor context (for direct RNG access etc.).
    pub fn ctx(&self) -> &ActorCtx<Fleet> {
        &self.ctx
    }
}

impl Environment for FleetEnv {
    fn now(&self) -> SimTime {
        self.ctx.now()
    }

    fn sleep(&self, d: Duration) -> impl Future<Output = ()> {
        self.ctx.sleep(d)
    }

    fn execute(&self, req: StorageRequest) -> impl Future<Output = StorageResult<StorageOk>> {
        self.ctx.call(FleetReq {
            tenant: self.tenant,
            req,
        })
    }

    fn instance(&self) -> usize {
        self.ctx.id().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azsim_core::Simulation;
    use bytes::Bytes;

    #[test]
    fn virtual_env_routes_through_simulation() {
        let sim = Simulation::new(Cluster::with_defaults(), 1);
        let report = sim.run_workers(2, |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            assert_eq!(env.instance(), ctx.id().0);
            env.execute(StorageRequest::CreateQueue {
                queue: format!("q{}", env.instance()),
            })
            .await
            .unwrap();
            env.execute(StorageRequest::PutMessage {
                queue: format!("q{}", env.instance()),
                data: Bytes::from_static(b"hello"),
                ttl: None,
            })
            .await
            .unwrap();
            let before = env.now();
            env.sleep(Duration::from_secs(1)).await;
            assert_eq!(env.now(), before + Duration::from_secs(1));
            env.now()
        });
        assert!(report.results.iter().all(|t| *t > SimTime::ZERO));
        assert_eq!(report.model.metrics().total_completed(), 4);
    }
}
