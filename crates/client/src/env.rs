//! Execution environments: where a client's calls actually go.

use azsim_core::runtime::ActorCtx;
use azsim_core::SimTime;
use azsim_fabric::Cluster;
use azsim_storage::{StorageOk, StorageRequest, StorageResult};
use std::time::Duration;

/// A place a storage client can run: provides a clock, a sleep primitive
/// and a request executor. Implemented by [`VirtualEnv`] (simulated time)
/// and [`crate::LiveEnv`] (wall-clock time).
pub trait Environment {
    /// Current time (virtual in simulation, epoch-relative in live mode).
    fn now(&self) -> SimTime;
    /// Block for `d` (virtual or scaled-real).
    fn sleep(&self, d: Duration);
    /// Execute one storage request to completion.
    fn execute(&self, req: StorageRequest) -> StorageResult<StorageOk>;
    /// The role-instance index this environment belongs to.
    fn instance(&self) -> usize;
}

/// Environment backed by the virtual-time runtime: wraps a worker thread's
/// [`ActorCtx`] over the [`Cluster`] model.
pub struct VirtualEnv<'a> {
    ctx: &'a ActorCtx<Cluster>,
}

impl<'a> VirtualEnv<'a> {
    /// Wrap an actor context.
    pub fn new(ctx: &'a ActorCtx<Cluster>) -> Self {
        VirtualEnv { ctx }
    }

    /// The underlying actor context (for direct RNG access etc.).
    pub fn ctx(&self) -> &ActorCtx<Cluster> {
        self.ctx
    }
}

impl Environment for VirtualEnv<'_> {
    fn now(&self) -> SimTime {
        self.ctx.now()
    }

    fn sleep(&self, d: Duration) {
        self.ctx.sleep(d);
    }

    fn execute(&self, req: StorageRequest) -> StorageResult<StorageOk> {
        self.ctx.call(req)
    }

    fn instance(&self) -> usize {
        self.ctx.id().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azsim_core::Simulation;
    use bytes::Bytes;

    #[test]
    fn virtual_env_routes_through_simulation() {
        let sim = Simulation::new(Cluster::with_defaults(), 1);
        let report = sim.run_workers(2, |ctx| {
            let env = VirtualEnv::new(ctx);
            assert_eq!(env.instance(), ctx.id().0);
            env.execute(StorageRequest::CreateQueue {
                queue: format!("q{}", env.instance()),
            })
            .unwrap();
            env.execute(StorageRequest::PutMessage {
                queue: format!("q{}", env.instance()),
                data: Bytes::from_static(b"hello"),
                ttl: None,
            })
            .unwrap();
            let before = env.now();
            env.sleep(Duration::from_secs(1));
            assert_eq!(env.now(), before + Duration::from_secs(1));
            env.now()
        });
        assert!(report.results.iter().all(|t| *t > SimTime::ZERO));
        assert_eq!(report.model.metrics().total_completed(), 4);
    }
}
