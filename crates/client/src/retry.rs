//! Retry policy: the paper's behaviour on throttling.
//!
//! "When we run into such exceptions, the worker sleeps for a second before
//! retrying the same operation" (paper §IV-C).

use crate::env::Environment;
use azsim_storage::{StorageError, StorageOk, StorageRequest, StorageResult};
use std::time::Duration;

/// Retry configuration for `ServerBusy` responses.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Maximum attempts (including the first). `1` disables retries.
    pub max_attempts: usize,
    /// Sleep between attempts (the paper uses one second).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 120,
            backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }

    /// Execute `req` against `env`, sleeping and retrying on `ServerBusy`
    /// until it succeeds, fails with a non-retryable error, or attempts run
    /// out.
    pub async fn run<E: Environment>(
        &self,
        env: &E,
        req: &StorageRequest,
    ) -> StorageResult<StorageOk> {
        let mut attempt = 0;
        loop {
            attempt += 1;
            match env.execute(req.clone()).await {
                Err(
                    StorageError::ServerBusy { retry_after }
                    | StorageError::SlowDown { retry_after },
                ) if attempt < self.max_attempts => {
                    // Sleep at least the configured backoff, but honour a
                    // longer server-provided hint (for `SlowDown` the hint
                    // escalates with consecutive rejections, so obeying it
                    // is what drains the pushback).
                    env.sleep(self.backoff.max(retry_after)).await;
                }
                other => return other,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azsim_core::{block_on, SimTime};
    use std::cell::{Cell, RefCell};

    /// An environment that fails with ServerBusy a fixed number of times.
    struct Flaky {
        failures_left: Cell<usize>,
        calls: Cell<usize>,
        slept: RefCell<Vec<Duration>>,
    }

    impl Environment for Flaky {
        fn now(&self) -> SimTime {
            SimTime::ZERO
        }
        fn sleep(&self, d: Duration) -> impl std::future::Future<Output = ()> {
            self.slept.borrow_mut().push(d);
            std::future::ready(())
        }
        fn execute(
            &self,
            _req: StorageRequest,
        ) -> impl std::future::Future<Output = StorageResult<StorageOk>> {
            self.calls.set(self.calls.get() + 1);
            std::future::ready(if self.failures_left.get() > 0 {
                self.failures_left.set(self.failures_left.get() - 1);
                Err(StorageError::ServerBusy {
                    retry_after: Duration::from_millis(100),
                })
            } else {
                Ok(StorageOk::Ack)
            })
        }
        fn instance(&self) -> usize {
            0
        }
    }

    fn flaky(failures: usize) -> Flaky {
        Flaky {
            failures_left: Cell::new(failures),
            calls: Cell::new(0),
            slept: RefCell::new(Vec::new()),
        }
    }

    fn req() -> StorageRequest {
        StorageRequest::GetMessageCount { queue: "q".into() }
    }

    #[test]
    fn retries_until_success() {
        let env = flaky(3);
        let policy = RetryPolicy::default();
        block_on(policy.run(&env, &req())).unwrap();
        assert_eq!(env.calls.get(), 4);
        assert_eq!(env.slept.borrow().len(), 3);
        // Paper behaviour: the server hint (100 ms) is shorter than the
        // configured backoff, so every sleep is exactly one second.
        assert!(env
            .slept
            .borrow()
            .iter()
            .all(|d| *d == Duration::from_secs(1)));
    }

    #[test]
    fn longer_server_hint_overrides_backoff() {
        // retry_after (100 ms) exceeds the configured backoff (10 ms): the
        // client must wait out the server's hint, not its own shorter default.
        let env = flaky(2);
        let policy = RetryPolicy {
            max_attempts: 10,
            backoff: Duration::from_millis(10),
        };
        block_on(policy.run(&env, &req())).unwrap();
        assert_eq!(
            *env.slept.borrow(),
            vec![Duration::from_millis(100), Duration::from_millis(100)]
        );
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let env = flaky(100);
        let policy = RetryPolicy {
            max_attempts: 5,
            backoff: Duration::from_secs(1),
        };
        let r = block_on(policy.run(&env, &req()));
        assert!(matches!(r, Err(StorageError::ServerBusy { .. })));
        assert_eq!(env.calls.get(), 5);
    }

    #[test]
    fn no_retry_policy_fails_fast() {
        let env = flaky(1);
        let r = block_on(RetryPolicy::none().run(&env, &req()));
        assert!(r.is_err());
        assert_eq!(env.calls.get(), 1);
        assert!(env.slept.borrow().is_empty());
    }

    #[test]
    fn non_retryable_errors_pass_through() {
        struct AlwaysMissing;
        impl Environment for AlwaysMissing {
            fn now(&self) -> SimTime {
                SimTime::ZERO
            }
            async fn sleep(&self, _d: Duration) {
                panic!("must not sleep on non-retryable errors")
            }
            fn execute(
                &self,
                _req: StorageRequest,
            ) -> impl std::future::Future<Output = StorageResult<StorageOk>> {
                std::future::ready(Err(StorageError::QueueNotFound("q".into())))
            }
            fn instance(&self) -> usize {
                0
            }
        }
        let r = block_on(RetryPolicy::default().run(&AlwaysMissing, &req()));
        assert!(matches!(r, Err(StorageError::QueueNotFound(_))));
    }
}
