//! Live mode: drive the very same cluster model in wall-clock time.
//!
//! Real OS threads share one [`Cluster`] behind a mutex; each request is
//! priced by the identical latency pipeline, then the calling thread really
//! sleeps until the computed completion time. A `time_scale` factor maps
//! virtual seconds to real seconds (e.g. `60.0` runs a minute of "Azure
//! time" per real second), so interactive demos finish quickly while still
//! exhibiting the modeled contention.
//!
//! [`LiveEnv`] satisfies the async [`Environment`] interface with futures
//! that are already complete by the time they are returned: the blocking
//! work (pricing the request, sleeping out the scaled latency) happens
//! eagerly on the calling thread, and the caller drives the ready future
//! with [`azsim_core::block_on`]. The same client and framework code
//! therefore runs unchanged on the coroutine simulator and in live mode.
//!
//! Live-mode telemetry ([`LiveCluster::start_telemetry`]): in virtual time
//! the cluster samples its gauge timeline on every arrival; in live mode a
//! background thread flushes the same cluster-wide gauges and counters on a
//! periodic wall-clock cadence, so dashboards read an up-to-date recorder
//! even while the workload is idle.
//!
//! Live mode is *not* deterministic (it reads the host clock); use the
//! virtual runtime for benchmark figures.

use crate::env::Environment;
use azsim_core::SimTime;
use azsim_fabric::{Cluster, ClusterParams};
use azsim_storage::{StorageOk, StorageRequest, StorageResult};
use parking_lot::Mutex;
use std::future::{ready, Future};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// A cluster shared by live-mode threads.
pub struct LiveCluster {
    inner: Mutex<Cluster>,
    epoch: Instant,
    time_scale: f64,
}

impl LiveCluster {
    /// Build a live cluster. `time_scale` is virtual seconds per real
    /// second (must be positive; `1.0` is real time).
    pub fn new(params: ClusterParams, time_scale: f64) -> Arc<Self> {
        assert!(time_scale > 0.0, "time_scale must be positive");
        Arc::new(LiveCluster {
            inner: Mutex::new(Cluster::new(params)),
            epoch: Instant::now(),
            time_scale,
        })
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime((self.epoch.elapsed().as_nanos() as f64 * self.time_scale) as u64)
    }

    /// Create an environment handle for one role instance.
    pub fn env(self: &Arc<Self>, instance: usize) -> LiveEnv {
        LiveEnv {
            cluster: Arc::clone(self),
            instance,
        }
    }

    /// Inspect or mutate the underlying cluster (metrics, fault injection).
    pub fn with_cluster<R>(&self, f: impl FnOnce(&mut Cluster) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Enable the gauge timeline at `resolution` (virtual time) and start a
    /// daemon thread that flushes the cluster-wide gauges every
    /// `flush_interval` of *real* time — the live-mode counterpart of the
    /// arrival-driven sampling the virtual-time recorder performs. The
    /// thread holds only a weak reference and exits on its own once the
    /// last [`LiveCluster`] handle is dropped.
    pub fn start_telemetry(self: &Arc<Self>, resolution: Duration, flush_interval: Duration) {
        assert!(
            flush_interval > Duration::ZERO,
            "flush_interval must be positive"
        );
        self.with_cluster(|c| c.enable_timeline(resolution));
        let weak: Weak<LiveCluster> = Arc::downgrade(self);
        std::thread::spawn(move || loop {
            std::thread::sleep(flush_interval);
            let Some(lc) = weak.upgrade() else { break };
            lc.with_cluster(|c| {
                // Read the clock under the lock so flush samples and
                // request-driven samples stay in submission order.
                let now = lc.now();
                c.flush_timeline(now);
            });
        });
    }

    fn virtual_to_real(&self, d: Duration) -> Duration {
        d.mul_f64(1.0 / self.time_scale)
    }
}

/// One role instance's handle onto a [`LiveCluster`].
pub struct LiveEnv {
    cluster: Arc<LiveCluster>,
    instance: usize,
}

impl Environment for LiveEnv {
    fn now(&self) -> SimTime {
        self.cluster.now()
    }

    fn sleep(&self, d: Duration) -> impl Future<Output = ()> {
        std::thread::sleep(self.cluster.virtual_to_real(d));
        ready(())
    }

    fn execute(&self, req: StorageRequest) -> impl Future<Output = StorageResult<StorageOk>> {
        let (done, resp) = {
            let mut c = self.cluster.inner.lock();
            let now = self.cluster.now();
            c.submit(now, self.instance, &req)
        };
        // Really wait out the modeled latency (scaled).
        let remaining = done.saturating_since(self.cluster.now());
        if remaining > Duration::ZERO {
            std::thread::sleep(self.cluster.virtual_to_real(remaining));
        }
        ready(resp)
    }

    fn instance(&self) -> usize {
        self.instance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azsim_core::block_on;
    use bytes::Bytes;

    /// Run live tests heavily time-scaled so modeled milliseconds cost
    /// microseconds of real time.
    const FAST: f64 = 10_000.0;

    #[test]
    fn live_roundtrip() {
        let lc = LiveCluster::new(ClusterParams::default(), FAST);
        let env = lc.env(0);
        block_on(env.execute(StorageRequest::CreateQueue { queue: "q".into() })).unwrap();
        block_on(env.execute(StorageRequest::PutMessage {
            queue: "q".into(),
            data: Bytes::from_static(b"live"),
            ttl: None,
        }))
        .unwrap();
        let got = block_on(env.execute(StorageRequest::GetMessage {
            queue: "q".into(),
            visibility_timeout: Duration::from_secs(30),
        }))
        .unwrap();
        match got {
            StorageOk::Message(Some(m)) => assert_eq!(m.data, Bytes::from_static(b"live")),
            other => panic!("expected message, got {other:?}"),
        }
        assert_eq!(lc.with_cluster(|c| c.metrics().total_completed()), 3);
    }

    #[test]
    fn concurrent_live_threads_share_state() {
        let lc = LiveCluster::new(ClusterParams::default(), FAST);
        block_on(
            lc.env(0)
                .execute(StorageRequest::CreateQueue { queue: "q".into() }),
        )
        .unwrap();
        let n = 8;
        std::thread::scope(|s| {
            for i in 0..n {
                let env = lc.env(i);
                s.spawn(move || {
                    block_on(env.execute(StorageRequest::PutMessage {
                        queue: "q".into(),
                        data: Bytes::from(vec![i as u8]),
                        ttl: None,
                    }))
                    .unwrap();
                });
            }
        });
        let count = block_on(
            lc.env(0)
                .execute(StorageRequest::GetMessageCount { queue: "q".into() }),
        )
        .unwrap();
        match count {
            StorageOk::Count(c) => assert_eq!(c, n),
            other => panic!("expected count, got {other:?}"),
        }
    }

    #[test]
    fn clock_advances_and_scales() {
        let lc = LiveCluster::new(ClusterParams::default(), FAST);
        let t0 = lc.now();
        std::thread::sleep(Duration::from_millis(2));
        let t1 = lc.now();
        // 2 ms of real time is ≥ 10 virtual seconds at scale 10 000.
        assert!(t1.saturating_since(t0) >= Duration::from_secs(10));
    }

    #[test]
    fn telemetry_flushes_on_wall_clock_cadence() {
        let lc = LiveCluster::new(ClusterParams::default(), FAST);
        // Flush every millisecond of real time; resolution is virtual.
        lc.start_telemetry(Duration::from_millis(5), Duration::from_millis(1));
        block_on(
            lc.env(0)
                .execute(StorageRequest::CreateQueue { queue: "q".into() }),
        )
        .unwrap();
        // No further requests: only the background flush can add samples.
        let count = |lc: &LiveCluster| {
            lc.with_cluster(|c| {
                let tl = c.timeline().expect("telemetry enabled");
                let rec = tl.recorder();
                let g = rec
                    .gauges()
                    .iter()
                    .find(|g| g.name == "account_tx.fill")
                    .expect("account_tx.fill gauge");
                g.series.sample_count()
            })
        };
        let before = count(&lc);
        std::thread::sleep(Duration::from_millis(30));
        let after = count(&lc);
        assert!(
            after > before,
            "periodic flush must add samples while idle: {before} -> {after}"
        );
    }

    #[test]
    #[should_panic(expected = "time_scale must be positive")]
    fn zero_time_scale_rejected() {
        let _ = LiveCluster::new(ClusterParams::default(), 0.0);
    }
}
