//! `CloudBlobClient` analogue, bound to one container.

use crate::env::Environment;
use crate::resilience::ClientPolicy;
use azsim_storage::{StorageOk, StorageRequest, StorageResult};
use bytes::Bytes;

/// A client bound to one blob container.
pub struct BlobClient<'e, E: Environment> {
    env: &'e E,
    container: String,
    policy: ClientPolicy,
}

impl<'e, E: Environment> BlobClient<'e, E> {
    /// Bind a client to `container`.
    pub fn new(env: &'e E, container: impl Into<String>) -> Self {
        BlobClient {
            env,
            container: container.into(),
            policy: ClientPolicy::default(),
        }
    }

    /// Replace the retry policy: a paper-faithful [`crate::RetryPolicy`] or a
    /// [`crate::ResilientPolicy`] (via [`ClientPolicy`]).
    pub fn with_policy(mut self, policy: impl Into<ClientPolicy>) -> Self {
        self.policy = policy.into();
        self
    }

    /// The bound container name.
    pub fn container(&self) -> &str {
        &self.container
    }

    async fn run(&self, req: StorageRequest) -> StorageResult<StorageOk> {
        self.policy.run(self.env, &req).await
    }

    /// Create the container (idempotent).
    pub async fn create_container(&self) -> StorageResult<()> {
        self.run(StorageRequest::CreateContainer {
            container: self.container.clone(),
        })
        .await
        .map(|_| ())
    }

    /// `PutBlock`: stage one ≤ 4 MB block against `blob`.
    pub async fn put_block(
        &self,
        blob: &str,
        block_id: impl Into<String>,
        data: Bytes,
    ) -> StorageResult<()> {
        self.run(StorageRequest::PutBlock {
            container: self.container.clone(),
            blob: blob.to_owned(),
            block_id: block_id.into(),
            data,
        })
        .await
        .map(|_| ())
    }

    /// `PutBlockList`: commit the staged blocks in order.
    pub async fn put_block_list(&self, blob: &str, ids: Vec<String>) -> StorageResult<()> {
        self.run(StorageRequest::PutBlockList {
            container: self.container.clone(),
            blob: blob.to_owned(),
            block_ids: ids,
        })
        .await
        .map(|_| ())
    }

    /// Single-shot upload of a block blob ≤ 64 MB.
    pub async fn upload(&self, blob: &str, data: Bytes) -> StorageResult<()> {
        self.run(StorageRequest::UploadBlockBlob {
            container: self.container.clone(),
            blob: blob.to_owned(),
            data,
        })
        .await
        .map(|_| ())
    }

    /// `GetBlock`: read the `index`-th committed block (sequential path).
    pub async fn get_block(&self, blob: &str, index: usize) -> StorageResult<Bytes> {
        self.run(StorageRequest::GetBlock {
            container: self.container.clone(),
            blob: blob.to_owned(),
            index,
        })
        .await
        .map(StorageOk::into_data)
    }

    /// Download a whole blob (`DownloadText()` / `openRead()` path).
    pub async fn download(&self, blob: &str) -> StorageResult<Bytes> {
        self.run(StorageRequest::DownloadBlob {
            container: self.container.clone(),
            blob: blob.to_owned(),
        })
        .await
        .map(StorageOk::into_data)
    }

    /// Create a page blob with fixed maximum `size`.
    pub async fn create_page_blob(&self, blob: &str, size: u64) -> StorageResult<()> {
        self.run(StorageRequest::CreatePageBlob {
            container: self.container.clone(),
            blob: blob.to_owned(),
            size,
        })
        .await
        .map(|_| ())
    }

    /// `PutPage`: write a 512-aligned range (≤ 4 MB).
    pub async fn put_page(&self, blob: &str, offset: u64, data: Bytes) -> StorageResult<()> {
        self.run(StorageRequest::PutPage {
            container: self.container.clone(),
            blob: blob.to_owned(),
            offset,
            data,
        })
        .await
        .map(|_| ())
    }

    /// `GetPage`: read a 512-aligned range (random-access path).
    pub async fn get_page(&self, blob: &str, offset: u64, length: u64) -> StorageResult<Bytes> {
        self.run(StorageRequest::GetPage {
            container: self.container.clone(),
            blob: blob.to_owned(),
            offset,
            length,
        })
        .await
        .map(StorageOk::into_data)
    }

    /// Sorted names of blobs in the container.
    pub async fn list_blobs(&self) -> StorageResult<Vec<String>> {
        match self
            .run(StorageRequest::ListBlobs {
                container: self.container.clone(),
            })
            .await?
        {
            StorageOk::Names(n) => Ok(n),
            other => unreachable!("unexpected response {other:?}"),
        }
    }

    /// Whether a (committed) blob exists.
    pub async fn exists(&self, blob: &str) -> StorageResult<bool> {
        Ok(self.list_blobs().await?.iter().any(|b| b == blob))
    }

    /// Delete a blob.
    pub async fn delete(&self, blob: &str) -> StorageResult<()> {
        self.run(StorageRequest::DeleteBlob {
            container: self.container.clone(),
            blob: blob.to_owned(),
        })
        .await
        .map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::VirtualEnv;
    use azsim_core::Simulation;
    use azsim_fabric::Cluster;

    #[test]
    fn block_blob_lifecycle_via_client() {
        let sim = Simulation::new(Cluster::with_defaults(), 9);
        sim.run_workers(1, |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let c = BlobClient::new(&env, "data");
            c.create_container().await.unwrap();
            c.put_block("b", "00", Bytes::from_static(b"hello "))
                .await
                .unwrap();
            c.put_block("b", "01", Bytes::from_static(b"blob"))
                .await
                .unwrap();
            c.put_block_list("b", vec!["00".into(), "01".into()])
                .await
                .unwrap();
            assert_eq!(
                c.download("b").await.unwrap(),
                Bytes::from_static(b"hello blob")
            );
            assert_eq!(
                c.get_block("b", 1).await.unwrap(),
                Bytes::from_static(b"blob")
            );
            c.delete("b").await.unwrap();
            assert!(c.download("b").await.is_err());
        });
    }

    #[test]
    fn page_blob_lifecycle_via_client() {
        let sim = Simulation::new(Cluster::with_defaults(), 9);
        sim.run_workers(1, |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let c = BlobClient::new(&env, "data");
            c.create_container().await.unwrap();
            c.create_page_blob("p", 8192).await.unwrap();
            let page = Bytes::from(vec![3u8; 1024]);
            c.put_page("p", 2048, page.clone()).await.unwrap();
            assert_eq!(c.get_page("p", 2048, 1024).await.unwrap(), page);
            let whole = c.download("p").await.unwrap();
            assert_eq!(whole.len(), 8192);
            assert_eq!(&whole[2048..3072], &page[..]);
        });
    }

    #[test]
    fn shared_blob_concurrent_writers() {
        // The paper's Algorithm 1: all workers write chunks of the SAME
        // blob, then everyone downloads it.
        let n = 8usize;
        let sim = Simulation::new(Cluster::with_defaults(), 11);
        let report = sim.run_workers(n, move |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let c = BlobClient::new(&env, "shared");
            c.create_container().await.unwrap();
            let me = env.instance();
            c.put_block("blob", format!("{me:04}"), Bytes::from(vec![me as u8; 128]))
                .await
                .unwrap();
            ctx.now()
        });
        // One committer assembles the full list afterwards.
        let mut model = report.model;
        let ids: Vec<String> = (0..n).map(|i| format!("{i:04}")).collect();
        let (_, r) = model.submit(
            report.end_time,
            0,
            &StorageRequest::PutBlockList {
                container: "shared".into(),
                blob: "blob".into(),
                block_ids: ids,
            },
        );
        r.unwrap();
        assert_eq!(
            model.blob_store().blob_size("shared", "blob").unwrap(),
            (n * 128) as u64
        );
    }
}
