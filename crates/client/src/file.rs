//! `file://` live backend: the real client stack over a local directory.
//!
//! Where [`crate::LiveEnv`] prices requests through the simulated
//! [`Cluster`](azsim_fabric::Cluster) and sleeps out the modeled latency,
//! [`FileEnv`] executes them against an actual filesystem tree — real
//! `create_dir`/`write`/`rename` syscalls, real bytes on disk. It is the
//! live counterpart of the simulated `file` backend profile
//! ([`azsim_fabric::BackendKind::File`]): no throttles, no visibility
//! lag, strong listings — exactly what a local filesystem provides — so
//! an integration test can run the same reduced workload against both
//! and reconcile the final states.
//!
//! On-disk layout under the store root:
//!
//! ```text
//! blob/<container>/<blob>             committed blob bytes
//! blob/<container>/.meta/<blob>.blocks   committed block index (id \t len)
//! blob/<container>/.staged/<blob>/<id>   staged, uncommitted blocks
//! queue/<queue>/<seq>.msg             message payload
//! queue/<queue>/<seq>.meta            id/visibility/receipt sidecar
//! ```
//!
//! Names are percent-encoded so arbitrary container/blob/queue names are
//! filesystem-safe. Commits are write-temp-then-rename, so a committed
//! blob is never observable half-written. The store supports the blob
//! (block) and queue surface the benchmark algorithms use; table and
//! page-blob requests panic loudly — this backend exists to validate the
//! client stack against a real medium, not to reimplement every service.
//!
//! Like live mode, `file://` is *not* deterministic (host clock, OS
//! scheduling); figures stay on the virtual runtime.

use crate::env::Environment;
use azsim_core::SimTime;
use azsim_storage::message::{MessageId, PeekedMessage, PopReceipt};
use azsim_storage::{QueueMessage, StorageError, StorageOk, StorageRequest, StorageResult};
use bytes::Bytes;
use parking_lot::Mutex;
use std::future::{ready, Future};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default message time-to-live (the service's 7 days).
const DEFAULT_TTL: Duration = Duration::from_secs(7 * 24 * 3600);

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Percent-encode a service-level name into a filesystem-safe component.
fn enc(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, b) in name.bytes().enumerate() {
        let plain = b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || (b == b'.' && i > 0); // no leading dot: dot-entries are store metadata
        if plain {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02x}"));
        }
    }
    out
}

/// Inverse of [`enc`].
fn dec(name: &str) -> String {
    let bytes = name.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            let hex = &name[i + 1..i + 3];
            if let Ok(b) = u8::from_str_radix(hex, 16) {
                out.push(b);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Message sidecar state, serialized as one `key value` line each.
#[derive(Clone, Copy)]
struct MsgMeta {
    id: u64,
    insertion_ns: u64,
    next_visible_ns: u64,
    expires_ns: u64,
    dequeue_count: u32,
    pop_receipt: u64,
}

impl MsgMeta {
    fn render(&self) -> String {
        format!(
            "id {}\ninsertion_ns {}\nnext_visible_ns {}\nexpires_ns {}\ndequeue_count {}\npop_receipt {}\n",
            self.id,
            self.insertion_ns,
            self.next_visible_ns,
            self.expires_ns,
            self.dequeue_count,
            self.pop_receipt
        )
    }

    fn parse(text: &str) -> Option<MsgMeta> {
        let mut m = MsgMeta {
            id: 0,
            insertion_ns: 0,
            next_visible_ns: 0,
            expires_ns: u64::MAX,
            dequeue_count: 0,
            pop_receipt: 0,
        };
        for line in text.lines() {
            let (k, v) = line.split_once(' ')?;
            let v: u64 = v.parse().ok()?;
            match k {
                "id" => m.id = v,
                "insertion_ns" => m.insertion_ns = v,
                "next_visible_ns" => m.next_visible_ns = v,
                "expires_ns" => m.expires_ns = v,
                "dequeue_count" => m.dequeue_count = v as u32,
                "pop_receipt" => m.pop_receipt = v,
                _ => return None,
            }
        }
        Some(m)
    }
}

/// The `file://` store: a root directory plus the clock and counters the
/// queue semantics need. Share one store across role instances via
/// [`FileStore::env`].
pub struct FileStore {
    root: PathBuf,
    epoch: Instant,
    time_scale: f64,
    owns_root: bool,
    /// Serializes multi-file operations (commit, dequeue) so concurrent
    /// envs see consistent state — the moral equivalent of the service's
    /// per-partition serialization.
    lock: Mutex<Counters>,
}

struct Counters {
    next_msg: u64,
    next_receipt: u64,
}

impl FileStore {
    /// Open (creating if needed) a store rooted at `root`. `time_scale`
    /// maps virtual to real seconds exactly like live mode (`1.0` = real
    /// time; tests use large factors so visibility windows pass quickly).
    pub fn new(root: impl Into<PathBuf>, time_scale: f64) -> Arc<Self> {
        assert!(time_scale > 0.0, "time_scale must be positive");
        let root = root.into();
        std::fs::create_dir_all(&root).expect("create file:// store root");
        Arc::new(FileStore {
            root,
            epoch: Instant::now(),
            time_scale,
            owns_root: false,
            lock: Mutex::new(Counters {
                next_msg: 1,
                next_receipt: 1,
            }),
        })
    }

    /// A store over a fresh private directory under the system temp dir,
    /// removed again when the store is dropped.
    pub fn new_temp(time_scale: f64) -> Arc<Self> {
        let dir = std::env::temp_dir().join(format!(
            "azurebench-file-{}-{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create file:// temp root");
        let mut store = Arc::try_unwrap(Self::new(dir, time_scale)).ok().unwrap();
        store.owns_root = true;
        Arc::new(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Current virtual time (epoch-relative, scaled).
    pub fn now(&self) -> SimTime {
        SimTime((self.epoch.elapsed().as_nanos() as f64 * self.time_scale) as u64)
    }

    /// Create an environment handle for one role instance.
    pub fn env(self: &Arc<Self>, instance: usize) -> FileEnv {
        FileEnv {
            store: Arc::clone(self),
            instance,
        }
    }

    fn virtual_to_real(&self, d: Duration) -> Duration {
        d.mul_f64(1.0 / self.time_scale)
    }

    // ---- path helpers ----

    fn container_dir(&self, container: &str) -> PathBuf {
        self.root.join("blob").join(enc(container))
    }

    fn queue_dir(&self, queue: &str) -> PathBuf {
        self.root.join("queue").join(enc(queue))
    }

    fn blob_path(&self, container: &str, blob: &str) -> PathBuf {
        self.container_dir(container).join(enc(blob))
    }

    fn index_path(&self, container: &str, blob: &str) -> PathBuf {
        self.container_dir(container)
            .join(".meta")
            .join(format!("{}.blocks", enc(blob)))
    }

    fn staged_dir(&self, container: &str, blob: &str) -> PathBuf {
        self.container_dir(container)
            .join(".staged")
            .join(enc(blob))
    }

    // ---- blob ops ----

    fn require_container(&self, container: &str) -> StorageResult<PathBuf> {
        let dir = self.container_dir(container);
        if dir.is_dir() {
            Ok(dir)
        } else {
            Err(StorageError::ContainerNotFound(container.to_owned()))
        }
    }

    fn put_block(
        &self,
        container: &str,
        blob: &str,
        block_id: &str,
        data: &Bytes,
    ) -> StorageResult<StorageOk> {
        self.require_container(container)?;
        let dir = self.staged_dir(container, blob);
        std::fs::create_dir_all(&dir).map_err(io_fault)?;
        std::fs::write(dir.join(enc(block_id)), data).map_err(io_fault)?;
        Ok(StorageOk::Ack)
    }

    /// Read one committed block's bytes by id via the committed index.
    fn committed_block(&self, container: &str, blob: &str, id: &str) -> Option<Vec<u8>> {
        let index = std::fs::read_to_string(self.index_path(container, blob)).ok()?;
        let body = std::fs::read(self.blob_path(container, blob)).ok()?;
        let mut offset = 0usize;
        for line in index.lines() {
            let (bid, len) = line.split_once('\t')?;
            let len: usize = len.parse().ok()?;
            if bid == id {
                return body.get(offset..offset + len).map(<[u8]>::to_vec);
            }
            offset += len;
        }
        None
    }

    fn put_block_list(
        &self,
        container: &str,
        blob: &str,
        block_ids: &[String],
    ) -> StorageResult<StorageOk> {
        self.require_container(container)?;
        let _guard = self.lock.lock();
        let staged = self.staged_dir(container, blob);
        let mut body: Vec<u8> = Vec::new();
        let mut index = String::new();
        for id in block_ids {
            let bytes = match std::fs::read(staged.join(enc(id))) {
                Ok(b) => b,
                Err(_) => self
                    .committed_block(container, blob, id)
                    .ok_or_else(|| StorageError::UnknownBlockId(id.clone()))?,
            };
            index.push_str(&format!("{id}\t{}\n", bytes.len()));
            body.extend_from_slice(&bytes);
        }
        // Commit atomically: bytes first, then the index, each via rename,
        // so a reader never sees a half-written blob.
        let meta_dir = self.container_dir(container).join(".meta");
        std::fs::create_dir_all(&meta_dir).map_err(io_fault)?;
        let blob_path = self.blob_path(container, blob);
        let tmp = blob_path.with_extension("tmp-commit");
        std::fs::write(&tmp, &body).map_err(io_fault)?;
        std::fs::rename(&tmp, &blob_path).map_err(io_fault)?;
        std::fs::write(self.index_path(container, blob), index).map_err(io_fault)?;
        let _ = std::fs::remove_dir_all(&staged);
        Ok(StorageOk::Ack)
    }

    fn get_block(&self, container: &str, blob: &str, index: usize) -> StorageResult<StorageOk> {
        self.require_container(container)?;
        let idx = std::fs::read_to_string(self.index_path(container, blob))
            .map_err(|_| StorageError::BlobNotFound(blob.to_owned()))?;
        let mut offset = 0usize;
        for (i, line) in idx.lines().enumerate() {
            let len: usize = line
                .split_once('\t')
                .and_then(|(_, l)| l.parse().ok())
                .ok_or_else(|| StorageError::BlobNotFound(blob.to_owned()))?;
            if i == index {
                let body = std::fs::read(self.blob_path(container, blob))
                    .map_err(|_| StorageError::BlobNotFound(blob.to_owned()))?;
                let slice = body
                    .get(offset..offset + len)
                    .ok_or_else(|| StorageError::BlobNotFound(blob.to_owned()))?;
                return Ok(StorageOk::Data(Bytes::from(slice.to_vec())));
            }
            offset += len;
        }
        Err(StorageError::UnknownBlockId(format!("#{index}")))
    }

    fn download(&self, container: &str, blob: &str) -> StorageResult<StorageOk> {
        self.require_container(container)?;
        std::fs::read(self.blob_path(container, blob))
            .map(|b| StorageOk::Data(Bytes::from(b)))
            .map_err(|_| StorageError::BlobNotFound(blob.to_owned()))
    }

    fn list_blobs(&self, container: &str) -> StorageResult<StorageOk> {
        let dir = self.require_container(container)?;
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .map_err(io_fault)?
            .filter_map(|e| {
                let e = e.ok()?;
                let name = e.file_name().into_string().ok()?;
                // Dot-entries are store metadata, and a crash may leave a
                // commit temp file behind; neither is a blob.
                (e.file_type().ok()?.is_file()
                    && !name.starts_with('.')
                    && !name.ends_with(".tmp-commit"))
                .then(|| dec(&name))
            })
            .collect();
        names.sort();
        Ok(StorageOk::Names(names))
    }

    fn delete_blob(&self, container: &str, blob: &str) -> StorageResult<StorageOk> {
        self.require_container(container)?;
        std::fs::remove_file(self.blob_path(container, blob))
            .map_err(|_| StorageError::BlobNotFound(blob.to_owned()))?;
        let _ = std::fs::remove_file(self.index_path(container, blob));
        let _ = std::fs::remove_dir_all(self.staged_dir(container, blob));
        Ok(StorageOk::Ack)
    }

    // ---- queue ops ----

    fn require_queue(&self, queue: &str) -> StorageResult<PathBuf> {
        let dir = self.queue_dir(queue);
        if dir.is_dir() {
            Ok(dir)
        } else {
            Err(StorageError::QueueNotFound(queue.to_owned()))
        }
    }

    /// Sorted `(seq, meta)` pairs of every live (unexpired) message.
    fn messages(&self, dir: &Path, now: SimTime) -> Vec<(u64, MsgMeta)> {
        let mut out: Vec<(u64, MsgMeta)> = std::fs::read_dir(dir)
            .into_iter()
            .flatten()
            .filter_map(|e| {
                let name = e.ok()?.file_name().into_string().ok()?;
                let seq: u64 = name.strip_suffix(".meta")?.parse().ok()?;
                let meta = MsgMeta::parse(&std::fs::read_to_string(dir.join(&name)).ok()?)?;
                Some((seq, meta))
            })
            .filter(|(_, m)| m.expires_ns > now.as_nanos())
            .collect();
        out.sort_by_key(|&(seq, _)| seq);
        out
    }

    fn put_message(
        &self,
        queue: &str,
        data: &Bytes,
        ttl: Option<Duration>,
    ) -> StorageResult<StorageOk> {
        let dir = self.require_queue(queue)?;
        let now = self.now();
        let seq = {
            let mut c = self.lock.lock();
            let s = c.next_msg;
            c.next_msg += 1;
            s
        };
        let meta = MsgMeta {
            id: seq,
            insertion_ns: now.as_nanos(),
            next_visible_ns: now.as_nanos(),
            expires_ns: (now + ttl.unwrap_or(DEFAULT_TTL)).as_nanos(),
            dequeue_count: 0,
            pop_receipt: 0,
        };
        // Payload first, sidecar last: a message without a sidecar does
        // not exist yet, so a crash between the writes loses nothing.
        std::fs::write(dir.join(format!("{seq:012}.msg")), data).map_err(io_fault)?;
        std::fs::write(dir.join(format!("{seq:012}.meta")), meta.render()).map_err(io_fault)?;
        Ok(StorageOk::Ack)
    }

    fn get_message(&self, queue: &str, visibility: Duration) -> StorageResult<StorageOk> {
        let dir = self.require_queue(queue)?;
        let mut guard = self.lock.lock();
        let now = self.now();
        for (seq, mut meta) in self.messages(&dir, now) {
            if meta.next_visible_ns > now.as_nanos() {
                continue;
            }
            let receipt = guard.next_receipt;
            guard.next_receipt += 1;
            meta.dequeue_count += 1;
            meta.next_visible_ns = (now + visibility).as_nanos();
            meta.pop_receipt = receipt;
            std::fs::write(dir.join(format!("{seq:012}.meta")), meta.render()).map_err(io_fault)?;
            let data = std::fs::read(dir.join(format!("{seq:012}.msg"))).map_err(io_fault)?;
            return Ok(StorageOk::Message(Some(QueueMessage {
                id: MessageId(meta.id),
                pop_receipt: PopReceipt(receipt),
                data: Bytes::from(data),
                dequeue_count: meta.dequeue_count,
                insertion_time: SimTime(meta.insertion_ns),
                next_visible: SimTime(meta.next_visible_ns),
            })));
        }
        Ok(StorageOk::Message(None))
    }

    fn peek_message(&self, queue: &str) -> StorageResult<StorageOk> {
        let dir = self.require_queue(queue)?;
        let now = self.now();
        for (seq, meta) in self.messages(&dir, now) {
            if meta.next_visible_ns > now.as_nanos() {
                continue;
            }
            let data = std::fs::read(dir.join(format!("{seq:012}.msg"))).map_err(io_fault)?;
            return Ok(StorageOk::Peeked(Some(PeekedMessage {
                id: MessageId(meta.id),
                data: Bytes::from(data),
                dequeue_count: meta.dequeue_count,
                insertion_time: SimTime(meta.insertion_ns),
            })));
        }
        Ok(StorageOk::Peeked(None))
    }

    fn delete_message(
        &self,
        queue: &str,
        id: MessageId,
        receipt: PopReceipt,
    ) -> StorageResult<StorageOk> {
        let dir = self.require_queue(queue)?;
        let _guard = self.lock.lock();
        let now = self.now();
        for (seq, meta) in self.messages(&dir, now) {
            if meta.id != id.0 {
                continue;
            }
            // A receipt is only good while the message is still invisible
            // under *that* dequeue — once it re-surfaced (or was claimed
            // again), the old receipt is dead. Same rule as the service.
            if meta.pop_receipt != receipt.0 || meta.next_visible_ns <= now.as_nanos() {
                return Err(StorageError::PopReceiptMismatch);
            }
            std::fs::remove_file(dir.join(format!("{seq:012}.meta"))).map_err(io_fault)?;
            let _ = std::fs::remove_file(dir.join(format!("{seq:012}.msg")));
            return Ok(StorageOk::Ack);
        }
        Err(StorageError::PopReceiptMismatch)
    }

    fn message_count(&self, queue: &str) -> StorageResult<StorageOk> {
        let dir = self.require_queue(queue)?;
        Ok(StorageOk::Count(self.messages(&dir, self.now()).len()))
    }

    fn clear_queue(&self, queue: &str) -> StorageResult<StorageOk> {
        let dir = self.require_queue(queue)?;
        let _guard = self.lock.lock();
        for entry in std::fs::read_dir(&dir).map_err(io_fault)?.flatten() {
            let _ = std::fs::remove_file(entry.path());
        }
        Ok(StorageOk::Ack)
    }

    /// Execute one request against the filesystem.
    fn apply(&self, req: &StorageRequest) -> StorageResult<StorageOk> {
        use StorageRequest::*;
        match req {
            CreateContainer { container } => {
                std::fs::create_dir_all(self.container_dir(container)).map_err(io_fault)?;
                Ok(StorageOk::Ack)
            }
            PutBlock {
                container,
                blob,
                block_id,
                data,
            } => self.put_block(container, blob, block_id, data),
            PutBlockList {
                container,
                blob,
                block_ids,
            } => self.put_block_list(container, blob, block_ids),
            UploadBlockBlob {
                container,
                blob,
                data,
            } => {
                self.put_block(container, blob, "0", data)?;
                self.put_block_list(container, blob, std::slice::from_ref(&"0".to_owned()))
            }
            GetBlock {
                container,
                blob,
                index,
            } => self.get_block(container, blob, *index),
            DownloadBlob { container, blob } => self.download(container, blob),
            DeleteBlob { container, blob } => self.delete_blob(container, blob),
            ListBlobs { container } => self.list_blobs(container),
            CreateQueue { queue } => {
                std::fs::create_dir_all(self.queue_dir(queue)).map_err(io_fault)?;
                Ok(StorageOk::Ack)
            }
            DeleteQueue { queue } => {
                let dir = self.require_queue(queue)?;
                std::fs::remove_dir_all(dir).map_err(io_fault)?;
                Ok(StorageOk::Ack)
            }
            PutMessage { queue, data, ttl } => self.put_message(queue, data, *ttl),
            GetMessage {
                queue,
                visibility_timeout,
            } => self.get_message(queue, *visibility_timeout),
            PeekMessage { queue } => self.peek_message(queue),
            DeleteMessage {
                queue,
                id,
                pop_receipt,
            } => self.delete_message(queue, *id, *pop_receipt),
            GetMessageCount { queue } => self.message_count(queue),
            ClearQueue { queue } => self.clear_queue(queue),
            other => unimplemented!(
                "the file:// live backend covers the blob/queue surface the \
                 benchmark algorithms use; request not supported: {other:?}"
            ),
        }
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        if self.owns_root {
            let _ = std::fs::remove_dir_all(&self.root);
        }
    }
}

/// Map an unexpected I/O failure onto the transient server-fault error —
/// the closest service analogue of "the medium hiccupped, retry".
fn io_fault(e: std::io::Error) -> StorageError {
    let _ = e;
    StorageError::ServerFault {
        retry_after: Duration::from_millis(100),
    }
}

/// One role instance's handle onto a [`FileStore`].
pub struct FileEnv {
    store: Arc<FileStore>,
    instance: usize,
}

impl Environment for FileEnv {
    fn now(&self) -> SimTime {
        self.store.now()
    }

    fn sleep(&self, d: Duration) -> impl Future<Output = ()> {
        std::thread::sleep(self.store.virtual_to_real(d));
        ready(())
    }

    fn execute(&self, req: StorageRequest) -> impl Future<Output = StorageResult<StorageOk>> {
        ready(self.store.apply(&req))
    }

    fn instance(&self) -> usize {
        self.instance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azsim_core::block_on;

    const FAST: f64 = 10_000.0;

    #[test]
    fn names_roundtrip_through_encoding() {
        for name in [
            "plain",
            "has/slash",
            "dot.mid",
            ".leading",
            "ünïcode",
            "a%b",
        ] {
            assert_eq!(dec(&enc(name)), name, "{name:?}");
        }
    }

    #[test]
    fn blob_block_lifecycle_on_disk() {
        let store = FileStore::new_temp(FAST);
        let env = store.env(0);
        block_on(env.execute(StorageRequest::CreateContainer {
            container: "c".into(),
        }))
        .unwrap();
        for (i, chunk) in [b"aaaa".as_slice(), b"bb", b"cccccc"].iter().enumerate() {
            block_on(env.execute(StorageRequest::PutBlock {
                container: "c".into(),
                blob: "b".into(),
                block_id: format!("blk{i}"),
                data: Bytes::from(chunk.to_vec()),
            }))
            .unwrap();
        }
        block_on(env.execute(StorageRequest::PutBlockList {
            container: "c".into(),
            blob: "b".into(),
            block_ids: (0..3).map(|i| format!("blk{i}")).collect(),
        }))
        .unwrap();
        // Whole-blob download is the concatenation, in commit order.
        match block_on(env.execute(StorageRequest::DownloadBlob {
            container: "c".into(),
            blob: "b".into(),
        }))
        .unwrap()
        {
            StorageOk::Data(d) => assert_eq!(&d[..], b"aaaabbcccccc"),
            other => panic!("expected data, got {other:?}"),
        }
        // Indexed block read sees the middle block exactly.
        match block_on(env.execute(StorageRequest::GetBlock {
            container: "c".into(),
            blob: "b".into(),
            index: 1,
        }))
        .unwrap()
        {
            StorageOk::Data(d) => assert_eq!(&d[..], b"bb"),
            other => panic!("expected data, got {other:?}"),
        }
        // Listing is strong and hides metadata entries.
        match block_on(env.execute(StorageRequest::ListBlobs {
            container: "c".into(),
        }))
        .unwrap()
        {
            StorageOk::Names(n) => assert_eq!(n, vec!["b".to_owned()]),
            other => panic!("expected names, got {other:?}"),
        }
        // Unknown block ids are rejected like the service rejects them.
        let err = block_on(env.execute(StorageRequest::PutBlockList {
            container: "c".into(),
            blob: "b".into(),
            block_ids: vec!["ghost".into()],
        }))
        .unwrap_err();
        assert!(matches!(err, StorageError::UnknownBlockId(id) if id == "ghost"));
    }

    #[test]
    fn recommit_reuses_committed_blocks() {
        let store = FileStore::new_temp(FAST);
        let env = store.env(0);
        block_on(env.execute(StorageRequest::CreateContainer {
            container: "c".into(),
        }))
        .unwrap();
        for (id, data) in [("x", b"1111".as_slice()), ("y", b"2222")] {
            block_on(env.execute(StorageRequest::PutBlock {
                container: "c".into(),
                blob: "b".into(),
                block_id: id.into(),
                data: Bytes::from(data.to_vec()),
            }))
            .unwrap();
        }
        for ids in [vec!["x", "y"], vec!["y", "x"]] {
            block_on(env.execute(StorageRequest::PutBlockList {
                container: "c".into(),
                blob: "b".into(),
                block_ids: ids.iter().map(|s| s.to_string()).collect(),
            }))
            .unwrap();
        }
        // Second commit reordered the *committed* blocks (staging was
        // consumed by the first): 2222 now leads.
        match block_on(env.execute(StorageRequest::DownloadBlob {
            container: "c".into(),
            blob: "b".into(),
        }))
        .unwrap()
        {
            StorageOk::Data(d) => assert_eq!(&d[..], b"22221111"),
            other => panic!("expected data, got {other:?}"),
        }
    }

    #[test]
    fn queue_lifecycle_with_receipts() {
        let store = FileStore::new_temp(FAST);
        let env = store.env(0);
        block_on(env.execute(StorageRequest::CreateQueue { queue: "q".into() })).unwrap();
        for i in 0..3u8 {
            block_on(env.execute(StorageRequest::PutMessage {
                queue: "q".into(),
                data: Bytes::from(vec![i]),
                ttl: None,
            }))
            .unwrap();
        }
        // FIFO delivery with receipts; peek does not take ownership.
        match block_on(env.execute(StorageRequest::PeekMessage { queue: "q".into() })).unwrap() {
            StorageOk::Peeked(Some(p)) => assert_eq!(&p.data[..], &[0]),
            other => panic!("expected peeked message, got {other:?}"),
        }
        let m = match block_on(env.execute(StorageRequest::GetMessage {
            queue: "q".into(),
            visibility_timeout: Duration::from_secs(3_600),
        }))
        .unwrap()
        {
            StorageOk::Message(Some(m)) => m,
            other => panic!("expected message, got {other:?}"),
        };
        assert_eq!(&m.data[..], &[0]);
        assert_eq!(m.dequeue_count, 1);
        // While invisible, the next get sees the *next* message.
        match block_on(env.execute(StorageRequest::GetMessage {
            queue: "q".into(),
            visibility_timeout: Duration::from_secs(3_600),
        }))
        .unwrap()
        {
            StorageOk::Message(Some(m2)) => assert_eq!(&m2.data[..], &[1]),
            other => panic!("expected message, got {other:?}"),
        }
        // A stale receipt is refused; the current one deletes.
        let err = block_on(env.execute(StorageRequest::DeleteMessage {
            queue: "q".into(),
            id: m.id,
            pop_receipt: PopReceipt(m.pop_receipt.0 + 999),
        }))
        .unwrap_err();
        assert!(matches!(err, StorageError::PopReceiptMismatch));
        block_on(env.execute(StorageRequest::DeleteMessage {
            queue: "q".into(),
            id: m.id,
            pop_receipt: m.pop_receipt,
        }))
        .unwrap();
        match block_on(env.execute(StorageRequest::GetMessageCount { queue: "q".into() })).unwrap()
        {
            StorageOk::Count(c) => assert_eq!(c, 2),
            other => panic!("expected count, got {other:?}"),
        }
    }

    #[test]
    fn temp_store_cleans_up_after_itself() {
        let root;
        {
            let store = FileStore::new_temp(FAST);
            root = store.root().to_path_buf();
            assert!(root.is_dir());
        }
        assert!(!root.exists(), "temp root must be removed on drop");
    }

    #[test]
    fn missing_resources_surface_service_errors() {
        let store = FileStore::new_temp(FAST);
        let env = store.env(0);
        let err = block_on(env.execute(StorageRequest::DownloadBlob {
            container: "nope".into(),
            blob: "b".into(),
        }))
        .unwrap_err();
        assert!(matches!(err, StorageError::ContainerNotFound(_)));
        let err = block_on(env.execute(StorageRequest::GetMessage {
            queue: "nope".into(),
            visibility_timeout: Duration::from_secs(1),
        }))
        .unwrap_err();
        assert!(matches!(err, StorageError::QueueNotFound(_)));
    }
}
