//! `CloudQueue` analogue.

use crate::env::Environment;
use crate::resilience::ClientPolicy;
use azsim_storage::message::PeekedMessage;
use azsim_storage::{QueueMessage, StorageOk, StorageRequest, StorageResult};
use bytes::Bytes;
use std::time::Duration;

/// Default visibility timeout applied by [`QueueClient::get_message`]
/// (the SDK's 30-second default).
pub const DEFAULT_VISIBILITY: Duration = Duration::from_secs(30);

/// A client bound to one queue.
pub struct QueueClient<'e, E: Environment> {
    env: &'e E,
    name: String,
    policy: ClientPolicy,
}

impl<'e, E: Environment> QueueClient<'e, E> {
    /// Bind a client to `name` (the queue need not exist yet).
    pub fn new(env: &'e E, name: impl Into<String>) -> Self {
        QueueClient {
            env,
            name: name.into(),
            policy: ClientPolicy::default(),
        }
    }

    /// Replace the retry policy: a paper-faithful [`crate::RetryPolicy`] or a
    /// [`crate::ResilientPolicy`] (via [`ClientPolicy`]).
    pub fn with_policy(mut self, policy: impl Into<ClientPolicy>) -> Self {
        self.policy = policy.into();
        self
    }

    /// The bound queue name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Create the queue (idempotent).
    pub async fn create(&self) -> StorageResult<()> {
        self.policy
            .run(
                self.env,
                &StorageRequest::CreateQueue {
                    queue: self.name.clone(),
                },
            )
            .await
            .map(|_| ())
    }

    /// Delete the queue and all its messages.
    pub async fn delete_queue(&self) -> StorageResult<()> {
        self.policy
            .run(
                self.env,
                &StorageRequest::DeleteQueue {
                    queue: self.name.clone(),
                },
            )
            .await
            .map(|_| ())
    }

    /// `PutMessage`: enqueue a payload (≤ 48 KB usable).
    pub async fn put_message(&self, data: Bytes) -> StorageResult<()> {
        self.policy
            .run(
                self.env,
                &StorageRequest::PutMessage {
                    queue: self.name.clone(),
                    data,
                    ttl: None,
                },
            )
            .await
            .map(|_| ())
    }

    /// `PutMessage` with an explicit time-to-live.
    pub async fn put_message_with_ttl(&self, data: Bytes, ttl: Duration) -> StorageResult<()> {
        self.policy
            .run(
                self.env,
                &StorageRequest::PutMessage {
                    queue: self.name.clone(),
                    data,
                    ttl: Some(ttl),
                },
            )
            .await
            .map(|_| ())
    }

    /// `GetMessage` with the default 30 s visibility timeout.
    pub async fn get_message(&self) -> StorageResult<Option<QueueMessage>> {
        self.get_message_with_visibility(DEFAULT_VISIBILITY).await
    }

    /// `GetMessage` with an explicit visibility timeout.
    pub async fn get_message_with_visibility(
        &self,
        visibility: Duration,
    ) -> StorageResult<Option<QueueMessage>> {
        match self
            .policy
            .run(
                self.env,
                &StorageRequest::GetMessage {
                    queue: self.name.clone(),
                    visibility_timeout: visibility,
                },
            )
            .await?
        {
            StorageOk::Message(m) => Ok(m),
            other => unreachable!("unexpected response {other:?}"),
        }
    }

    /// `PeekMessage`: read without claiming.
    pub async fn peek_message(&self) -> StorageResult<Option<PeekedMessage>> {
        match self
            .policy
            .run(
                self.env,
                &StorageRequest::PeekMessage {
                    queue: self.name.clone(),
                },
            )
            .await?
        {
            StorageOk::Peeked(m) => Ok(m),
            other => unreachable!("unexpected response {other:?}"),
        }
    }

    /// `DeleteMessage`: remove a claimed message using its pop receipt.
    pub async fn delete_message(&self, msg: &QueueMessage) -> StorageResult<()> {
        self.policy
            .run(
                self.env,
                &StorageRequest::DeleteMessage {
                    queue: self.name.clone(),
                    id: msg.id,
                    pop_receipt: msg.pop_receipt,
                },
            )
            .await
            .map(|_| ())
    }

    /// Remove every message without deleting the queue; returns how many
    /// were dropped.
    pub async fn clear(&self) -> StorageResult<usize> {
        match self
            .policy
            .run(
                self.env,
                &StorageRequest::ClearQueue {
                    queue: self.name.clone(),
                },
            )
            .await?
        {
            StorageOk::Count(n) => Ok(n),
            other => unreachable!("unexpected response {other:?}"),
        }
    }

    /// Approximate message count (visible + invisible).
    pub async fn message_count(&self) -> StorageResult<usize> {
        match self
            .policy
            .run(
                self.env,
                &StorageRequest::GetMessageCount {
                    queue: self.name.clone(),
                },
            )
            .await?
        {
            StorageOk::Count(c) => Ok(c),
            other => unreachable!("unexpected response {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::VirtualEnv;
    use azsim_core::Simulation;
    use azsim_fabric::Cluster;

    #[test]
    fn queue_client_end_to_end_in_simulation() {
        let sim = Simulation::new(Cluster::with_defaults(), 3);
        let report = sim.run_workers(1, |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let q = QueueClient::new(&env, "jobs");
            q.create().await.unwrap();
            q.put_message(Bytes::from_static(b"task-1")).await.unwrap();
            q.put_message(Bytes::from_static(b"task-2")).await.unwrap();
            assert_eq!(q.message_count().await.unwrap(), 2);

            let peeked = q.peek_message().await.unwrap().unwrap();
            assert_eq!(peeked.dequeue_count, 0);

            let m = q.get_message().await.unwrap().unwrap();
            q.delete_message(&m).await.unwrap();
            assert_eq!(q.message_count().await.unwrap(), 1);
            q.delete_queue().await.unwrap();
            ctx.now()
        });
        assert!(report.results[0] > azsim_core::SimTime::ZERO);
    }

    #[test]
    fn retry_recovers_from_throttling() {
        use azsim_fabric::ClusterParams;
        // A tiny queue rate forces ServerBusy storms; the client must
        // absorb them with one-second sleeps and still complete every put.
        let params = ClusterParams {
            queue_rate: 10.0,
            throttle_burst: 2.0,
            ..ClusterParams::default()
        };
        let sim = Simulation::new(Cluster::new(params), 5);
        let n_msgs = 30u32;
        let report = sim.run_workers(4, move |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let q = QueueClient::new(&env, "shared");
            q.create().await.unwrap();
            for i in 0..n_msgs {
                q.put_message(Bytes::from(i.to_le_bytes().to_vec()))
                    .await
                    .unwrap();
            }
            ctx.now()
        });
        let throttled = report.model.metrics().total_throttled();
        assert!(throttled > 0, "test must actually exercise throttling");
        let count = report.model.metrics();
        assert_eq!(
            count
                .counter(azsim_storage::OpClass::QueuePut)
                .unwrap()
                .completed,
            4 * n_msgs as u64
        );
        // Retrying costs virtual seconds: the run must span at least the
        // bucket-drain time.
        assert!(report.end_time > azsim_core::SimTime::from_secs(1));
    }
}
