//! `CloudQueue` analogue.

use crate::env::Environment;
use crate::resilience::ClientPolicy;
use azsim_storage::message::PeekedMessage;
use azsim_storage::{QueueMessage, StorageOk, StorageRequest, StorageResult};
use bytes::Bytes;
use std::time::Duration;

/// Default visibility timeout applied by [`QueueClient::get_message`]
/// (the SDK's 30-second default).
pub const DEFAULT_VISIBILITY: Duration = Duration::from_secs(30);

/// A client bound to one queue.
pub struct QueueClient<'e> {
    env: &'e dyn Environment,
    name: String,
    policy: ClientPolicy,
}

impl<'e> QueueClient<'e> {
    /// Bind a client to `name` (the queue need not exist yet).
    pub fn new(env: &'e dyn Environment, name: impl Into<String>) -> Self {
        QueueClient {
            env,
            name: name.into(),
            policy: ClientPolicy::default(),
        }
    }

    /// Replace the retry policy: a paper-faithful [`crate::RetryPolicy`] or a
    /// [`crate::ResilientPolicy`] (via [`ClientPolicy`]).
    pub fn with_policy(mut self, policy: impl Into<ClientPolicy>) -> Self {
        self.policy = policy.into();
        self
    }

    /// The bound queue name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Create the queue (idempotent).
    pub fn create(&self) -> StorageResult<()> {
        self.policy
            .run(
                self.env,
                &StorageRequest::CreateQueue {
                    queue: self.name.clone(),
                },
            )
            .map(|_| ())
    }

    /// Delete the queue and all its messages.
    pub fn delete_queue(&self) -> StorageResult<()> {
        self.policy
            .run(
                self.env,
                &StorageRequest::DeleteQueue {
                    queue: self.name.clone(),
                },
            )
            .map(|_| ())
    }

    /// `PutMessage`: enqueue a payload (≤ 48 KB usable).
    pub fn put_message(&self, data: Bytes) -> StorageResult<()> {
        self.policy
            .run(
                self.env,
                &StorageRequest::PutMessage {
                    queue: self.name.clone(),
                    data,
                    ttl: None,
                },
            )
            .map(|_| ())
    }

    /// `PutMessage` with an explicit time-to-live.
    pub fn put_message_with_ttl(&self, data: Bytes, ttl: Duration) -> StorageResult<()> {
        self.policy
            .run(
                self.env,
                &StorageRequest::PutMessage {
                    queue: self.name.clone(),
                    data,
                    ttl: Some(ttl),
                },
            )
            .map(|_| ())
    }

    /// `GetMessage` with the default 30 s visibility timeout.
    pub fn get_message(&self) -> StorageResult<Option<QueueMessage>> {
        self.get_message_with_visibility(DEFAULT_VISIBILITY)
    }

    /// `GetMessage` with an explicit visibility timeout.
    pub fn get_message_with_visibility(
        &self,
        visibility: Duration,
    ) -> StorageResult<Option<QueueMessage>> {
        match self.policy.run(
            self.env,
            &StorageRequest::GetMessage {
                queue: self.name.clone(),
                visibility_timeout: visibility,
            },
        )? {
            StorageOk::Message(m) => Ok(m),
            other => unreachable!("unexpected response {other:?}"),
        }
    }

    /// `PeekMessage`: read without claiming.
    pub fn peek_message(&self) -> StorageResult<Option<PeekedMessage>> {
        match self.policy.run(
            self.env,
            &StorageRequest::PeekMessage {
                queue: self.name.clone(),
            },
        )? {
            StorageOk::Peeked(m) => Ok(m),
            other => unreachable!("unexpected response {other:?}"),
        }
    }

    /// `DeleteMessage`: remove a claimed message using its pop receipt.
    pub fn delete_message(&self, msg: &QueueMessage) -> StorageResult<()> {
        self.policy
            .run(
                self.env,
                &StorageRequest::DeleteMessage {
                    queue: self.name.clone(),
                    id: msg.id,
                    pop_receipt: msg.pop_receipt,
                },
            )
            .map(|_| ())
    }

    /// Remove every message without deleting the queue; returns how many
    /// were dropped.
    pub fn clear(&self) -> StorageResult<usize> {
        match self.policy.run(
            self.env,
            &StorageRequest::ClearQueue {
                queue: self.name.clone(),
            },
        )? {
            StorageOk::Count(n) => Ok(n),
            other => unreachable!("unexpected response {other:?}"),
        }
    }

    /// Approximate message count (visible + invisible).
    pub fn message_count(&self) -> StorageResult<usize> {
        match self.policy.run(
            self.env,
            &StorageRequest::GetMessageCount {
                queue: self.name.clone(),
            },
        )? {
            StorageOk::Count(c) => Ok(c),
            other => unreachable!("unexpected response {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::VirtualEnv;
    use azsim_core::Simulation;
    use azsim_fabric::Cluster;

    #[test]
    fn queue_client_end_to_end_in_simulation() {
        let sim = Simulation::new(Cluster::with_defaults(), 3);
        let report = sim.run_workers(1, |ctx| {
            let env = VirtualEnv::new(ctx);
            let q = QueueClient::new(&env, "jobs");
            q.create().unwrap();
            q.put_message(Bytes::from_static(b"task-1")).unwrap();
            q.put_message(Bytes::from_static(b"task-2")).unwrap();
            assert_eq!(q.message_count().unwrap(), 2);

            let peeked = q.peek_message().unwrap().unwrap();
            assert_eq!(peeked.dequeue_count, 0);

            let m = q.get_message().unwrap().unwrap();
            q.delete_message(&m).unwrap();
            assert_eq!(q.message_count().unwrap(), 1);
            q.delete_queue().unwrap();
            ctx.now()
        });
        assert!(report.results[0] > azsim_core::SimTime::ZERO);
    }

    #[test]
    fn retry_recovers_from_throttling() {
        use azsim_fabric::ClusterParams;
        // A tiny queue rate forces ServerBusy storms; the client must
        // absorb them with one-second sleeps and still complete every put.
        let params = ClusterParams {
            queue_rate: 10.0,
            throttle_burst: 2.0,
            ..ClusterParams::default()
        };
        let sim = Simulation::new(Cluster::new(params), 5);
        let n_msgs = 30u32;
        let report = sim.run_workers(4, move |ctx| {
            let env = VirtualEnv::new(ctx);
            let q = QueueClient::new(&env, "shared");
            q.create().unwrap();
            for i in 0..n_msgs {
                q.put_message(Bytes::from(i.to_le_bytes().to_vec()))
                    .unwrap();
            }
            ctx.now()
        });
        let throttled = report.model.metrics().total_throttled();
        assert!(throttled > 0, "test must actually exercise throttling");
        let count = report.model.metrics();
        assert_eq!(
            count
                .counter(azsim_storage::OpClass::QueuePut)
                .unwrap()
                .completed,
            4 * n_msgs as u64
        );
        // Retrying costs virtual seconds: the run must span at least the
        // bucket-drain time.
        assert!(report.end_time > azsim_core::SimTime::from_secs(1));
    }
}
