//! VM provisioning and deployment timing.
//!
//! The paper's stated future work: "We will also include resource
//! provisioning times and application deployment timings." This module
//! adds that model: a deployment does not start computing at t = 0 — the
//! fabric controller allocates VMs, copies the service package, boots the
//! guest OS and starts the role host, and instances come online staggered
//! (2011-era Azure deployments took ~6–12 minutes for the first instance,
//! with additional instances following in waves).

use crate::vm::VmSize;
use azsim_core::rng::stream_rng;
use rand::Rng;
use std::time::Duration;

/// Parameters of the provisioning-time model.
#[derive(Clone, Debug)]
pub struct ProvisioningModel {
    /// Fabric-controller allocation plus package copy, paid once per
    /// deployment.
    pub base: Duration,
    /// Per-instance boot + role-host start (scaled by VM size: larger VMs
    /// take somewhat longer to allocate).
    pub per_instance: Duration,
    /// Instances start in waves of this many.
    pub wave_size: usize,
    /// Gap between waves.
    pub wave_gap: Duration,
    /// Multiplicative jitter (±fraction) on each instance's boot time.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for ProvisioningModel {
    fn default() -> Self {
        ProvisioningModel {
            base: Duration::from_secs(360),        // ~6 minutes
            per_instance: Duration::from_secs(90), // boot + role start
            wave_size: 20,
            wave_gap: Duration::from_secs(60),
            jitter: 0.15,
            seed: 7,
        }
    }
}

impl ProvisioningModel {
    /// An instantaneous model (provisioning disabled) — the default for
    /// benchmarks, which measure storage, not deployment.
    pub fn instant() -> Self {
        ProvisioningModel {
            base: Duration::ZERO,
            per_instance: Duration::ZERO,
            wave_size: usize::MAX,
            wave_gap: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// VM-size factor on the per-instance boot time.
    fn size_factor(vm: VmSize) -> f64 {
        match vm {
            VmSize::ExtraSmall => 0.8,
            VmSize::Small => 1.0,
            VmSize::Medium => 1.15,
            VmSize::Large => 1.3,
            VmSize::ExtraLarge => 1.5,
        }
    }

    /// When instance `index` (global across the deployment) of size `vm`
    /// comes online, measured from deployment submission.
    pub fn ready_at(&self, index: usize, vm: VmSize) -> Duration {
        let wave = if self.wave_size == usize::MAX {
            0
        } else {
            index / self.wave_size.max(1)
        };
        let boot = self.per_instance.mul_f64(Self::size_factor(vm));
        let jitter = if self.jitter > 0.0 {
            let mut rng = stream_rng(self.seed, index as u64);
            1.0 + rng.random_range(-self.jitter..self.jitter)
        } else {
            1.0
        };
        self.base + self.wave_gap * wave as u32 + boot.mul_f64(jitter)
    }

    /// Time until the *whole* deployment of `instances` instances of `vm`
    /// is online (the application deployment timing the paper planned to
    /// report).
    pub fn deployment_ready(&self, instances: usize, vm: VmSize) -> Duration {
        (0..instances)
            .map(|i| self.ready_at(i, vm))
            .max()
            .unwrap_or(self.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_model_is_zero() {
        let m = ProvisioningModel::instant();
        assert_eq!(m.ready_at(0, VmSize::Small), Duration::ZERO);
        assert_eq!(m.deployment_ready(100, VmSize::ExtraLarge), Duration::ZERO);
    }

    #[test]
    fn first_instance_takes_minutes() {
        let m = ProvisioningModel::default();
        let t = m.ready_at(0, VmSize::Small);
        assert!(
            t >= Duration::from_secs(300),
            "{t:?} too fast for 2011 Azure"
        );
        assert!(t <= Duration::from_secs(700), "{t:?} unreasonably slow");
    }

    #[test]
    fn waves_stagger_large_deployments() {
        let m = ProvisioningModel {
            jitter: 0.0,
            ..ProvisioningModel::default()
        };
        let first_wave = m.ready_at(0, VmSize::Small);
        let second_wave = m.ready_at(20, VmSize::Small);
        assert_eq!(second_wave - first_wave, Duration::from_secs(60));
        // Whole-deployment readiness is bounded by the last wave.
        let all = m.deployment_ready(96, VmSize::Small);
        assert_eq!(all, m.ready_at(95, VmSize::Small));
        assert!(all > first_wave + Duration::from_secs(3 * 60));
    }

    #[test]
    fn bigger_vms_boot_slower() {
        let m = ProvisioningModel {
            jitter: 0.0,
            ..ProvisioningModel::default()
        };
        assert!(m.ready_at(0, VmSize::ExtraLarge) > m.ready_at(0, VmSize::Small));
        assert!(m.ready_at(0, VmSize::Small) > m.ready_at(0, VmSize::ExtraSmall));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let m = ProvisioningModel::default();
        let a = m.ready_at(3, VmSize::Small);
        let b = m.ready_at(3, VmSize::Small);
        assert_eq!(a, b);
        let nominal = ProvisioningModel {
            jitter: 0.0,
            ..ProvisioningModel::default()
        }
        .ready_at(3, VmSize::Small);
        let lo = nominal.mul_f64(0.84);
        let hi = nominal.mul_f64(1.16);
        // base + boot*j: only the boot part jitters, so stay within the
        // whole-duration envelope.
        assert!(
            a >= lo.min(nominal) - Duration::from_secs(20) && a <= hi + Duration::from_secs(20)
        );
    }
}
