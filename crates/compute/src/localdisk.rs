//! Per-instance local storage.
//!
//! Each role instance gets VM-local disk (paper Table I: 20 GB on Extra
//! Small up to 2 040 GB on Extra Large). The paper deliberately excludes
//! it from the storage benchmarks ("similar to writing to the local hard
//! disk") — but applications use it for scratch space, so the platform
//! model provides it: named local resources with a capacity limit and a
//! simple sequential-bandwidth cost model. Local storage is ephemeral: it
//! does not survive the instance and is *not* shared between instances.
//!
//! Operations return the modeled I/O [`Duration`] so callers in virtual
//! time can `ctx.sleep(d)` it (and live-mode callers can ignore it).

use crate::vm::VmSize;
use azsim_storage::{StorageError, StorageResult};
use bytes::Bytes;
use std::collections::HashMap;
use std::time::Duration;

/// A role instance's local disk.
#[derive(Clone, Debug)]
pub struct LocalDisk {
    capacity: u64,
    used: u64,
    files: HashMap<String, Bytes>,
    read_bw: f64,
    write_bw: f64,
}

impl LocalDisk {
    /// The local disk of a `vm`-sized instance (capacity from Table I;
    /// 2011-era commodity disk bandwidths: ~100 MB/s read, ~80 MB/s write).
    pub fn for_vm(vm: VmSize) -> Self {
        LocalDisk {
            capacity: vm.disk_gb() as u64 * (1 << 30),
            used: 0,
            files: HashMap::new(),
            read_bw: 100.0 * (1 << 20) as f64,
            write_bw: 80.0 * (1 << 20) as f64,
        }
    }

    /// A disk with explicit capacity and bandwidths (tests, local
    /// resources smaller than the full disk).
    pub fn with_limits(capacity: u64, read_bw: f64, write_bw: f64) -> Self {
        assert!(read_bw > 0.0 && write_bw > 0.0);
        LocalDisk {
            capacity,
            used: 0,
            files: HashMap::new(),
            read_bw,
            write_bw,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently used.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Write (create or replace) a file; returns the modeled I/O time.
    /// Fails with `BlobTooLarge` when the write would exceed capacity.
    pub fn write(&mut self, name: &str, data: Bytes) -> StorageResult<Duration> {
        let new = data.len() as u64;
        let old = self.files.get(name).map(|f| f.len() as u64).unwrap_or(0);
        let used_after = self.used - old + new;
        if used_after > self.capacity {
            return Err(StorageError::BlobTooLarge { size: new });
        }
        self.used = used_after;
        self.files.insert(name.to_owned(), data);
        Ok(azsim_core::time::transfer_time(new, self.write_bw))
    }

    /// Read a file; returns the contents and the modeled I/O time.
    pub fn read(&self, name: &str) -> StorageResult<(Bytes, Duration)> {
        let f = self
            .files
            .get(name)
            .ok_or_else(|| StorageError::BlobNotFound(name.to_owned()))?;
        Ok((
            f.clone(),
            azsim_core::time::transfer_time(f.len() as u64, self.read_bw),
        ))
    }

    /// Delete a file (freeing its space).
    pub fn delete(&mut self, name: &str) -> StorageResult<()> {
        match self.files.remove(name) {
            Some(f) => {
                self.used -= f.len() as u64;
                Ok(())
            }
            None => Err(StorageError::BlobNotFound(name.to_owned())),
        }
    }

    /// Names of stored files (sorted).
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.files.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_follow_table1() {
        assert_eq!(LocalDisk::for_vm(VmSize::ExtraSmall).capacity(), 20 << 30);
        assert_eq!(
            LocalDisk::for_vm(VmSize::ExtraLarge).capacity(),
            2040u64 << 30
        );
    }

    #[test]
    fn write_read_roundtrip_with_io_times() {
        let mut d =
            LocalDisk::with_limits(1 << 20, 100.0 * (1 << 20) as f64, 50.0 * (1 << 20) as f64);
        let data = Bytes::from(vec![7u8; 512 << 10]);
        let w = d.write("scratch", data.clone()).unwrap();
        // 512 KB at 50 MB/s = 10 ms.
        assert_eq!(w, Duration::from_millis(10));
        let (got, r) = d.read("scratch").unwrap();
        assert_eq!(got, data);
        // 512 KB at 100 MB/s = 5 ms.
        assert_eq!(r, Duration::from_millis(5));
        assert_eq!(d.used(), 512 << 10);
    }

    #[test]
    fn capacity_is_enforced_and_replacement_reuses_space() {
        let mut d = LocalDisk::with_limits(1000, 1e6, 1e6);
        d.write("a", Bytes::from(vec![0u8; 800])).unwrap();
        // A second file would blow capacity.
        assert!(matches!(
            d.write("b", Bytes::from(vec![0u8; 300])),
            Err(StorageError::BlobTooLarge { .. })
        ));
        // Replacing the existing file reuses its space.
        d.write("a", Bytes::from(vec![1u8; 900])).unwrap();
        assert_eq!(d.used(), 900);
        assert_eq!(d.free(), 100);
    }

    #[test]
    fn delete_frees_space_and_missing_files_error() {
        let mut d = LocalDisk::with_limits(1000, 1e6, 1e6);
        d.write("x", Bytes::from(vec![0u8; 400])).unwrap();
        d.delete("x").unwrap();
        assert_eq!(d.used(), 0);
        assert!(matches!(d.delete("x"), Err(StorageError::BlobNotFound(_))));
        assert!(matches!(d.read("x"), Err(StorageError::BlobNotFound(_))));
    }

    #[test]
    fn list_is_sorted() {
        let mut d = LocalDisk::with_limits(1000, 1e6, 1e6);
        d.write("zz", Bytes::new()).unwrap();
        d.write("aa", Bytes::new()).unwrap();
        assert_eq!(d.list(), vec!["aa", "zz"]);
    }
}
