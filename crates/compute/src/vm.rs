//! Virtual-machine configurations (paper Table I).

use serde::{Deserialize, Serialize};

/// The VM sizes available for web- and worker-role instances (paper
/// Table I), plus the 2011-era per-size NIC allocation used by the network
/// model (Table I itself lists only CPU, memory and disk; the NIC figures
/// follow Microsoft's published per-size bandwidth allocations of the
/// period: 5 Mbps shared for Extra Small, then 100/200/400/800 Mbps).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmSize {
    /// Shared core, 768 MB RAM, 20 GB disk.
    ExtraSmall,
    /// 1 core, 1.75 GB RAM, 225 GB disk.
    Small,
    /// 2 cores, 3.5 GB RAM, 490 GB disk.
    Medium,
    /// 4 cores, 7 GB RAM, 1000 GB disk.
    Large,
    /// 8 cores, 14 GB RAM, 2040 GB disk.
    ExtraLarge,
}

impl VmSize {
    /// All sizes, smallest first (Table I row order).
    pub const ALL: [VmSize; 5] = [
        VmSize::ExtraSmall,
        VmSize::Small,
        VmSize::Medium,
        VmSize::Large,
        VmSize::ExtraLarge,
    ];

    /// CPU cores (`None` = shared core, the Extra Small instance).
    pub fn cores(self) -> Option<u32> {
        match self {
            VmSize::ExtraSmall => None,
            VmSize::Small => Some(1),
            VmSize::Medium => Some(2),
            VmSize::Large => Some(4),
            VmSize::ExtraLarge => Some(8),
        }
    }

    /// Memory in megabytes.
    pub fn memory_mb(self) -> u32 {
        match self {
            VmSize::ExtraSmall => 768,
            VmSize::Small => 1_792,       // 1.75 GB
            VmSize::Medium => 3_584,      // 3.5 GB
            VmSize::Large => 7_168,       // 7 GB
            VmSize::ExtraLarge => 14_336, // 14 GB
        }
    }

    /// Local storage in gigabytes.
    pub fn disk_gb(self) -> u32 {
        match self {
            VmSize::ExtraSmall => 20,
            VmSize::Small => 225,
            VmSize::Medium => 490,
            VmSize::Large => 1_000,
            VmSize::ExtraLarge => 2_040,
        }
    }

    /// NIC bandwidth in bytes per second (network model).
    pub fn nic_bandwidth(self) -> f64 {
        let mbps = match self {
            VmSize::ExtraSmall => 5.0,
            VmSize::Small => 100.0,
            VmSize::Medium => 200.0,
            VmSize::Large => 400.0,
            VmSize::ExtraLarge => 800.0,
        };
        mbps * 1e6 / 8.0
    }

    /// Display name matching the paper's Table I.
    pub fn name(self) -> &'static str {
        match self {
            VmSize::ExtraSmall => "Extra Small",
            VmSize::Small => "Small",
            VmSize::Medium => "Medium",
            VmSize::Large => "Large",
            VmSize::ExtraLarge => "Extra Large",
        }
    }
}

/// Render Table I as the paper prints it (the `figures table1` target).
pub fn render_table1() -> String {
    let mut out = String::from(
        "VM Size      | CPU Cores | Memory   | Storage\n\
         -------------+-----------+----------+---------\n",
    );
    for vm in VmSize::ALL {
        let cores = match vm.cores() {
            None => "Shared".to_owned(),
            Some(c) => c.to_string(),
        };
        let mem = if vm.memory_mb() < 1024 {
            format!("{} MB", vm.memory_mb())
        } else {
            format!("{:.4} GB", vm.memory_mb() as f64 / 1024.0)
        };
        out.push_str(&format!(
            "{:<12} | {:<9} | {:<8} | {} GB\n",
            vm.name(),
            cores,
            mem,
            vm.disk_gb()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        assert_eq!(VmSize::ExtraSmall.cores(), None);
        assert_eq!(VmSize::Small.cores(), Some(1));
        assert_eq!(VmSize::ExtraLarge.cores(), Some(8));
        assert_eq!(VmSize::ExtraSmall.memory_mb(), 768);
        assert_eq!(VmSize::Large.memory_mb(), 7 * 1024);
        assert_eq!(VmSize::Small.disk_gb(), 225);
        assert_eq!(VmSize::ExtraLarge.disk_gb(), 2040);
    }

    #[test]
    fn sizes_are_monotone() {
        for w in VmSize::ALL.windows(2) {
            assert!(w[0].memory_mb() < w[1].memory_mb());
            assert!(w[0].disk_gb() < w[1].disk_gb());
            assert!(w[0].nic_bandwidth() < w[1].nic_bandwidth());
        }
    }

    #[test]
    fn small_nic_is_100_mbps() {
        assert_eq!(VmSize::Small.nic_bandwidth(), 12_500_000.0);
    }

    #[test]
    fn table1_renders_every_row() {
        let t = render_table1();
        for vm in VmSize::ALL {
            assert!(t.contains(vm.name()), "missing {}", vm.name());
        }
        assert!(t.contains("Shared"));
        assert!(t.contains("768 MB"));
        assert!(t.contains("2040 GB"));
    }
}
