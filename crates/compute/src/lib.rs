//! # azsim-compute — the compute side of the simulated Azure platform
//!
//! The paper's programming model consists of **web roles** (HTTP-facing
//! front ends) and **worker roles** (background processors) deployed as N
//! virtual-machine instances of a configured size (paper Table I). This
//! crate provides:
//!
//! * [`vm::VmSize`] — the Table I catalogue (cores, memory, disk) plus the
//!   era's NIC allocation, which is what actually matters to the storage
//!   benchmarks;
//! * [`roles`] — role metadata ([`roles::RoleEnvironment`]) and a
//!   [`roles::Deployment`] builder that runs a heterogeneous set of roles
//!   (e.g. one web role plus N worker roles) on the virtual-time runtime
//!   with per-instance NIC bandwidths wired into the cluster.

pub mod localdisk;
pub mod provisioning;
pub mod roles;
pub mod vm;

pub use localdisk::LocalDisk;
pub use provisioning::ProvisioningModel;
pub use roles::{Deployment, RoleEnvironment};
pub use vm::VmSize;
