//! Web/worker role deployments on the virtual-time runtime.

use crate::provisioning::ProvisioningModel;
use crate::vm::VmSize;
use azsim_core::runtime::{actor, ActorCtx, ActorFn, ActorFuture, SimReport};
use azsim_core::Simulation;
use azsim_fabric::{Cluster, ClusterParams};
use std::future::Future;
use std::sync::Arc;

/// What a running role instance knows about itself — the analogue of the
/// Azure SDK's `RoleEnvironment` (one role instance cannot automatically
/// query the state of other instances; coordination goes through storage).
#[derive(Clone, Debug)]
pub struct RoleEnvironment {
    /// Role name (e.g. `"web"`, `"worker"`).
    pub role: String,
    /// This instance's index within its role, `0..instance_count`.
    pub instance: usize,
    /// Number of instances of this role.
    pub instance_count: usize,
    /// Global actor id across all roles in the deployment.
    pub actor: usize,
    /// The VM size this instance runs on.
    pub vm: VmSize,
}

struct RoleSpec<'a, R> {
    name: String,
    vm: VmSize,
    instances: usize,
    #[allow(clippy::type_complexity)]
    body: Arc<dyn Fn(ActorCtx<Cluster>, RoleEnvironment) -> ActorFuture<'a, R> + 'a>,
}

/// Builder for a deployment: a cluster plus a heterogeneous set of roles.
///
/// Role bodies are async — awaiting a storage call or a sleep suspends the
/// instance's coroutine until the simulation's event heap delivers the
/// wakeup.
///
/// ```
/// use azsim_compute::{Deployment, VmSize};
/// use azsim_fabric::ClusterParams;
///
/// let report = Deployment::new(ClusterParams::default(), 7)
///     .with_role("worker", 4, VmSize::Small, |_ctx, env| async move {
///         env.instance
///     })
///     .run();
/// assert_eq!(report.results, vec![0, 1, 2, 3]);
/// ```
pub struct Deployment<'a, R> {
    params: ClusterParams,
    seed: u64,
    roles: Vec<RoleSpec<'a, R>>,
    provisioning: ProvisioningModel,
}

impl<'a, R: 'a> Deployment<'a, R> {
    /// Start a deployment over a cluster with `params`, deterministic under
    /// `seed`.
    pub fn new(params: ClusterParams, seed: u64) -> Self {
        Deployment {
            params,
            seed,
            roles: Vec::new(),
            provisioning: ProvisioningModel::instant(),
        }
    }

    /// Model VM provisioning: each instance only starts executing once the
    /// fabric controller has allocated and booted it (staggered in waves).
    /// Benchmarks leave this at [`ProvisioningModel::instant`]; deployment-
    /// timing studies (the paper's future work) switch it on.
    pub fn with_provisioning(mut self, model: ProvisioningModel) -> Self {
        self.provisioning = model;
        self
    }

    /// Add `instances` instances of a role running the async `body` on
    /// `vm`-sized machines.
    pub fn with_role<F, Fut>(
        mut self,
        name: impl Into<String>,
        instances: usize,
        vm: VmSize,
        body: F,
    ) -> Self
    where
        F: Fn(ActorCtx<Cluster>, RoleEnvironment) -> Fut + 'a,
        Fut: Future<Output = R> + 'a,
    {
        self.roles.push(RoleSpec {
            name: name.into(),
            vm,
            instances,
            body: Arc::new(move |ctx, env| Box::pin(body(ctx, env)) as ActorFuture<'a, R>),
        });
        self
    }

    /// Deploy: wire per-instance NIC bandwidths into the cluster and run
    /// every instance to completion in virtual time. Results are indexed by
    /// global actor id (roles in declaration order, instances in index
    /// order).
    pub fn run(self) -> SimReport<Cluster, R> {
        let mut cluster = Cluster::new(self.params);
        let mut actors: Vec<ActorFn<'a, Cluster, R>> = Vec::new();
        let mut actor_id = 0usize;
        for spec in self.roles {
            for instance in 0..spec.instances {
                cluster.set_actor_nic(actor_id, spec.vm.nic_bandwidth());
                let env = RoleEnvironment {
                    role: spec.name.clone(),
                    instance,
                    instance_count: spec.instances,
                    actor: actor_id,
                    vm: spec.vm,
                };
                let body = Arc::clone(&spec.body);
                let boot = self.provisioning.ready_at(actor_id, spec.vm);
                actors.push(actor(move |ctx: ActorCtx<Cluster>| async move {
                    if boot > std::time::Duration::ZERO {
                        ctx.sleep(boot).await;
                    }
                    body(ctx, env).await
                }));
                actor_id += 1;
            }
        }
        Simulation::new(cluster, self.seed).run(actors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azsim_storage::StorageRequest;
    use bytes::Bytes;
    use std::time::Duration;

    #[test]
    fn provisioning_delays_role_start() {
        let model = ProvisioningModel {
            jitter: 0.0,
            wave_size: 1, // one instance per wave → visible staggering
            ..ProvisioningModel::default()
        };
        let expected0 = model.ready_at(0, VmSize::Small);
        let report = Deployment::new(ClusterParams::default(), 9)
            .with_provisioning(model)
            .with_role("w", 2, VmSize::Small, |ctx, _env| async move { ctx.now() })
            .run();
        assert_eq!(report.results[0].as_nanos(), expected0.as_nanos() as u64);
        // The second instance comes online one wave gap later.
        assert_eq!(
            report.results[1].saturating_since(report.results[0]),
            Duration::from_secs(60)
        );
    }

    #[test]
    fn heterogeneous_roles_get_correct_metadata() {
        let report = Deployment::new(ClusterParams::default(), 1)
            .with_role("web", 1, VmSize::Large, |_ctx, env| async move {
                format!("{}:{}/{}", env.role, env.instance, env.instance_count)
            })
            .with_role("worker", 3, VmSize::Small, |_ctx, env| async move {
                format!("{}:{}/{}", env.role, env.instance, env.instance_count)
            })
            .run();
        assert_eq!(
            report.results,
            vec!["web:0/1", "worker:0/3", "worker:1/3", "worker:2/3"]
        );
    }

    #[test]
    fn vm_size_changes_storage_latency() {
        // The same 1 MB upload is slower from an Extra Small instance
        // (5 Mbit/s shared NIC) than from an Extra Large one (800 Mbit/s).
        let upload_cost = |vm: VmSize| {
            let report = Deployment::new(ClusterParams::default(), 2)
                .with_role("w", 1, vm, |ctx, _env| async move {
                    ctx.call(StorageRequest::CreateContainer {
                        container: "c".into(),
                    })
                    .await
                    .unwrap();
                    let t0 = ctx.now();
                    ctx.call(StorageRequest::UploadBlockBlob {
                        container: "c".into(),
                        blob: "b".into(),
                        data: Bytes::from(vec![0u8; 1 << 20]),
                    })
                    .await
                    .unwrap();
                    ctx.now() - t0
                })
                .run();
            report.results[0]
        };
        let slow = upload_cost(VmSize::ExtraSmall);
        let fast = upload_cost(VmSize::ExtraLarge);
        assert!(
            slow > fast + Duration::from_millis(100),
            "XS {slow:?} must be much slower than XL {fast:?}"
        );
    }

    #[test]
    fn actor_ids_are_globally_dense() {
        let report = Deployment::new(ClusterParams::default(), 3)
            .with_role("a", 2, VmSize::Small, |ctx, env| async move {
                assert_eq!(ctx.id().0, env.actor);
                env.actor
            })
            .with_role("b", 2, VmSize::Small, |ctx, env| async move {
                assert_eq!(ctx.id().0, env.actor);
                env.actor
            })
            .run();
        assert_eq!(report.results, vec![0, 1, 2, 3]);
    }
}
