//! # azsim-cache — the simulated Azure caching service
//!
//! "Azure platform also provides a caching service to temporarily hold
//! data in memory across different servers" (paper §II-B); the paper
//! excludes it from its benchmarks and lists caches among future work.
//! This crate models that service (the 2011 AppFabric Cache):
//!
//! * a ring of cache nodes; keys map to nodes by stable hash;
//! * per-node memory capacity with LRU eviction;
//! * absolute TTLs (expired entries are never returned);
//! * a [`CacheClient`] that charges a small in-memory round trip through
//!   an [`azsim_client::Environment`] — an order of magnitude cheaper than
//!   a storage operation, which is the service's reason to exist.
//!
//! Inside the virtual-time runtime, actors execute one at a time, so a
//! shared [`CacheCluster`] behind a mutex stays deterministic.

pub mod cluster;

pub use cluster::{CacheClient, CacheCluster, CacheStats};
