//! Cache ring, nodes, LRU/TTL semantics, and the timed client.

use azsim_core::SimTime;
use azsim_storage::PartitionKey;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Hit/miss/eviction counters for the whole cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Successful gets.
    pub hits: u64,
    /// Gets that found nothing (absent or expired).
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries dropped because their TTL elapsed.
    pub expirations: u64,
}

struct Entry {
    value: Bytes,
    expiry: Option<SimTime>,
    /// LRU clock value of the last touch.
    touched: u64,
}

struct Node {
    entries: HashMap<String, Entry>,
    used: u64,
    capacity: u64,
}

impl Node {
    fn new(capacity: u64) -> Self {
        Node {
            entries: HashMap::new(),
            used: 0,
            capacity,
        }
    }
}

/// A ring of cache nodes with per-node capacity.
pub struct CacheCluster {
    nodes: Vec<Node>,
    lru_clock: u64,
    stats: CacheStats,
}

impl CacheCluster {
    /// Build a ring of `nodes` nodes with `capacity_per_node` bytes each.
    pub fn new(nodes: usize, capacity_per_node: u64) -> Arc<Mutex<Self>> {
        assert!(nodes > 0 && capacity_per_node > 0);
        Arc::new(Mutex::new(CacheCluster {
            nodes: (0..nodes).map(|_| Node::new(capacity_per_node)).collect(),
            lru_clock: 0,
            stats: CacheStats::default(),
        }))
    }

    fn node_for(&self, key: &str) -> usize {
        // Reuse the storage layer's stable hash for placement.
        PartitionKey::Queue {
            queue: key.to_owned(),
        }
        .server_index(self.nodes.len())
    }

    fn tick(&mut self) -> u64 {
        self.lru_clock += 1;
        self.lru_clock
    }

    /// Store `value` under `key` (replacing any previous value) with an
    /// optional TTL. Oversized values (larger than one node) are rejected
    /// by returning `false`.
    pub fn put(&mut self, now: SimTime, key: &str, value: Bytes, ttl: Option<Duration>) -> bool {
        let n = self.node_for(key);
        let size = value.len() as u64;
        if size > self.nodes[n].capacity {
            return false;
        }
        let touched = self.tick();
        let node = &mut self.nodes[n];
        if let Some(old) = node.entries.remove(key) {
            node.used -= old.value.len() as u64;
        }
        // Evict LRU entries until the new value fits.
        while node.used + size > node.capacity {
            let victim = node
                .entries
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(k, _)| k.clone())
                .expect("capacity exceeded with no entries");
            let e = node.entries.remove(&victim).expect("victim exists");
            node.used -= e.value.len() as u64;
            self.stats.evictions += 1;
        }
        node.used += size;
        node.entries.insert(
            key.to_owned(),
            Entry {
                value,
                expiry: ttl.map(|d| now + d),
                touched,
            },
        );
        true
    }

    /// Fetch `key`, refreshing its LRU position. Expired entries count as
    /// misses and are dropped.
    pub fn get(&mut self, now: SimTime, key: &str) -> Option<Bytes> {
        let n = self.node_for(key);
        let touched = self.tick();
        let node = &mut self.nodes[n];
        match node.entries.get_mut(key) {
            Some(e) if e.expiry.is_none_or(|t| t > now) => {
                e.touched = touched;
                self.stats.hits += 1;
                Some(e.value.clone())
            }
            Some(_) => {
                let e = node.entries.remove(key).expect("entry present");
                node.used -= e.value.len() as u64;
                self.stats.expirations += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Remove `key`; returns whether it was present (expired or not).
    pub fn remove(&mut self, key: &str) -> bool {
        let n = self.node_for(key);
        let node = &mut self.nodes[n];
        match node.entries.remove(key) {
            Some(e) => {
                node.used -= e.value.len() as u64;
                true
            }
            None => false,
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Total bytes cached across nodes.
    pub fn used_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.used).sum()
    }
}

/// A timed cache handle for one role instance: every operation charges a
/// small in-memory round trip through the environment's clock.
pub struct CacheClient<'e, E: azsim_client::Environment> {
    env: &'e E,
    cache: Arc<Mutex<CacheCluster>>,
    rtt: Duration,
}

impl<'e, E: azsim_client::Environment> CacheClient<'e, E> {
    /// Default cache round trip: in-memory, an order of magnitude below a
    /// storage operation.
    pub const DEFAULT_RTT: Duration = Duration::from_micros(900);

    /// Bind a client to a shared cache.
    pub fn new(env: &'e E, cache: Arc<Mutex<CacheCluster>>) -> Self {
        CacheClient {
            env,
            cache,
            rtt: Self::DEFAULT_RTT,
        }
    }

    /// Override the modeled round trip.
    pub fn with_rtt(mut self, rtt: Duration) -> Self {
        self.rtt = rtt;
        self
    }

    /// Timed put.
    pub async fn put(&self, key: &str, value: Bytes, ttl: Option<Duration>) -> bool {
        self.env.sleep(self.rtt).await;
        self.cache.lock().put(self.env.now(), key, value, ttl)
    }

    /// Timed get.
    pub async fn get(&self, key: &str) -> Option<Bytes> {
        self.env.sleep(self.rtt).await;
        self.cache.lock().get(self.env.now(), key)
    }

    /// Timed remove.
    pub async fn remove(&self, key: &str) -> bool {
        self.env.sleep(self.rtt).await;
        self.cache.lock().remove(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn put_get_roundtrip_and_stats() {
        let cache = CacheCluster::new(4, 1 << 20);
        let mut c = cache.lock();
        assert!(c.put(at(0), "k", Bytes::from_static(b"v"), None));
        assert_eq!(c.get(at(1), "k"), Some(Bytes::from_static(b"v")));
        assert_eq!(c.get(at(1), "missing"), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn ttl_expires_entries() {
        let cache = CacheCluster::new(2, 1 << 20);
        let mut c = cache.lock();
        c.put(
            at(0),
            "k",
            Bytes::from_static(b"v"),
            Some(Duration::from_secs(10)),
        );
        assert!(c.get(at(9), "k").is_some());
        assert!(c.get(at(10), "k").is_none(), "expiry is exclusive");
        assert_eq!(c.stats().expirations, 1);
        // Space was reclaimed.
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn lru_eviction_prefers_cold_entries() {
        // One node so all keys collide; capacity for two 4-byte values.
        let cache = CacheCluster::new(1, 8);
        let mut c = cache.lock();
        c.put(at(0), "a", Bytes::from_static(b"aaaa"), None);
        c.put(at(0), "b", Bytes::from_static(b"bbbb"), None);
        // Touch `a` so `b` becomes the LRU victim.
        assert!(c.get(at(1), "a").is_some());
        c.put(at(2), "c", Bytes::from_static(b"cccc"), None);
        assert!(c.get(at(3), "a").is_some(), "recently used must survive");
        assert!(c.get(at(3), "b").is_none(), "LRU entry must be evicted");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn oversized_values_rejected_and_replacement_reuses_space() {
        let cache = CacheCluster::new(1, 10);
        let mut c = cache.lock();
        assert!(!c.put(at(0), "big", Bytes::from(vec![0u8; 11]), None));
        assert!(c.put(at(0), "k", Bytes::from(vec![0u8; 10]), None));
        // Replacing k must not trip capacity.
        assert!(c.put(at(0), "k", Bytes::from(vec![1u8; 10]), None));
        assert_eq!(c.used_bytes(), 10);
    }

    #[test]
    fn keys_spread_across_nodes() {
        let cache = CacheCluster::new(8, 1 << 20);
        let c = cache.lock();
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            let key = format!("key-{i}");
            seen.insert(c.node_for(&key));
        }
        assert!(seen.len() >= 6, "placement skewed: {seen:?}");
    }

    #[test]
    fn remove_frees_space() {
        let cache = CacheCluster::new(1, 100);
        let mut c = cache.lock();
        c.put(at(0), "k", Bytes::from(vec![0u8; 60]), None);
        assert!(c.remove("k"));
        assert!(!c.remove("k"));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn cache_cuts_latency_versus_table_in_simulation() {
        use azsim_client::{Environment, TableClient, VirtualEnv};
        use azsim_core::Simulation;
        use azsim_fabric::Cluster;
        use azsim_storage::{Entity, PropValue};

        // The cache-aside pattern: read-through once, then hits are an
        // order of magnitude cheaper than table queries.
        let sim = Simulation::new(Cluster::with_defaults(), 77);
        let shared = CacheCluster::new(4, 1 << 20);
        let report = sim.run_workers(4, move |ctx| {
            let shared = Arc::clone(&shared);
            async move {
                let env = VirtualEnv::new(&ctx);
                let table = TableClient::new(&env, "t");
                table.create_table().await.unwrap();
                let cache = CacheClient::new(&env, shared);
                let me = ctx.id().0;
                table
                    .insert(Entity::new("p", me.to_string()).with("v", PropValue::I64(me as i64)))
                    .await
                    .unwrap();

                // Cold read: miss → table → fill.
                let t0 = env.now();
                let key = format!("p/{me}");
                assert!(cache.get(&key).await.is_none());
                let (_e, _) = table.query("p", &me.to_string()).await.unwrap().unwrap();
                cache
                    .put(&key, Bytes::from(me.to_le_bytes().to_vec()), None)
                    .await;
                let cold = env.now().saturating_since(t0);

                // Warm read: hit.
                let t0 = env.now();
                assert!(cache.get(&key).await.is_some());
                let warm = env.now().saturating_since(t0);
                assert!(cold > warm * 4, "cold {cold:?} must dwarf warm {warm:?}");
                warm
            }
        });
        assert!(report.results.iter().all(|w| *w < Duration::from_millis(2)));
    }

    proptest::proptest! {
        /// Used bytes always equals the sum of live entry sizes and never
        /// exceeds capacity, under arbitrary put/get/remove interleavings.
        #[test]
        fn prop_accounting_invariants(
            ops in proptest::collection::vec((0u8..3, 0u8..16, 1usize..64), 1..200)
        ) {
            let cache = CacheCluster::new(2, 256);
            let mut c = cache.lock();
            for (i, (op, key, size)) in ops.into_iter().enumerate() {
                let key = format!("k{key}");
                match op {
                    0 => { c.put(SimTime(i as u64), &key, Bytes::from(vec![0u8; size]), None); }
                    1 => { c.get(SimTime(i as u64), &key); }
                    _ => { c.remove(&key); }
                }
                let live: u64 = c.nodes.iter()
                    .flat_map(|n| n.entries.values())
                    .map(|e| e.value.len() as u64)
                    .sum();
                proptest::prop_assert_eq!(c.used_bytes(), live);
                for n in &c.nodes {
                    proptest::prop_assert!(n.used <= n.capacity);
                }
            }
        }
    }
}
