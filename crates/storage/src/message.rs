//! Queue message payload types.

use azsim_core::SimTime;
use bytes::Bytes;

/// Unique message identifier within a queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MessageId(pub u64);

/// A receipt proving a consumer currently "owns" a dequeued (invisible)
/// message; required to delete it. If the visibility timeout elapses and the
/// message is re-delivered, the old receipt stops working — that is the
/// fault-tolerance mechanism the paper's framework relies on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PopReceipt(pub u64);

/// A message as returned by `GetMessage`.
#[derive(Clone, Debug, PartialEq)]
pub struct QueueMessage {
    /// Stable message id.
    pub id: MessageId,
    /// Receipt for the current dequeue; needed by `DeleteMessage`.
    pub pop_receipt: PopReceipt,
    /// Message payload (≤ 48 KB usable).
    pub data: Bytes,
    /// How many times the message has been dequeued (1 on first delivery).
    pub dequeue_count: u32,
    /// When the message was inserted.
    pub insertion_time: SimTime,
    /// When the message becomes visible again if not deleted.
    pub next_visible: SimTime,
}

/// A message as returned by `PeekMessage` (no receipt — peeking does not
/// take ownership and leaves the message visible to other consumers).
#[derive(Clone, Debug, PartialEq)]
pub struct PeekedMessage {
    /// Stable message id.
    pub id: MessageId,
    /// Message payload.
    pub data: Bytes,
    /// How many times the message has been dequeued so far.
    pub dequeue_count: u32,
    /// When the message was inserted.
    pub insertion_time: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered() {
        assert!(MessageId(1) < MessageId(2));
    }

    #[test]
    fn receipts_compare_by_value() {
        assert_eq!(PopReceipt(7), PopReceipt(7));
        assert_ne!(PopReceipt(7), PopReceipt(8));
    }
}
