//! Table entity payload types.
//!
//! Azure tables are schemaless: an entity is a bag of up to 255 named,
//! typed properties plus the mandatory `PartitionKey`/`RowKey` pair that
//! forms its unique key. Two entities in the same table may have different
//! properties.

use bytes::Bytes;
use std::collections::BTreeMap;

/// A property value. The subset of EDM types the benchmarks and examples
/// need (the paper stores one binary column of random data).
#[derive(Clone, Debug, PartialEq)]
pub enum PropValue {
    /// Binary payload (`Edm.Binary`).
    Binary(Bytes),
    /// UTF-8 string (`Edm.String`).
    Str(String),
    /// 64-bit integer (`Edm.Int64`).
    I64(i64),
    /// Double (`Edm.Double`).
    F64(f64),
    /// Boolean (`Edm.Boolean`).
    Bool(bool),
}

impl PropValue {
    /// Serialized size of the value in bytes, as counted against the 1 MB
    /// entity limit.
    pub fn size(&self) -> u64 {
        match self {
            PropValue::Binary(b) => b.len() as u64,
            PropValue::Str(s) => s.len() as u64,
            PropValue::I64(_) | PropValue::F64(_) => 8,
            PropValue::Bool(_) => 1,
        }
    }
}

/// A table entity: key pair plus named properties.
#[derive(Clone, Debug, PartialEq)]
pub struct Entity {
    /// Partition key — entities sharing it are stored on the same partition
    /// server (and share the 500 entities/s scalability target).
    pub partition_key: String,
    /// Row key — unique within a partition.
    pub row_key: String,
    /// Named properties (deterministically ordered for reproducibility).
    pub properties: BTreeMap<String, PropValue>,
}

impl Entity {
    /// Create an entity with no properties.
    pub fn new(partition_key: impl Into<String>, row_key: impl Into<String>) -> Self {
        Entity {
            partition_key: partition_key.into(),
            row_key: row_key.into(),
            properties: BTreeMap::new(),
        }
    }

    /// Builder-style property insertion.
    pub fn with(mut self, name: impl Into<String>, value: PropValue) -> Self {
        self.properties.insert(name.into(), value);
        self
    }

    /// Number of properties (excluding the key pair).
    pub fn property_count(&self) -> usize {
        self.properties.len()
    }

    /// Total serialized size counted against the 1 MB limit: keys plus all
    /// property names and values.
    pub fn size(&self) -> u64 {
        let keys = (self.partition_key.len() + self.row_key.len()) as u64;
        let props: u64 = self
            .properties
            .iter()
            .map(|(name, v)| name.len() as u64 + v.size())
            .sum();
        keys + props
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_counts_keys_names_and_values() {
        let e = Entity::new("pk", "rk") // 4 bytes of key
            .with("a", PropValue::I64(0)) // 1 + 8
            .with("bb", PropValue::Str("xyz".into())); // 2 + 3
        assert_eq!(e.size(), 4 + 9 + 5);
        assert_eq!(e.property_count(), 2);
    }

    #[test]
    fn binary_and_scalar_sizes() {
        assert_eq!(PropValue::Binary(Bytes::from(vec![0u8; 100])).size(), 100);
        assert_eq!(PropValue::I64(5).size(), 8);
        assert_eq!(PropValue::F64(1.5).size(), 8);
        assert_eq!(PropValue::Bool(true).size(), 1);
        assert_eq!(PropValue::Str("ab".into()).size(), 2);
    }

    #[test]
    fn with_replaces_duplicate_property() {
        let e = Entity::new("p", "r")
            .with("x", PropValue::I64(1))
            .with("x", PropValue::I64(2));
        assert_eq!(e.property_count(), 1);
        assert_eq!(e.properties["x"], PropValue::I64(2));
    }
}
