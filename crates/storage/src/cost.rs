//! Operation classification consumed by the latency model.
//!
//! Each storage request maps to an [`OpClass`]; the fabric turns the class
//! plus payload sizes into a virtual latency. The [`SyncClass`] encodes the
//! replication work the paper uses to explain why queue operations differ in
//! cost: *Put* synchronizes the write across the three replicas, *Peek*
//! reads from the primary only, and *Get* additionally propagates the
//! message's invisibility state to all copies, making it the most expensive.

/// Which storage service an operation belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Service {
    /// Blob storage.
    Blob,
    /// Queue storage.
    Queue,
    /// Table storage.
    Table,
}

/// Replication/synchronization work an operation entails on the server side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncClass {
    /// Read served by the primary replica; no cross-replica coordination.
    ReadPrimary,
    /// Write synchronized across all three replicas before acknowledging
    /// (Windows Azure Storage offers strong consistency).
    Replicate,
    /// Write-class synchronization *plus* extra per-message state (the
    /// visibility change of `GetMessage`) maintained across all copies.
    ReplicateState,
}

/// Fine-grained operation class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    // --- Blob ---
    /// Create a blob container (control plane).
    BlobCreateContainer,
    /// Stage one block of a block blob.
    BlobPutBlock,
    /// Commit a block list.
    BlobPutBlockList,
    /// Single-shot upload of a block blob ≤ 64 MB.
    BlobUploadSingle,
    /// Read one committed block (sequential access path).
    BlobGetBlock,
    /// Download a whole blob via the streaming path
    /// (`DownloadText()` / `openRead()`).
    BlobDownload,
    /// Create (and reserve the maximum size of) a page blob.
    BlobCreatePage,
    /// Write a page range.
    BlobPutPage,
    /// Read a page range at a random offset (pays a locate step).
    BlobGetPage,
    /// Delete a blob.
    BlobDelete,
    /// List blob names in a container (control plane).
    BlobList,
    // --- Queue ---
    /// Create a queue (control plane).
    QueueCreate,
    /// Delete a queue (control plane).
    QueueDelete,
    /// `PutMessage`.
    QueuePut,
    /// `GetMessage` (dequeue with visibility timeout).
    QueueGet,
    /// `PeekMessage`.
    QueuePeek,
    /// `DeleteMessage`.
    QueueDeleteMsg,
    /// Read the approximate message count.
    QueueCount,
    /// Remove every message from a queue.
    QueueClear,
    // --- Table ---
    /// Create a table (control plane).
    TableCreate,
    /// Delete a table (control plane).
    TableDelete,
    /// Insert an entity.
    TableInsert,
    /// Point query by (PartitionKey, RowKey).
    TableQuery,
    /// Range query over one partition.
    TableQueryPartition,
    /// Update an entity (conditional or wildcard ETag).
    TableUpdate,
    /// Entity-group transaction (atomic same-partition batch).
    TableBatch,
    /// Delete an entity.
    TableDeleteEntity,
}

impl OpClass {
    /// Number of operation classes (the length of [`OpClass::ALL`]).
    pub const COUNT: usize = 27;

    /// Every class, in declaration order — the canonical report order, and
    /// the index space of [`OpClass::index`].
    pub const ALL: [OpClass; OpClass::COUNT] = {
        use OpClass::*;
        [
            BlobCreateContainer,
            BlobPutBlock,
            BlobPutBlockList,
            BlobUploadSingle,
            BlobGetBlock,
            BlobDownload,
            BlobCreatePage,
            BlobPutPage,
            BlobGetPage,
            BlobDelete,
            BlobList,
            QueueCreate,
            QueueDelete,
            QueuePut,
            QueueGet,
            QueuePeek,
            QueueDeleteMsg,
            QueueCount,
            QueueClear,
            TableCreate,
            TableDelete,
            TableInsert,
            TableQuery,
            TableQueryPartition,
            TableUpdate,
            TableBatch,
            TableDeleteEntity,
        ]
    };

    /// Dense index of this class in `0..OpClass::COUNT`, suitable for
    /// array-backed per-class tables on the metrics hot path.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The service the class belongs to.
    pub fn service(self) -> Service {
        use OpClass::*;
        match self {
            BlobCreateContainer | BlobPutBlock | BlobPutBlockList | BlobUploadSingle
            | BlobGetBlock | BlobDownload | BlobCreatePage | BlobPutPage | BlobGetPage
            | BlobDelete | BlobList => Service::Blob,
            QueueCreate | QueueDelete | QueuePut | QueueGet | QueuePeek | QueueDeleteMsg
            | QueueCount | QueueClear => Service::Queue,
            TableCreate | TableDelete | TableInsert | TableQuery | TableQueryPartition
            | TableUpdate | TableBatch | TableDeleteEntity => Service::Table,
        }
    }

    /// The replication work class.
    pub fn sync_class(self) -> SyncClass {
        use OpClass::*;
        match self {
            // GetMessage: write-sync plus invisibility-state propagation.
            QueueGet => SyncClass::ReplicateState,
            // Reads from the primary.
            BlobGetBlock | BlobDownload | BlobGetPage | BlobList | QueuePeek | QueueCount
            | TableQuery | TableQueryPartition => SyncClass::ReadPrimary,
            // Everything else mutates state and must replicate.
            _ => SyncClass::Replicate,
        }
    }

    /// Whether the operation mutates service state.
    pub fn is_write(self) -> bool {
        self.sync_class() != SyncClass::ReadPrimary
    }

    /// Whether the operation is control-plane (hits the partition master,
    /// not a data partition's scalability target).
    pub fn is_control(self) -> bool {
        use OpClass::*;
        matches!(
            self,
            BlobCreateContainer | BlobList | QueueCreate | QueueDelete | TableCreate | TableDelete
        )
    }

    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        use OpClass::*;
        match self {
            BlobCreateContainer => "blob.create_container",
            BlobPutBlock => "blob.put_block",
            BlobPutBlockList => "blob.put_block_list",
            BlobUploadSingle => "blob.upload_single",
            BlobGetBlock => "blob.get_block",
            BlobDownload => "blob.download",
            BlobCreatePage => "blob.create_page",
            BlobPutPage => "blob.put_page",
            BlobGetPage => "blob.get_page",
            BlobDelete => "blob.delete",
            BlobList => "blob.list",
            QueueCreate => "queue.create",
            QueueDelete => "queue.delete",
            QueuePut => "queue.put",
            QueueGet => "queue.get",
            QueuePeek => "queue.peek",
            QueueDeleteMsg => "queue.delete_msg",
            QueueCount => "queue.count",
            QueueClear => "queue.clear",
            TableCreate => "table.create",
            TableDelete => "table.delete",
            TableInsert => "table.insert",
            TableQuery => "table.query",
            TableQueryPartition => "table.query_partition",
            TableUpdate => "table.update",
            TableBatch => "table.batch",
            TableDeleteEntity => "table.delete_entity",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_ops_have_paper_cost_ordering_classes() {
        // Peek: primary read. Put: replicate. Get: replicate + state.
        assert_eq!(OpClass::QueuePeek.sync_class(), SyncClass::ReadPrimary);
        assert_eq!(OpClass::QueuePut.sync_class(), SyncClass::Replicate);
        assert_eq!(OpClass::QueueGet.sync_class(), SyncClass::ReplicateState);
    }

    #[test]
    fn services_partition_the_classes() {
        assert_eq!(OpClass::BlobPutPage.service(), Service::Blob);
        assert_eq!(OpClass::QueueCount.service(), Service::Queue);
        assert_eq!(OpClass::TableUpdate.service(), Service::Table);
    }

    #[test]
    fn reads_are_not_writes() {
        assert!(!OpClass::TableQuery.is_write());
        assert!(!OpClass::BlobDownload.is_write());
        assert!(OpClass::TableUpdate.is_write());
        assert!(OpClass::QueuePut.is_write());
        assert!(OpClass::QueueGet.is_write());
    }

    #[test]
    fn control_plane_classification() {
        assert!(OpClass::QueueCreate.is_control());
        assert!(OpClass::TableDelete.is_control());
        assert!(!OpClass::QueuePut.is_control());
        assert!(!OpClass::BlobPutBlock.is_control());
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> = OpClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), OpClass::ALL.len());
    }

    #[test]
    fn indices_are_dense_and_match_declaration_order() {
        for (i, class) in OpClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i, "{class:?}");
        }
        assert_eq!(OpClass::ALL.len(), OpClass::COUNT);
    }
}
