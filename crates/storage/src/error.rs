//! Error model of the simulated storage services.

use std::fmt;
use std::time::Duration;

/// Result alias used by every storage operation.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors a storage operation can return.
///
/// `ServerBusy` is the throttle signal the paper's benchmarks observe when a
/// scalability target (500 tx/s per queue/partition, 5 000 tx/s per account)
/// is exceeded; the SDK's retry policy sleeps one second and retries, just
/// like the paper's worker code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// The request was throttled; retry after roughly the contained delay.
    ServerBusy {
        /// Hint for when capacity should be available again.
        retry_after: Duration,
    },
    /// An S3-style `503 SlowDown` response: the service sheds load and
    /// expects the client to back off along the escalating curve encoded
    /// in the hint. Semantically a throttle like [`StorageError::ServerBusy`],
    /// but the hint grows with consecutive rejections instead of reflecting
    /// a token-bucket deficit.
    SlowDown {
        /// Escalating back-off hint (doubles per consecutive rejection up
        /// to the backend's declared cap).
        retry_after: Duration,
    },
    /// The request (or its response) was lost and the client's wait
    /// expired. The operation may or may not have executed server-side —
    /// callers must treat it as ambiguous and retry idempotently.
    Timeout {
        /// How long the client waited before giving up.
        elapsed: Duration,
    },
    /// A partition server crashed or the partition is failing over; the
    /// partition is temporarily unavailable.
    ServerFault {
        /// Rough time until the failover window closes and the partition
        /// is served again.
        retry_after: Duration,
    },
    /// The addressed container does not exist.
    ContainerNotFound(String),
    /// The addressed blob does not exist.
    BlobNotFound(String),
    /// The addressed queue does not exist.
    QueueNotFound(String),
    /// The addressed table does not exist.
    TableNotFound(String),
    /// The addressed entity does not exist.
    EntityNotFound,
    /// The resource already exists (e.g. inserting a duplicate entity or
    /// creating an existing container without idempotent semantics).
    AlreadyExists,
    /// An ETag precondition failed on a conditional update/delete.
    PreconditionFailed,
    /// A message payload exceeded the 48 KB usable limit.
    MessageTooLarge {
        /// Size of the rejected payload.
        size: u64,
    },
    /// A block exceeded the 4 MB block limit.
    BlockTooLarge {
        /// Size of the rejected block.
        size: u64,
    },
    /// A block list exceeded 50 000 blocks (or the blob would exceed 200 GB).
    TooManyBlocks {
        /// Number of blocks in the rejected commit.
        count: usize,
    },
    /// A block id referenced by `PutBlockList` was never staged or committed.
    UnknownBlockId(String),
    /// A page write violated the 512-byte alignment rule or the 4 MB
    /// per-write cap, or fell outside the blob.
    InvalidPageRange {
        /// Offending offset.
        offset: u64,
        /// Offending length.
        length: u64,
    },
    /// The blob exists but is of the wrong kind for this operation
    /// (e.g. `PutPage` on a block blob).
    WrongBlobType,
    /// An entity exceeded the 1 MB size limit.
    EntityTooLarge {
        /// Size of the rejected entity.
        size: u64,
    },
    /// An entity exceeded 255 properties.
    TooManyProperties {
        /// Property count of the rejected entity.
        count: usize,
    },
    /// A `DeleteMessage` presented a pop receipt that is no longer current
    /// (the message timed out and was re-delivered to someone else).
    PopReceiptMismatch,
    /// The single-shot blob upload exceeded 64 MB.
    UploadTooLarge {
        /// Size of the rejected upload.
        size: u64,
    },
    /// Creating a page blob larger than 1 TB, or similar size violations.
    BlobTooLarge {
        /// Requested size.
        size: u64,
    },
}

impl StorageError {
    /// Whether the error is transient and worth retrying. Throttling is
    /// the paper's case; timeouts and server faults are the fault-injection
    /// extensions — all three clear up if the caller waits and retries.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            StorageError::ServerBusy { .. }
                | StorageError::SlowDown { .. }
                | StorageError::Timeout { .. }
                | StorageError::ServerFault { .. }
        )
    }

    /// The server's hint for how long to wait before retrying, if the
    /// error carried one.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            StorageError::ServerBusy { retry_after }
            | StorageError::SlowDown { retry_after }
            | StorageError::ServerFault { retry_after } => Some(*retry_after),
            _ => None,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ServerBusy { retry_after } => {
                write!(f, "server busy; retry after {retry_after:?}")
            }
            StorageError::SlowDown { retry_after } => {
                write!(f, "slow down; retry after {retry_after:?}")
            }
            StorageError::Timeout { elapsed } => {
                write!(f, "request timed out after {elapsed:?}")
            }
            StorageError::ServerFault { retry_after } => {
                write!(f, "partition server fault; retry after {retry_after:?}")
            }
            StorageError::ContainerNotFound(n) => write!(f, "container not found: {n}"),
            StorageError::BlobNotFound(n) => write!(f, "blob not found: {n}"),
            StorageError::QueueNotFound(n) => write!(f, "queue not found: {n}"),
            StorageError::TableNotFound(n) => write!(f, "table not found: {n}"),
            StorageError::EntityNotFound => write!(f, "entity not found"),
            StorageError::AlreadyExists => write!(f, "resource already exists"),
            StorageError::PreconditionFailed => write!(f, "ETag precondition failed"),
            StorageError::MessageTooLarge { size } => {
                write!(f, "message payload {size} B exceeds 48 KB usable limit")
            }
            StorageError::BlockTooLarge { size } => {
                write!(f, "block of {size} B exceeds 4 MB limit")
            }
            StorageError::TooManyBlocks { count } => {
                write!(f, "block list of {count} exceeds 50000-block limit")
            }
            StorageError::UnknownBlockId(id) => write!(f, "unknown block id {id:?}"),
            StorageError::InvalidPageRange { offset, length } => {
                write!(f, "invalid page range at offset {offset}, length {length}")
            }
            StorageError::WrongBlobType => write!(f, "operation not valid for this blob type"),
            StorageError::EntityTooLarge { size } => {
                write!(f, "entity of {size} B exceeds 1 MB limit")
            }
            StorageError::TooManyProperties { count } => {
                write!(f, "{count} properties exceeds 255-property limit")
            }
            StorageError::PopReceiptMismatch => write!(f, "pop receipt no longer current"),
            StorageError::UploadTooLarge { size } => {
                write!(f, "single-shot upload of {size} B exceeds 64 MB limit")
            }
            StorageError::BlobTooLarge { size } => {
                write!(f, "blob size {size} B exceeds service limit")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_errors_are_retryable() {
        assert!(StorageError::ServerBusy {
            retry_after: Duration::from_secs(1)
        }
        .is_retryable());
        assert!(StorageError::SlowDown {
            retry_after: Duration::from_millis(100)
        }
        .is_retryable());
        assert!(StorageError::Timeout {
            elapsed: Duration::from_secs(30)
        }
        .is_retryable());
        assert!(StorageError::ServerFault {
            retry_after: Duration::from_secs(10)
        }
        .is_retryable());
        assert!(!StorageError::EntityNotFound.is_retryable());
        assert!(!StorageError::PreconditionFailed.is_retryable());
        assert!(!StorageError::PopReceiptMismatch.is_retryable());
    }

    #[test]
    fn retry_after_hint_only_where_the_server_provides_one() {
        assert_eq!(
            StorageError::ServerFault {
                retry_after: Duration::from_secs(9)
            }
            .retry_after(),
            Some(Duration::from_secs(9))
        );
        assert_eq!(
            StorageError::SlowDown {
                retry_after: Duration::from_millis(200)
            }
            .retry_after(),
            Some(Duration::from_millis(200))
        );
        assert_eq!(
            StorageError::Timeout {
                elapsed: Duration::from_secs(1)
            }
            .retry_after(),
            None
        );
        assert_eq!(StorageError::AlreadyExists.retry_after(), None);
    }

    #[test]
    fn display_is_informative() {
        let e = StorageError::MessageTooLarge { size: 65_536 };
        assert!(e.to_string().contains("65536"));
        assert!(e.to_string().contains("48 KB"));
        let e = StorageError::QueueNotFound("q7".into());
        assert!(e.to_string().contains("q7"));
    }
}
