//! Storage partitioning.
//!
//! Windows Azure Storage spreads objects over partition servers by a
//! per-service partition key (paper, Section IV):
//!
//! * **Blobs** partition on *container name + blob name* — every individual
//!   blob can live on a different server, which is why concurrent access to
//!   many blobs scales.
//! * **Queues** partition on *queue name* — a queue and all its messages
//!   live on a single server, which is why a single shared queue is a
//!   bottleneck (500 msg/s) and the paper recommends one queue per worker.
//! * **Tables** partition on *(table name, PartitionKey)* — entities of the
//!   same partition are stored together (500 entities/s per partition).

/// The partition an operation targets. Determines which simulated partition
/// server serializes it and which throttle bucket it consumes.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PartitionKey {
    /// A blob partition: `(container, blob)`.
    Blob {
        /// Container name.
        container: String,
        /// Blob name.
        blob: String,
    },
    /// A queue partition: the queue name.
    Queue {
        /// Queue name.
        queue: String,
    },
    /// A table partition: `(table, partition key)`.
    Table {
        /// Table name.
        table: String,
        /// Entity partition key.
        partition: String,
    },
    /// Account-level control-plane operations (create/delete
    /// container/queue/table) that hit the partition master rather than a
    /// data partition.
    Control,
}

impl PartitionKey {
    /// Borrowed view of this key (no allocation).
    pub fn as_ref(&self) -> PartitionRef<'_> {
        match self {
            PartitionKey::Blob { container, blob } => PartitionRef::Blob { container, blob },
            PartitionKey::Queue { queue } => PartitionRef::Queue { queue },
            PartitionKey::Table { table, partition } => PartitionRef::Table { table, partition },
            PartitionKey::Control => PartitionRef::Control,
        }
    }

    /// Stable (FNV-1a) hash of the partition key, used to place the
    /// partition on a server. Independent of Rust's randomized `HashMap`
    /// hashing so placement is reproducible across runs and builds.
    pub fn stable_hash(&self) -> u64 {
        self.as_ref().stable_hash()
    }

    /// Index of the partition server owning this partition, in a fleet of
    /// `servers` servers.
    pub fn server_index(&self, servers: usize) -> usize {
        self.as_ref().server_index(servers)
    }
}

impl std::fmt::Display for PartitionKey {
    /// Stable `service:name` label used in metrics exports (heatmaps,
    /// Prometheus label values).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionKey::Blob { container, blob } => write!(f, "blob:{container}/{blob}"),
            PartitionKey::Queue { queue } => write!(f, "queue:{queue}"),
            PartitionKey::Table { table, partition } => write!(f, "table:{table}/{partition}"),
            PartitionKey::Control => write!(f, "control"),
        }
    }
}

/// A borrowed [`PartitionKey`]: the fabric's hot path derives this straight
/// from a request without cloning any strings, hashes it, and only
/// materializes an owned key the first time a partition is ever seen
/// (interning). Hashes are guaranteed identical to the owned key's — both go
/// through the same byte stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionRef<'a> {
    /// A blob partition: `(container, blob)`.
    Blob {
        /// Container name.
        container: &'a str,
        /// Blob name.
        blob: &'a str,
    },
    /// A queue partition: the queue name.
    Queue {
        /// Queue name.
        queue: &'a str,
    },
    /// A table partition: `(table, partition key)`.
    Table {
        /// Table name.
        table: &'a str,
        /// Entity partition key.
        partition: &'a str,
    },
    /// Account-level control-plane operations.
    Control,
}

impl PartitionRef<'_> {
    /// Stable (FNV-1a) hash; see [`PartitionKey::stable_hash`]. The service
    /// prefix and `/` separators keep distinct keys from colliding by
    /// concatenation.
    pub fn stable_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x1_0000_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        match self {
            PartitionRef::Blob { container, blob } => {
                eat(b"blob/");
                eat(container.as_bytes());
                eat(b"/");
                eat(blob.as_bytes());
            }
            PartitionRef::Queue { queue } => {
                eat(b"queue/");
                eat(queue.as_bytes());
            }
            PartitionRef::Table { table, partition } => {
                eat(b"table/");
                eat(table.as_bytes());
                eat(b"/");
                eat(partition.as_bytes());
            }
            PartitionRef::Control => eat(b"control"),
        }
        h
    }

    /// Index of the partition server owning this partition, in a fleet of
    /// `servers` servers.
    pub fn server_index(&self, servers: usize) -> usize {
        assert!(servers > 0, "cluster must have at least one server");
        (self.stable_hash() % servers as u64) as usize
    }

    /// Materialize an owned key (allocates; interning does this once per
    /// distinct partition).
    pub fn to_key(&self) -> PartitionKey {
        match *self {
            PartitionRef::Blob { container, blob } => PartitionKey::Blob {
                container: container.to_owned(),
                blob: blob.to_owned(),
            },
            PartitionRef::Queue { queue } => PartitionKey::Queue {
                queue: queue.to_owned(),
            },
            PartitionRef::Table { table, partition } => PartitionKey::Table {
                table: table.to_owned(),
                partition: partition.to_owned(),
            },
            PartitionRef::Control => PartitionKey::Control,
        }
    }

    /// Whether this view denotes the same partition as `key` (used to
    /// resolve stable-hash collisions in the interner).
    pub fn matches(&self, key: &PartitionKey) -> bool {
        *self == key.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qk(q: &str) -> PartitionKey {
        PartitionKey::Queue { queue: q.into() }
    }

    #[test]
    fn hash_is_stable_and_distinguishes_keys() {
        assert_eq!(qk("a").stable_hash(), qk("a").stable_hash());
        assert_ne!(qk("a").stable_hash(), qk("b").stable_hash());
        let b1 = PartitionKey::Blob {
            container: "c".into(),
            blob: "x".into(),
        };
        let t1 = PartitionKey::Table {
            table: "c".into(),
            partition: "x".into(),
        };
        assert_ne!(
            b1.stable_hash(),
            t1.stable_hash(),
            "service namespaces must differ"
        );
    }

    #[test]
    fn separator_prevents_concatenation_collisions() {
        let a = PartitionKey::Blob {
            container: "ab".into(),
            blob: "c".into(),
        };
        let b = PartitionKey::Blob {
            container: "a".into(),
            blob: "bc".into(),
        };
        assert_ne!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn server_index_in_range_and_spread() {
        let n = 16;
        let mut seen = std::collections::HashSet::new();
        for i in 0..256 {
            let idx = qk(&format!("queue-{i}")).server_index(n);
            assert!(idx < n);
            seen.insert(idx);
        }
        // 256 queues over 16 servers should hit most servers.
        assert!(seen.len() >= n - 2, "placement badly skewed: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        qk("a").server_index(0);
    }

    #[test]
    fn borrowed_view_hashes_identically_to_owned_key() {
        let keys = [
            PartitionKey::Blob {
                container: "cont".into(),
                blob: "bl".into(),
            },
            qk("my-queue"),
            PartitionKey::Table {
                table: "t".into(),
                partition: "p".into(),
            },
            PartitionKey::Control,
        ];
        for k in &keys {
            assert_eq!(k.as_ref().stable_hash(), k.stable_hash());
            assert_eq!(k.as_ref().server_index(64), k.server_index(64));
            assert_eq!(k.as_ref().to_key(), *k);
            assert!(k.as_ref().matches(k));
        }
        assert!(!keys[0].as_ref().matches(&keys[1]));
    }
}
