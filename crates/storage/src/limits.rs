//! Documented Windows Azure storage limits, as reported by the paper
//! (2011/2012-era API versions). Every limit is enforced by the service
//! state machines or by the fabric throttles.

/// Maximum total capacity of one storage account (100 TB).
pub const ACCOUNT_CAPACITY: u64 = 100 * TB;

/// Maximum transactions (entities/messages/blobs) per second for a single
/// storage account. Exceeding this can fail a role instance.
pub const ACCOUNT_TX_PER_SEC: f64 = 5_000.0;

/// Maximum bandwidth for a single storage account (3 GB/s).
pub const ACCOUNT_BANDWIDTH: f64 = 3.0 * GB as f64;

/// Throughput ceiling of a single blob (60 MB/s), per partition server.
pub const BLOB_THROUGHPUT: f64 = 60.0 * MB as f64;

/// Maximum size of one block within a block blob (4 MB).
pub const MAX_BLOCK_SIZE: u64 = 4 * MB;

/// Maximum number of committed blocks in a block blob (50 000), capping a
/// block blob at 200 GB.
pub const MAX_BLOCKS_PER_BLOB: usize = 50_000;

/// Maximum size of a block blob (200 GB = 50 000 × 4 MB).
pub const MAX_BLOCK_BLOB_SIZE: u64 = MAX_BLOCKS_PER_BLOB as u64 * MAX_BLOCK_SIZE;

/// Block blobs up to this size (64 MB) may be uploaded in a single call
/// without staging blocks.
pub const MAX_SINGLE_SHOT_UPLOAD: u64 = 64 * MB;

/// Page blob writes must start on a multiple of this offset (512 bytes).
pub const PAGE_ALIGNMENT: u64 = 512;

/// Maximum data updated by one `PutPage` call (4 MB).
pub const MAX_PAGE_WRITE: u64 = 4 * MB;

/// Maximum size of a page blob (1 TB).
pub const MAX_PAGE_BLOB_SIZE: u64 = TB;

/// Maximum raw size of a queue message (64 KB, October 2011 APIs; it used to
/// be 8 KB).
pub const MAX_MESSAGE_RAW: u64 = 64 * KB;

/// Maximum *usable* payload of a queue message: 48 KB (49 152 bytes) — the
/// remainder of the 64 KB raw size is Base64/metadata overhead. The paper
/// calls this out explicitly.
pub const MAX_MESSAGE_PAYLOAD: u64 = 48 * KB;

/// A message left in a queue for longer than this disappears (7 days under
/// the 2011 APIs; it was 2 hours before, which made Azure problematic for
/// long-running scientific applications).
pub const MESSAGE_TTL_SECS: u64 = 7 * 24 * 3600;

/// A single queue (one partition) handles at most 500 messages per second.
pub const QUEUE_MSGS_PER_SEC: f64 = 500.0;

/// A single table partition supports access to at most 500 entities per
/// second.
pub const PARTITION_ENTITIES_PER_SEC: f64 = 500.0;

/// Maximum size of one table entity (1 MB).
pub const MAX_ENTITY_SIZE: u64 = MB;

/// Maximum number of properties per entity (255).
pub const MAX_ENTITY_PROPERTIES: usize = 255;

/// One kilobyte (binary).
pub const KB: u64 = 1 << 10;
/// One megabyte (binary).
pub const MB: u64 = 1 << 20;
/// One gigabyte (binary).
pub const GB: u64 = 1 << 30;
/// One terabyte (binary).
pub const TB: u64 = 1 << 40;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn block_blob_cap_is_roughly_200_gb() {
        // 50 000 blocks × 4 MiB — the paper rounds this to "200 GB".
        assert_eq!(MAX_BLOCK_BLOB_SIZE, 50_000 * 4 * MB);
        assert!(MAX_BLOCK_BLOB_SIZE > 195 * GB && MAX_BLOCK_BLOB_SIZE < 200 * GB);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn usable_payload_is_49152_bytes() {
        // "48 KB (49152 Bytes to be precise) is the maximum usable size."
        assert_eq!(MAX_MESSAGE_PAYLOAD, 49_152);
        assert!(MAX_MESSAGE_PAYLOAD < MAX_MESSAGE_RAW);
    }

    #[test]
    fn units_are_consistent() {
        assert_eq!(KB * KB, MB);
        assert_eq!(MB * KB, GB);
        assert_eq!(GB * KB, TB);
    }

    #[test]
    fn ttl_is_one_week() {
        assert_eq!(MESSAGE_TTL_SECS, 604_800);
    }
}
