//! The request/response protocol spoken between SDK clients and the cluster.
//!
//! Every operation the paper's Algorithms 1–5 use has a request variant
//! here. The enum also knows its own [`OpClass`], [`PartitionKey`] and
//! uplink payload size, which is what the fabric needs to price the request
//! *before* the service executes it.

use crate::cost::OpClass;
use crate::entity::Entity;
use crate::etag::{ETag, EtagCondition};
use crate::message::{MessageId, PeekedMessage, PopReceipt, QueueMessage};
use crate::partition::{PartitionKey, PartitionRef};
use bytes::Bytes;
use std::time::Duration;

/// A storage request.
#[derive(Clone, Debug)]
pub enum StorageRequest {
    // --- Blob ---
    /// Create a container (idempotent: succeeds if it already exists, like
    /// `CreateIfNotExist`).
    CreateContainer {
        /// Container name.
        container: String,
    },
    /// Stage one block (≤ 4 MB) of a block blob.
    PutBlock {
        /// Container name.
        container: String,
        /// Blob name.
        blob: String,
        /// Caller-chosen block id (Base64 string in the real API).
        block_id: String,
        /// Block contents.
        data: Bytes,
    },
    /// Commit a list of staged/committed blocks as the new blob content.
    PutBlockList {
        /// Container name.
        container: String,
        /// Blob name.
        blob: String,
        /// Ordered block ids forming the blob.
        block_ids: Vec<String>,
    },
    /// Single-shot upload of a block blob ≤ 64 MB.
    UploadBlockBlob {
        /// Container name.
        container: String,
        /// Blob name.
        blob: String,
        /// Entire blob contents.
        data: Bytes,
    },
    /// Read the `index`-th committed block of a block blob.
    GetBlock {
        /// Container name.
        container: String,
        /// Blob name.
        blob: String,
        /// Zero-based committed-block index.
        index: usize,
    },
    /// Download a whole blob (block or page) via the streaming path.
    DownloadBlob {
        /// Container name.
        container: String,
        /// Blob name.
        blob: String,
    },
    /// Create a page blob with a fixed maximum size.
    CreatePageBlob {
        /// Container name.
        container: String,
        /// Blob name.
        blob: String,
        /// Maximum size in bytes (≤ 1 TB, 512-aligned).
        size: u64,
    },
    /// Write a 512-aligned page range (≤ 4 MB).
    PutPage {
        /// Container name.
        container: String,
        /// Blob name.
        blob: String,
        /// Byte offset (multiple of 512).
        offset: u64,
        /// Page contents (length a multiple of 512).
        data: Bytes,
    },
    /// Read a 512-aligned page range (random access: pays a locate step).
    GetPage {
        /// Container name.
        container: String,
        /// Blob name.
        blob: String,
        /// Byte offset (multiple of 512).
        offset: u64,
        /// Bytes to read.
        length: u64,
    },
    /// Delete a blob.
    DeleteBlob {
        /// Container name.
        container: String,
        /// Blob name.
        blob: String,
    },
    /// List blob names in a container (sorted).
    ListBlobs {
        /// Container name.
        container: String,
    },
    // --- Queue ---
    /// Create a queue (idempotent).
    CreateQueue {
        /// Queue name.
        queue: String,
    },
    /// Delete a queue and all of its messages.
    DeleteQueue {
        /// Queue name.
        queue: String,
    },
    /// Enqueue a message (payload ≤ 48 KB usable).
    PutMessage {
        /// Queue name.
        queue: String,
        /// Payload.
        data: Bytes,
        /// Message time-to-live (defaults to the service's 7 days when
        /// `None`).
        ttl: Option<Duration>,
    },
    /// Dequeue a message: it becomes invisible for `visibility_timeout`.
    GetMessage {
        /// Queue name.
        queue: String,
        /// How long the message stays invisible unless deleted.
        visibility_timeout: Duration,
    },
    /// Look at the frontmost visible message without taking ownership.
    PeekMessage {
        /// Queue name.
        queue: String,
    },
    /// Delete a message previously obtained with `GetMessage`.
    DeleteMessage {
        /// Queue name.
        queue: String,
        /// Id of the message to delete.
        id: MessageId,
        /// Receipt from the dequeue that claimed the message.
        pop_receipt: PopReceipt,
    },
    /// Read the approximate number of messages in a queue (the paper's
    /// barrier polls this).
    GetMessageCount {
        /// Queue name.
        queue: String,
    },
    /// Remove every message from a queue without deleting the queue.
    ClearQueue {
        /// Queue name.
        queue: String,
    },
    // --- Table ---
    /// Create a table (idempotent).
    CreateTable {
        /// Table name.
        table: String,
    },
    /// Delete a table and all entities.
    DeleteTable {
        /// Table name.
        table: String,
    },
    /// Insert a new entity (fails with `AlreadyExists` on duplicate key).
    InsertEntity {
        /// Table name.
        table: String,
        /// Entity to insert.
        entity: Entity,
    },
    /// Point query by key pair.
    QueryEntity {
        /// Table name.
        table: String,
        /// Partition key.
        partition: String,
        /// Row key.
        row: String,
    },
    /// Return all entities of one partition (row-key order).
    QueryPartition {
        /// Table name.
        table: String,
        /// Partition key.
        partition: String,
    },
    /// Replace an existing entity's properties, subject to an ETag
    /// condition (the paper uses the `*` wildcard).
    UpdateEntity {
        /// Table name.
        table: String,
        /// Replacement entity (keys select the target).
        entity: Entity,
        /// Concurrency condition.
        condition: EtagCondition,
    },
    /// Execute an entity-group transaction: up to 100 operations against
    /// one partition, applied atomically.
    ExecuteBatch {
        /// Table name.
        table: String,
        /// Partition key all operations share.
        partition: String,
        /// The operations.
        ops: Vec<TableBatchOp>,
    },
    /// Delete an entity, subject to an ETag condition.
    DeleteEntity {
        /// Table name.
        table: String,
        /// Partition key.
        partition: String,
        /// Row key.
        row: String,
        /// Concurrency condition.
        condition: EtagCondition,
    },
}

/// One operation inside an entity-group transaction (atomic table batch).
#[derive(Clone, Debug)]
pub enum TableBatchOp {
    /// Insert a new entity.
    Insert(Entity),
    /// Replace an entity under an ETag condition.
    Update(Entity, EtagCondition),
    /// Delete an entity under an ETag condition.
    Delete {
        /// Row key (the partition key comes from the batch).
        row: String,
        /// Concurrency condition.
        condition: EtagCondition,
    },
}

impl TableBatchOp {
    /// Uplink payload bytes of this constituent operation.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            TableBatchOp::Insert(e) | TableBatchOp::Update(e, _) => e.size(),
            TableBatchOp::Delete { .. } => 0,
        }
    }
}

/// Successful response payloads, one per request family.
#[derive(Clone, Debug)]
pub enum StorageOk {
    /// Operation completed with nothing to return.
    Ack,
    /// Block/page/blob bytes.
    Data(Bytes),
    /// A dequeued message, or `None` when the queue had no visible message.
    Message(Option<QueueMessage>),
    /// A peeked message, or `None`.
    Peeked(Option<PeekedMessage>),
    /// Approximate message count.
    Count(usize),
    /// An entity with its current ETag, or `None` for a miss on point query.
    Entity(Option<(Entity, ETag)>),
    /// Entities of a partition scan, with ETags.
    Entities(Vec<(Entity, ETag)>),
    /// Blob names from a container listing.
    Names(Vec<String>),
    /// New ETag after insert/update.
    Tag(ETag),
    /// Per-operation ETags of an entity-group transaction (None for
    /// deletes).
    BatchTags(Vec<Option<ETag>>),
}

impl StorageRequest {
    /// The operation class (used by the latency model).
    pub fn class(&self) -> OpClass {
        use StorageRequest::*;
        match self {
            CreateContainer { .. } => OpClass::BlobCreateContainer,
            PutBlock { .. } => OpClass::BlobPutBlock,
            PutBlockList { .. } => OpClass::BlobPutBlockList,
            UploadBlockBlob { .. } => OpClass::BlobUploadSingle,
            GetBlock { .. } => OpClass::BlobGetBlock,
            DownloadBlob { .. } => OpClass::BlobDownload,
            CreatePageBlob { .. } => OpClass::BlobCreatePage,
            PutPage { .. } => OpClass::BlobPutPage,
            GetPage { .. } => OpClass::BlobGetPage,
            DeleteBlob { .. } => OpClass::BlobDelete,
            ListBlobs { .. } => OpClass::BlobList,
            CreateQueue { .. } => OpClass::QueueCreate,
            DeleteQueue { .. } => OpClass::QueueDelete,
            PutMessage { .. } => OpClass::QueuePut,
            GetMessage { .. } => OpClass::QueueGet,
            PeekMessage { .. } => OpClass::QueuePeek,
            DeleteMessage { .. } => OpClass::QueueDeleteMsg,
            GetMessageCount { .. } => OpClass::QueueCount,
            ClearQueue { .. } => OpClass::QueueClear,
            CreateTable { .. } => OpClass::TableCreate,
            DeleteTable { .. } => OpClass::TableDelete,
            InsertEntity { .. } => OpClass::TableInsert,
            QueryEntity { .. } => OpClass::TableQuery,
            QueryPartition { .. } => OpClass::TableQueryPartition,
            UpdateEntity { .. } => OpClass::TableUpdate,
            ExecuteBatch { .. } => OpClass::TableBatch,
            DeleteEntity { .. } => OpClass::TableDeleteEntity,
        }
    }

    /// The partition the request targets, as a borrowed (allocation-free)
    /// view — the fabric hot path hashes this directly.
    pub fn partition_ref(&self) -> PartitionRef<'_> {
        use StorageRequest::*;
        match self {
            PutBlock {
                container, blob, ..
            }
            | PutBlockList {
                container, blob, ..
            }
            | UploadBlockBlob {
                container, blob, ..
            }
            | GetBlock {
                container, blob, ..
            }
            | DownloadBlob { container, blob }
            | CreatePageBlob {
                container, blob, ..
            }
            | PutPage {
                container, blob, ..
            }
            | GetPage {
                container, blob, ..
            }
            | DeleteBlob { container, blob } => PartitionRef::Blob { container, blob },
            PutMessage { queue, .. }
            | GetMessage { queue, .. }
            | PeekMessage { queue }
            | DeleteMessage { queue, .. }
            | GetMessageCount { queue }
            | ClearQueue { queue } => PartitionRef::Queue { queue },
            InsertEntity { table, entity } | UpdateEntity { table, entity, .. } => {
                PartitionRef::Table {
                    table,
                    partition: &entity.partition_key,
                }
            }
            QueryEntity {
                table, partition, ..
            }
            | QueryPartition { table, partition }
            | ExecuteBatch {
                table, partition, ..
            }
            | DeleteEntity {
                table, partition, ..
            } => PartitionRef::Table { table, partition },
            CreateContainer { .. }
            | ListBlobs { .. }
            | CreateQueue { .. }
            | DeleteQueue { .. }
            | CreateTable { .. }
            | DeleteTable { .. } => PartitionRef::Control,
        }
    }

    /// The partition the request targets, as an owned key (allocates; prefer
    /// [`StorageRequest::partition_ref`] on hot paths).
    pub fn partition(&self) -> PartitionKey {
        self.partition_ref().to_key()
    }

    /// Payload bytes travelling client → server (data-plane payload only;
    /// fixed per-request protocol overhead is part of the latency model).
    pub fn payload_bytes_up(&self) -> u64 {
        use StorageRequest::*;
        match self {
            PutBlock { data, .. } | UploadBlockBlob { data, .. } | PutPage { data, .. } => {
                data.len() as u64
            }
            PutMessage { data, .. } => data.len() as u64,
            PutBlockList { block_ids, .. } => block_ids.iter().map(|b| b.len() as u64 + 8).sum(),
            InsertEntity { entity, .. } | UpdateEntity { entity, .. } => entity.size(),
            ExecuteBatch { ops, .. } => ops.iter().map(|o| o.payload_bytes()).sum(),
            _ => 0,
        }
    }
}

impl StorageOk {
    /// Payload bytes travelling server → client.
    pub fn payload_bytes_down(&self) -> u64 {
        match self {
            StorageOk::Data(d) => d.len() as u64,
            StorageOk::Message(Some(m)) => m.data.len() as u64,
            StorageOk::Peeked(Some(m)) => m.data.len() as u64,
            StorageOk::Entity(Some((e, _))) => e.size(),
            StorageOk::Entities(es) => es.iter().map(|(e, _)| e.size()).sum(),
            _ => 0,
        }
    }

    /// Unwrap `Data`, panicking otherwise (test/helper convenience).
    pub fn into_data(self) -> Bytes {
        match self {
            StorageOk::Data(d) => d,
            other => panic!("expected Data, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::PropValue;

    #[test]
    fn class_partition_and_bytes_agree_for_queue_put() {
        let r = StorageRequest::PutMessage {
            queue: "q1".into(),
            data: Bytes::from(vec![0u8; 1024]),
            ttl: None,
        };
        assert_eq!(r.class(), OpClass::QueuePut);
        assert_eq!(r.partition(), PartitionKey::Queue { queue: "q1".into() });
        assert_eq!(r.payload_bytes_up(), 1024);
    }

    #[test]
    fn blob_requests_partition_on_container_plus_blob() {
        let a = StorageRequest::PutBlock {
            container: "c".into(),
            blob: "b1".into(),
            block_id: "000".into(),
            data: Bytes::from_static(b"x"),
        };
        let b = StorageRequest::DownloadBlob {
            container: "c".into(),
            blob: "b2".into(),
        };
        assert_ne!(a.partition(), b.partition());
        assert_eq!(a.payload_bytes_up(), 1);
        assert_eq!(b.payload_bytes_up(), 0);
    }

    #[test]
    fn control_plane_requests_map_to_control_partition() {
        for r in [
            StorageRequest::CreateContainer {
                container: "c".into(),
            },
            StorageRequest::CreateQueue { queue: "q".into() },
            StorageRequest::CreateTable { table: "t".into() },
        ] {
            assert_eq!(r.partition(), PartitionKey::Control);
            assert!(r.class().is_control());
        }
    }

    #[test]
    fn entity_requests_count_entity_size_up() {
        let e = Entity::new("p", "r").with("v", PropValue::Binary(Bytes::from(vec![0u8; 4096])));
        let size = e.size();
        let r = StorageRequest::InsertEntity {
            table: "t".into(),
            entity: e,
        };
        assert_eq!(r.payload_bytes_up(), size);
        assert_eq!(
            r.partition(),
            PartitionKey::Table {
                table: "t".into(),
                partition: "p".into()
            }
        );
    }

    #[test]
    fn response_bytes_down() {
        assert_eq!(
            StorageOk::Data(Bytes::from(vec![0u8; 77])).payload_bytes_down(),
            77
        );
        assert_eq!(StorageOk::Ack.payload_bytes_down(), 0);
        assert_eq!(StorageOk::Message(None).payload_bytes_down(), 0);
        assert_eq!(StorageOk::Count(12).payload_bytes_down(), 0);
    }

    #[test]
    #[should_panic(expected = "expected Data")]
    fn into_data_panics_on_wrong_variant() {
        StorageOk::Ack.into_data();
    }
}
