//! # azsim-storage — shared vocabulary for the simulated Azure storage services
//!
//! Types used by every layer of the stack: documented service [`limits`],
//! the [`error`] model (including the `ServerBusy` throttle signal that
//! drives the paper's retry-after-one-second behaviour), [`etag`]s,
//! [`entity`] and [`message`] payload types, storage [`partition`] keys
//! (which determine which simulated partition server owns an object), and
//! the [`request`]/response enums spoken between the SDK clients and the
//! cluster model.
//!
//! The three service state machines live in `azsim-blob`, `azsim-queue` and
//! `azsim-table`; the latency/throttling model lives in `azsim-fabric`.

pub mod cost;
pub mod entity;
pub mod error;
pub mod etag;
pub mod limits;
pub mod message;
pub mod partition;
pub mod request;

pub use cost::{OpClass, Service, SyncClass};
pub use entity::{Entity, PropValue};
pub use error::{StorageError, StorageResult};
pub use etag::{ETag, EtagCondition};
pub use message::QueueMessage;
pub use partition::{PartitionKey, PartitionRef};
pub use request::{StorageOk, StorageRequest, TableBatchOp};
