//! Entity tags for optimistic concurrency on table entities.

/// An opaque entity version tag. A fresh tag is issued on every insert and
/// update; conditional operations compare tags.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ETag(pub u64);

impl ETag {
    /// The first tag issued for a new entity.
    pub const INITIAL: ETag = ETag(1);

    /// The tag an update bumps to.
    pub fn next(self) -> ETag {
        ETag(self.0 + 1)
    }
}

/// Concurrency condition supplied with updates and deletes.
///
/// The paper tests only *unconditional* updates "by using the wild card
/// character `*` for ETag" — that is [`EtagCondition::Any`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EtagCondition {
    /// `If-Match: *` — apply regardless of current version.
    Any,
    /// `If-Match: <tag>` — apply only if the entity's tag matches.
    Match(ETag),
}

impl EtagCondition {
    /// Whether this condition admits an entity currently at `current`.
    pub fn admits(self, current: ETag) -> bool {
        match self {
            EtagCondition::Any => true,
            EtagCondition::Match(t) => t == current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_increments() {
        assert_eq!(ETag::INITIAL.next(), ETag(2));
        assert_eq!(ETag(41).next(), ETag(42));
    }

    #[test]
    fn wildcard_admits_everything() {
        assert!(EtagCondition::Any.admits(ETag(1)));
        assert!(EtagCondition::Any.admits(ETag(999)));
    }

    #[test]
    fn match_admits_only_equal() {
        assert!(EtagCondition::Match(ETag(5)).admits(ETag(5)));
        assert!(!EtagCondition::Match(ETag(5)).admits(ETag(6)));
    }
}
