//! Microbenchmarks of the simulation kernel: how expensive is simulating?

use azsim_core::heap::EventKey;
use azsim_core::resource::{FifoServer, Pipe, TokenBucket};
use azsim_core::runtime::{ActorId, Model};
use azsim_core::{
    EventHeap, ShardPlan, ShardedSimulation, SimTime, Simulation, ThreadedSimulation,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_event_heap(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/event_heap");
    for n in [1_000usize, 100_000] {
        g.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut h = EventHeap::new();
                for i in 0..n {
                    h.push(
                        EventKey {
                            time: SimTime((i as u64 * 2_654_435_761) % 1_000_000),
                            actor: ActorId(i % 64),
                            seq: i as u64,
                        },
                        i,
                    );
                }
                let mut acc = 0usize;
                while let Some((_, v)) = h.pop() {
                    acc = acc.wrapping_add(v);
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_resources(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/resources");
    g.bench_function("fifo_admit", |b| {
        let mut s = FifoServer::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 100;
            black_box(s.admit(SimTime(t), Duration::from_nanos(250)))
        })
    });
    g.bench_function("pipe_transfer_1mb", |b| {
        let mut p = Pipe::new(1e9);
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000_000;
            black_box(p.transfer(SimTime(t), 1 << 20))
        })
    });
    g.bench_function("token_bucket_acquire", |b| {
        let mut tb = TokenBucket::new(1e6, 1e6);
        let mut t = 0u64;
        b.iter(|| {
            t += 10_000;
            black_box(tb.acquire(SimTime(t), 1.0))
        })
    });
    g.finish();
}

/// A trivial model so the measured cost is the runtime itself (channel
/// hops, heap events, context switches) — the per-op overhead every
/// simulated storage call pays.
struct NullModel;
impl Model for NullModel {
    type Req = u64;
    type Resp = u64;
    fn handle(&mut self, now: SimTime, _actor: ActorId, req: u64) -> (SimTime, u64) {
        (now + Duration::from_micros(1), req)
    }
}
impl azsim_core::ShardableModel for NullModel {
    fn split(self, partitions: u32) -> Vec<Self> {
        (0..partitions).map(|_| NullModel).collect()
    }
    fn merge(_parts: Vec<Self>) -> Self {
        NullModel
    }
}

fn bench_virtual_runtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/virtual_runtime");
    g.sample_size(10);
    for workers in [1usize, 8, 32] {
        g.bench_with_input(
            BenchmarkId::new("roundtrips_1k_per_worker", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let sim = Simulation::new(NullModel, 1);
                    let report = sim.run_workers(workers, |ctx| async move {
                        let mut acc = 0u64;
                        for i in 0..1_000u64 {
                            acc = acc.wrapping_add(ctx.call(i).await);
                        }
                        acc
                    });
                    black_box(report.requests)
                })
            },
        );
    }
    g.finish();
}

/// Engine throughput under lockstep timers: every actor's timer fires at
/// the same virtual instant, so each scheduling round batch-wakes the whole
/// fleet. This is the hot path of the barrier-heavy benchmarks — per-round
/// cost should stay flat in ops/sec terms as the fleet grows.
fn bench_batch_wake(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/batch_wake");
    g.sample_size(10);
    for workers in [8usize, 64] {
        g.bench_with_input(
            BenchmarkId::new("lockstep_timers_1k", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let sim = Simulation::new(NullModel, 1);
                    let report = sim.run_workers(workers, |ctx| async move {
                        for _ in 0..1_000 {
                            ctx.sleep(Duration::from_micros(100)).await;
                        }
                    });
                    black_box(report.end_time)
                })
            },
        );
    }
    g.finish();
}

/// Handoff cost across executors: the same program (back-to-back model
/// calls, each one a virtual-time handoff) on the coroutine executor vs
/// the retained thread-backed reference executor. A coroutine handoff is a
/// poll (function call); a threaded handoff is a mutex/condvar park-unpark
/// round trip — this group keeps that gap visible in CI.
fn bench_handoff_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/handoff");
    g.sample_size(10);
    for workers in [8usize, 128] {
        g.bench_with_input(
            BenchmarkId::new("coroutine", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let sim = Simulation::new(NullModel, 1);
                    let report = sim.run_workers(workers, |ctx| async move {
                        for i in 0..200u64 {
                            black_box(ctx.call(i).await);
                        }
                    });
                    black_box(report.requests)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("threaded", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let sim = ThreadedSimulation::new(NullModel, 1);
                    let report = sim.run_workers(workers, |ctx| {
                        for i in 0..200u64 {
                            black_box(ctx.call(i));
                        }
                    });
                    black_box(report.requests)
                })
            },
        );
    }
    g.finish();
}

/// The engine ladder across executors: the serial coroutine executor vs the
/// sharded executor (striped one-partition-per-actor plan, free-running
/// shards) at 1, 2 and 4 shards. On a multi-core box the sharded rungs
/// should pull ahead of serial from a few hundred actors up — this is the
/// scaling-cliff group; `figures bench` records the same ladder to
/// `BENCH_engine.json` with per-shard event counts.
fn bench_sharded_ladder(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/sharded_ladder");
    g.sample_size(10);
    // Per-actor call counts shrink as the rung grows so every rung stays
    // near a constant total-op budget (the 10 000-actor rung is the dense
    // per-shard-arena territory where cache locality, not algorithmic
    // overhead, sets the rate).
    for (actors, per_actor) in [(32usize, 1_000u64), (512, 1_000), (10_000, 64)] {
        let body = move |ctx: azsim_core::ActorCtx<NullModel>| async move {
            let mut acc = 0u64;
            for i in 0..per_actor {
                acc = acc.wrapping_add(ctx.call(i).await);
            }
            acc
        };
        g.bench_with_input(BenchmarkId::new("serial", actors), &actors, |b, &actors| {
            b.iter(|| {
                let report = Simulation::new(NullModel, 1).run_workers(actors, body);
                black_box(report.requests)
            })
        });
        for shards in [2u32, 4] {
            g.bench_with_input(
                BenchmarkId::new(format!("shards_{shards}"), actors),
                &actors,
                |b, &actors| {
                    b.iter(|| {
                        let plan = ShardPlan::striped(actors, actors as u32, shards);
                        let report = ShardedSimulation::new(NullModel, 1, plan).run_workers(body);
                        black_box(report.requests)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_event_heap,
    bench_resources,
    bench_virtual_runtime,
    bench_batch_wake,
    bench_handoff_cost,
    bench_sharded_ladder
);
criterion_main!(benches);
