//! Ablations of the cluster-model design choices called out in DESIGN.md:
//! each bench measures the *virtual* outcome difference (printed once) and
//! the host cost of the ablated run.

use azsim_client::VirtualEnv;
use azsim_client::{QueueClient, TableClient};
use azsim_core::Simulation;
use azsim_fabric::{Cluster, ClusterParams};
use azsim_storage::{Entity, PropValue};
use azurebench::alg3_queue::{run_alg3, QueueOp};
use azurebench::BenchConfig;
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Once;

static PRINT_ONCE: Once = Once::new();

fn cfg_with(params: ClusterParams) -> BenchConfig {
    let mut c = BenchConfig::paper().with_scale(0.01).with_workers(vec![2]);
    c.params = params;
    c
}

/// Ablation 1: the 16 KB GetMessage quirk on/off (Figure 6c anomaly).
fn ablate_get16k(c: &mut Criterion) {
    PRINT_ONCE.call_once(|| {
        let on = run_alg3(&cfg_with(ClusterParams::default()), 2);
        let off = run_alg3(
            &cfg_with(ClusterParams {
                quirk_get16k: false,
                ..ClusterParams::default()
            }),
            2,
        );
        eprintln!(
            "# ablation get16k: 16KB Get per-op {:.2} ms (on) vs {:.2} ms (off)",
            on[&(16 << 10, QueueOp::Get)].1 * 1e3,
            off[&(16 << 10, QueueOp::Get)].1 * 1e3
        );
    });
    let mut g = c.benchmark_group("ablations/get16k");
    g.sample_size(10);
    for (name, quirk) in [("on", true), ("off", false)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &quirk, |b, &quirk| {
            let cfg = cfg_with(ClusterParams {
                quirk_get16k: quirk,
                ..ClusterParams::default()
            });
            b.iter(|| black_box(run_alg3(&cfg, 2)))
        });
    }
    g.finish();
}

/// Ablation 2: 3-replica strong consistency vs a single replica. With one
/// replica the paper's Peek < Put < Get cost ordering collapses.
fn ablate_replication(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations/replication");
    g.sample_size(10);
    for (name, params) in [
        ("three_replicas", ClusterParams::default()),
        ("single_replica", ClusterParams::single_replica()),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &params, |b, params| {
            let cfg = cfg_with(params.clone());
            b.iter(|| {
                let r = run_alg3(&cfg, 2);
                let size = 32 << 10;
                let (peek, put, get) = (
                    r[&(size, QueueOp::Peek)].1,
                    r[&(size, QueueOp::Put)].1,
                    r[&(size, QueueOp::Get)].1,
                );
                black_box((peek, put, get))
            })
        });
    }
    g.finish();
}

/// Ablation 3: one shared queue vs one queue per worker — the paper's
/// headline recommendation. Measures virtual completion time of draining
/// the same total load both ways.
fn ablate_single_vs_multi_queue(c: &mut Criterion) {
    let run = |shared: bool| {
        let sim = Simulation::new(Cluster::with_defaults(), 3);
        let workers = 8usize;
        let per = 25usize;
        let report = sim.run_workers(workers, move |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let name = if shared {
                "only".to_owned()
            } else {
                format!("q{}", ctx.id().0)
            };
            let q = QueueClient::new(&env, name);
            q.create().await.unwrap();
            for i in 0..per {
                q.put_message(Bytes::from(vec![i as u8; 1024]))
                    .await
                    .unwrap();
            }
            while let Some(m) = q.get_message().await.unwrap() {
                q.delete_message(&m).await.unwrap();
            }
        });
        report.end_time
    };
    PRINT_ONCE.call_once(|| {});
    eprintln!(
        "# ablation queues: shared completes at {}, separate at {}",
        run(true),
        run(false)
    );
    let mut g = c.benchmark_group("ablations/queue_topology");
    g.sample_size(10);
    for (name, shared) in [("single_shared", true), ("per_worker", false)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &shared, |b, &shared| {
            b.iter(|| black_box(run(shared)))
        });
    }
    g.finish();
}

/// Ablation 4: all entities in ONE table partition vs per-worker
/// partitions — the 500 entities/s wall (plus retry storms) vs clean
/// scaling.
fn ablate_partitioning(c: &mut Criterion) {
    let run = |hot: bool| {
        let params = ClusterParams {
            throttle_burst: 10.0,
            account_tx_rate: 1e9,
            ..ClusterParams::default()
        };
        let sim = Simulation::new(Cluster::new(params), 4);
        let workers = 16usize;
        let per = 20usize;
        let report = sim.run_workers(workers, move |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let t = TableClient::new(&env, "abl");
            t.create_table().await.unwrap();
            let pk = if hot {
                "hot".to_owned()
            } else {
                format!("p{}", ctx.id().0)
            };
            for i in 0..per {
                t.insert(
                    Entity::new(&pk, format!("{}-{i}", ctx.id().0))
                        .with("v", PropValue::I64(i as i64)),
                )
                .await
                .unwrap();
            }
        });
        (report.end_time, report.model.metrics().total_throttled())
    };
    let (hot_t, hot_throttled) = run(true);
    let (cold_t, cold_throttled) = run(false);
    eprintln!(
        "# ablation partitioning: hot partition {} ({} throttles) vs per-worker {} ({} throttles)",
        hot_t, hot_throttled, cold_t, cold_throttled
    );
    let mut g = c.benchmark_group("ablations/partitioning");
    g.sample_size(10);
    for (name, hot) in [
        ("one_hot_partition", true),
        ("per_worker_partitions", false),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &hot, |b, &hot| {
            b.iter(|| black_box(run(hot)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablate_get16k,
    ablate_replication,
    ablate_single_vs_multi_queue,
    ablate_partitioning
);
criterion_main!(benches);
