//! Benchmarks of the beyond-the-paper extensions: YCSB workloads, the
//! MapReduce runtime, the caching service, and the chaos (fault
//! injection) scenario.

use azsim_cache::{CacheClient, CacheCluster};
use azsim_client::VirtualEnv;
use azsim_core::runtime::{actor, ActorCtx, ActorFn};
use azsim_core::{SimTime, Simulation};
use azsim_fabric::Cluster;
use azsim_framework::{MapReduce, MapReduceJob};
use azurebench::chaos;
use azurebench::ycsb::{run_ycsb, YcsbConfig, YcsbWorkload};
use azurebench::BenchConfig;
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_ycsb(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions/ycsb");
    g.sample_size(10);
    let bench = BenchConfig::paper();
    let ycsb = YcsbConfig {
        records: 200,
        ops_per_worker: 100,
        value_size: 1 << 10,
        ..YcsbConfig::default()
    };
    for wl in [YcsbWorkload::A, YcsbWorkload::C, YcsbWorkload::F] {
        g.bench_with_input(BenchmarkId::from_parameter(wl.label()), &wl, |b, &wl| {
            b.iter(|| black_box(run_ycsb(&bench, &ycsb, wl, 4)))
        });
    }
    g.finish();
}

struct WordCount;
impl MapReduceJob for WordCount {
    type MapIn = String;
    type Key = String;
    type Value = u64;
    type Out = (String, u64);
    fn map(&self, input: &String) -> Vec<(String, u64)> {
        input
            .split_whitespace()
            .map(|w| (w.to_owned(), 1))
            .collect()
    }
    fn reduce(&self, key: &String, values: Vec<u64>) -> (String, u64) {
        (key.clone(), values.into_iter().sum())
    }
}

fn bench_mapreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions/mapreduce");
    g.sample_size(10);
    g.bench_function("wordcount_8maps_3workers", |b| {
        b.iter(|| {
            let sim = Simulation::new(Cluster::with_defaults(), 5);
            let docs: Vec<String> = (0..8)
                .map(|i| format!("alpha beta gamma delta doc{i} alpha beta"))
                .collect();
            let mut actors: Vec<ActorFn<'_, Cluster, usize>> = Vec::new();
            let driver_docs = docs.clone();
            actors.push(actor(move |ctx: ActorCtx<Cluster>| async move {
                let env = VirtualEnv::new(&ctx);
                let mr = MapReduce::new(&env, "wc", WordCount, 2);
                mr.init().await.unwrap();
                mr.run_driver(driver_docs).await.unwrap().len()
            }));
            for _ in 0..3 {
                actors.push(actor(|ctx: ActorCtx<Cluster>| async move {
                    let env = VirtualEnv::new(&ctx);
                    let mr = MapReduce::new(&env, "wc", WordCount, 2);
                    mr.init().await.unwrap();
                    mr.run_worker(4, Duration::from_secs(1)).await.unwrap();
                    0
                }));
            }
            black_box(sim.run(actors).results[0])
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions/cache");
    g.bench_function("raw_put_get", |b| {
        let cache = CacheCluster::new(8, 1 << 24);
        let payload = Bytes::from(vec![7u8; 1024]);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = format!("k{}", i % 1000);
            let mut c = cache.lock();
            c.put(SimTime(i), &key, payload.clone(), None);
            black_box(c.get(SimTime(i), &key))
        })
    });
    g.sample_size(10);
    g.bench_function("cache_aside_vs_table_in_sim", |b| {
        b.iter(|| {
            let sim = Simulation::new(Cluster::with_defaults(), 6);
            let shared = CacheCluster::new(4, 1 << 20);
            let report = sim.run_workers(4, move |ctx| {
                let shared = Arc::clone(&shared);
                async move {
                    let env = VirtualEnv::new(&ctx);
                    let cache = CacheClient::new(&env, shared);
                    let mut hits = 0;
                    for i in 0..50 {
                        let key = format!("k{}", i % 10);
                        if cache.get(&key).await.is_some() {
                            hits += 1;
                        } else {
                            cache.put(&key, Bytes::from(vec![0u8; 256]), None).await;
                        }
                    }
                    hits
                }
            });
            black_box(report.results)
        })
    });
    g.finish();
}

fn bench_chaos(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions/chaos");
    g.sample_size(10);
    let cfg = BenchConfig::paper().with_scale(0.02);
    for intensity in [0.0, 0.5, 1.0] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("intensity-{intensity}")),
            &intensity,
            |b, &intensity| {
                b.iter(|| {
                    let r = black_box(chaos::run_chaos(&cfg, 4, intensity));
                    assert_eq!(r.lost, 0, "chaos bench must not lose tasks");
                    r
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_ycsb,
    bench_mapreduce,
    bench_cache,
    bench_chaos
);
criterion_main!(benches);
