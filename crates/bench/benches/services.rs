//! Microbenchmarks of the three storage-service state machines in
//! isolation (no cluster, no runtime): raw semantic-layer throughput.

use azsim_blob::BlobStore;
use azsim_core::SimTime;
use azsim_queue::QueueStore;
use azsim_storage::{Entity, EtagCondition, PropValue};
use azsim_table::TableStore;
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

fn bench_queue_service(c: &mut Criterion) {
    let mut g = c.benchmark_group("services/queue");
    for &size in &[4usize << 10, 48 << 10] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("put", size), &size, |b, &size| {
            let mut s = QueueStore::new(1, 0.0);
            s.create_queue("q").unwrap();
            let payload = Bytes::from(vec![7u8; size]);
            let mut t = 0u64;
            b.iter(|| {
                t += 1_000_000;
                black_box(s.put(SimTime(t), "q", payload.clone(), None).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_queue_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("services/queue_roundtrip");
    g.bench_function("put_get_delete_4k", |b| {
        let mut s = QueueStore::new(1, 0.0);
        s.create_queue("q").unwrap();
        let payload = Bytes::from(vec![7u8; 4096]);
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000_000;
            let now = SimTime(t);
            s.put(now, "q", payload.clone(), None).unwrap();
            let m = s.get(now, "q", Duration::from_secs(60)).unwrap().unwrap();
            s.delete_message("q", m.id, m.pop_receipt).unwrap();
            black_box(m.dequeue_count)
        })
    });
    g.bench_function("peek_hot_queue", |b| {
        let mut s = QueueStore::new(1, 0.0);
        s.create_queue("q").unwrap();
        for i in 0..1_000u32 {
            s.put(SimTime(i as u64), "q", Bytes::from(vec![0u8; 64]), None)
                .unwrap();
        }
        b.iter(|| black_box(s.peek(SimTime(1_000_000), "q").unwrap()))
    });
    g.finish();
}

fn bench_table_service(c: &mut Criterion) {
    let mut g = c.benchmark_group("services/table");
    g.bench_function("insert_query_update_delete_4k", |b| {
        let mut s = TableStore::new();
        s.create_table("t").unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let rk = i.to_string();
            let e =
                Entity::new("p", &rk).with("v", PropValue::Binary(Bytes::from(vec![0u8; 4096])));
            s.insert("t", e.clone()).unwrap();
            black_box(s.query("t", "p", &rk).unwrap());
            s.update("t", e, EtagCondition::Any).unwrap();
            s.delete("t", "p", &rk, EtagCondition::Any).unwrap();
        })
    });
    g.bench_function("partition_scan_1k_rows", |b| {
        let mut s = TableStore::new();
        s.create_table("t").unwrap();
        for i in 0..1_000 {
            s.insert(
                "t",
                Entity::new("p", format!("{i:06}")).with("v", PropValue::I64(i)),
            )
            .unwrap();
        }
        b.iter(|| black_box(s.query_partition("t", "p").unwrap().len()))
    });
    g.finish();
}

fn bench_blob_service(c: &mut Criterion) {
    let mut g = c.benchmark_group("services/blob");
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("put_block_1mb", |b| {
        let mut s = BlobStore::new();
        s.create_container("c").unwrap();
        let data = Bytes::from(vec![1u8; 1 << 20]);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            s.put_block("c", "b", (i % 1000).to_string(), data.clone())
                .unwrap();
        })
    });
    g.bench_function("page_write_read_1mb", |b| {
        let mut s = BlobStore::new();
        s.create_container("c").unwrap();
        s.create_page_blob("c", "p", 64 << 20).unwrap();
        let data = Bytes::from(vec![2u8; 1 << 20]);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let off = (i % 64) * (1 << 20);
            s.put_page("c", "p", off, data.clone()).unwrap();
            black_box(s.get_page("c", "p", off, 1 << 20).unwrap().len())
        })
    });
    g.bench_function("commit_and_download_16mb", |b| {
        let mut s = BlobStore::new();
        s.create_container("c").unwrap();
        let data = Bytes::from(vec![3u8; 1 << 20]);
        let ids: Vec<String> = (0..16).map(|i| i.to_string()).collect();
        for id in &ids {
            s.put_block("c", "big", id.clone(), data.clone()).unwrap();
        }
        s.put_block_list("c", "big", &ids).unwrap();
        b.iter(|| black_box(s.download("c", "big").unwrap().len()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_queue_service,
    bench_queue_roundtrip,
    bench_table_service,
    bench_blob_service
);
criterion_main!(benches);
