//! One Criterion benchmark per paper table/figure, at reduced scale.
//!
//! These measure the *cost of regenerating* each artifact (and keep every
//! figure path exercised under `cargo bench`); the full-scale figure data
//! reported in `EXPERIMENTS.md` comes from the `figures` binary.

use azsim_client::VirtualEnv;
use azsim_core::Simulation;
use azsim_fabric::Cluster;
use azsim_framework::QueueBarrier;
use azurebench::{alg1_blob, alg3_queue, alg4_queue, alg5_table, fig9, BenchConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn cfg() -> BenchConfig {
    BenchConfig::paper().with_scale(0.01).with_workers(vec![2])
}

fn bench_table1_vm_catalog(c: &mut Criterion) {
    c.bench_function("figures/table1_vm_catalog", |b| {
        b.iter(|| black_box(azsim_compute::vm::render_table1()))
    });
}

fn bench_fig4_fig5_blob(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    // Figures 4 and 5 come from the same Algorithm 1 sweep.
    g.bench_function("fig4_fig5_blob_alg1", |b| {
        let cfg = cfg();
        b.iter(|| black_box(alg1_blob::run_alg1(&cfg, 2)))
    });
    g.finish();
}

fn bench_fig6_queue_separate(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig6_queue_separate_alg3", |b| {
        let cfg = cfg();
        b.iter(|| black_box(alg3_queue::run_alg3(&cfg, 2)))
    });
    g.finish();
}

fn bench_fig7_queue_shared(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig7_queue_shared_alg4", |b| {
        let cfg = cfg();
        b.iter(|| black_box(alg4_queue::run_alg4(&cfg, 2)))
    });
    g.finish();
}

fn bench_fig8_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig8_table_alg5", |b| {
        let cfg = cfg();
        b.iter(|| black_box(alg5_table::run_alg5(&cfg, 2)))
    });
    g.finish();
}

fn bench_fig9_per_op(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig9_per_op", |b| {
        let cfg = cfg();
        b.iter(|| black_box(fig9::figure_9(&cfg)))
    });
    g.finish();
}

fn bench_alg2_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    // Algorithm 2 is a mechanism, not a figure; measure a full 8-worker,
    // 3-phase synchronization cycle.
    g.bench_function("alg2_barrier_8x3", |b| {
        b.iter(|| {
            let sim = Simulation::new(Cluster::with_defaults(), 2);
            let report = sim.run_workers(8, |ctx| async move {
                let env = VirtualEnv::new(&ctx);
                let mut bar =
                    QueueBarrier::new(&env, "b", 8).with_poll_interval(Duration::from_millis(200));
                bar.init().await.unwrap();
                for _ in 0..3 {
                    bar.wait().await.unwrap();
                }
            });
            black_box(report.end_time)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1_vm_catalog,
    bench_fig4_fig5_blob,
    bench_fig6_queue_separate,
    bench_fig7_queue_shared,
    bench_fig8_table,
    bench_fig9_per_op,
    bench_alg2_barrier
);
criterion_main!(benches);
