//! # azurebench-benches — Criterion benchmarks for the AzureBench suite
//!
//! Four harnesses (see `benches/`):
//!
//! * `figures` — one benchmark per paper table/figure, at reduced scale so
//!   `cargo bench` terminates quickly. The *full-scale* numbers reported in
//!   `EXPERIMENTS.md` come from the `figures` binary
//!   (`cargo run --release -p azurebench --bin figures -- all`), not from
//!   Criterion.
//! * `kernel` — microbenchmarks of the simulation kernel (event heap,
//!   queueing resources, virtual-time round-trip cost).
//! * `services` — microbenchmarks of the three storage-service state
//!   machines in isolation.
//! * `ablations` — the design-choice ablations called out in DESIGN.md
//!   (16 KB quirk, replication factor, shared vs separate queues, table
//!   partitioning).

/// Shared helper: a small scaled-down benchmark configuration.
pub fn bench_config() -> azurebench::BenchConfig {
    azurebench::BenchConfig::paper()
        .with_scale(0.01)
        .with_workers(vec![2])
}
