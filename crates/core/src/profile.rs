//! `figures profile`: flame-style attribution of where virtual time goes.
//!
//! Runs the mixed blob/queue/table workload over a worker ladder with
//! phase profiling enabled (streaming aggregation — no records retained),
//! folds client-side retry waits in as `retry_backoff` spans, and merges
//! the per-point aggregates into one per-class, per-phase breakdown. The
//! result exports as a rendered table, deterministic JSON
//! (`results/profile.json`) and Prometheus text format, so the next
//! performance PR can see *which stage* — queue wait, service, replica
//! sync, transfer — produces each latency knee.
//!
//! The workload deliberately includes a queue shared by every worker: at
//! the top of the ladder its 500 msg/s bucket throttles, which exercises
//! the retry path and populates the `retry_backoff` phase.

use crate::config::BenchConfig;
use crate::payload::PayloadGen;
use crate::sweep::sweep_points;
use azsim_client::{
    BlobClient, Environment, QueueClient, ResilientPolicy, RetrySpan, TableClient, VirtualEnv,
};
use azsim_core::Simulation;
use azsim_fabric::metrics::{phase_snapshots, ClassPhaseSnapshot};
use azsim_fabric::{MetricsSnapshot, Phase, PhaseAggregate};
use azsim_storage::{Entity, PropValue};
use serde::Serialize;
use std::rc::Rc;

/// Schema identifier written into every profile JSON export.
pub const PROFILE_SCHEMA: &str = "azurebench-profile/v1";

/// One ladder point of the profile run.
pub struct ProfilePoint {
    /// Worker count at this point.
    pub workers: usize,
    /// Requests the runtime processed.
    pub requests: u64,
    /// Virtual end time of the point, seconds.
    pub end_time_s: f64,
    /// Client-side retry waits recorded at this point.
    pub retries: u64,
    /// The cluster's exported metrics (includes this point's phase stats).
    pub snapshot: MetricsSnapshot,
    aggregate: PhaseAggregate,
}

/// The full profile: every ladder point plus the cross-ladder merge.
pub struct ProfileReport {
    /// Workload scale factor the run used.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Mixed-workload iterations per worker.
    pub ops_per_worker: usize,
    /// Ladder points, in input order.
    pub points: Vec<ProfilePoint>,
    merged: PhaseAggregate,
}

#[derive(Serialize)]
struct ProfileConfigDoc {
    scale: f64,
    seed: u64,
    ops_per_worker: u64,
    ladder: Vec<u64>,
}

#[derive(Serialize)]
struct ProfilePointDoc {
    workers: u64,
    requests: u64,
    end_time_s: f64,
    retries: u64,
    snapshot: MetricsSnapshot,
}

#[derive(Serialize)]
struct ReconciliationDoc {
    phase_sum_s: f64,
    end_to_end_sum_s: f64,
    relative_gap: f64,
}

#[derive(Serialize)]
struct ProfileDoc {
    schema: String,
    config: ProfileConfigDoc,
    points: Vec<ProfilePointDoc>,
    merged_phases: Vec<ClassPhaseSnapshot>,
    reconciliation: ReconciliationDoc,
}

/// Run one ladder point: `workers` role instances driving the mixed
/// workload through a span-logging [`ResilientPolicy`].
fn run_point(cfg: &BenchConfig, workers: usize, ops_per_worker: usize) -> ProfilePoint {
    let seed = cfg.seed;
    let mut cluster = crate::exec::build_cluster(cfg);
    cluster.enable_phase_profiling();
    let sim = Simulation::new(cluster, seed);
    let report = sim.run_workers(workers, move |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        let me = env.instance();
        let policy = Rc::new(ResilientPolicy::new(seed ^ me as u64).with_span_log());
        let shared = QueueClient::new(&env, "profile-shared").with_policy(policy.clone());
        shared.create().await.unwrap();
        let own = QueueClient::new(&env, format!("profile-{me}")).with_policy(policy.clone());
        own.create().await.unwrap();
        let blobs = BlobClient::new(&env, "profile").with_policy(policy.clone());
        blobs.create_container().await.unwrap();
        let table = TableClient::new(&env, "profile").with_policy(policy.clone());
        table.create_table().await.unwrap();
        let mut gen = PayloadGen::new(seed, me as u64);

        for i in 0..ops_per_worker {
            // The shared queue contends across all workers (throttles and
            // retries at the top of the ladder); errors after retry
            // exhaustion are tolerated — they still show up in the trace.
            let _ = shared.put_message(gen.bytes(32 << 10)).await;
            if let Ok(Some(m)) = shared.get_message().await {
                let _ = shared.delete_message(&m).await;
            }
            let _ = own.put_message(gen.bytes(8 << 10)).await;
            let _ = own.get_message().await;
            let _ = blobs
                .upload(&format!("b-{me}-{i}"), gen.bytes(64 << 10))
                .await;
            let _ = blobs.download(&format!("b-{me}-{i}")).await;
            let _ = table
                .insert(
                    Entity::new(format!("p{me}"), i.to_string())
                        .with("v", PropValue::Binary(gen.bytes(4 << 10))),
                )
                .await;
            let _ = table.query(&format!("p{me}"), &i.to_string()).await;
            let _ = table
                .update(
                    Entity::new(format!("p{me}"), i.to_string())
                        .with("v", PropValue::Binary(gen.bytes(2 << 10))),
                )
                .await;
        }
        policy.take_retry_spans()
    });

    let mut model = report.model;
    let spans: Vec<RetrySpan> = report.results.into_iter().flatten().collect();
    let retries = spans.len() as u64;
    // Retry waits are client-side; fold them into the aggregate as the
    // retry_backoff phase (worker order is deterministic).
    if let Some(agg) = model.tracer_mut().and_then(|t| t.phase_stats_mut()) {
        for s in &spans {
            agg.record_retry(s.class, s.wait);
        }
    }
    let aggregate = model
        .tracer()
        .and_then(|t| t.phase_stats())
        .cloned()
        .unwrap_or_default();
    ProfilePoint {
        workers,
        requests: report.requests,
        end_time_s: report.end_time.as_secs_f64(),
        retries,
        snapshot: model.snapshot(),
        aggregate,
    }
}

/// Profile the mixed workload over `ladder` worker counts. Points run on
/// the sweep engine (`cfg.sweep_threads`); the merge happens in ladder
/// order, so the result is byte-identical for any thread count.
pub fn run_profile(cfg: &BenchConfig, ladder: &[usize], ops_per_worker: usize) -> ProfileReport {
    let points = sweep_points(ladder, cfg.sweep_threads, |&w| {
        run_point(cfg, w, ops_per_worker)
    });
    let mut merged = PhaseAggregate::new();
    for p in &points {
        merged.merge(&p.aggregate);
    }
    ProfileReport {
        scale: cfg.scale,
        seed: cfg.seed,
        ops_per_worker,
        points,
        merged,
    }
}

impl ProfileReport {
    /// The cross-ladder per-class, per-phase aggregate.
    pub fn merged(&self) -> &PhaseAggregate {
        &self.merged
    }

    /// `(sum of server-side phase sums, sum of end-to-end sums)` across all
    /// classes, in seconds. Breadcrumbs partition each record's latency
    /// exactly, so the two differ only by float accumulation error.
    pub fn reconciliation(&self) -> (f64, f64) {
        let mut phase_sum = 0.0;
        let mut e2e_sum = 0.0;
        for (_, stats) in self.merged.iter() {
            phase_sum += stats.phase_sum();
            e2e_sum += stats.end_to_end().sum();
        }
        (phase_sum, e2e_sum)
    }

    /// Render the per-phase breakdown table: one block per class with the
    /// end-to-end distribution first, then each phase with its share of
    /// the class's total time.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<24} | {:<14} | {:>7} | {:>9} | {:>9} | {:>9} | {:>9} | {:>7}\n",
            "op", "phase", "count", "mean ms", "p50 ms", "p95 ms", "p99 ms", "share %"
        );
        for (class, stats) in self.merged.iter() {
            let e2e = stats.end_to_end();
            let e2e_sum = e2e.sum();
            let mut row = |label: &str, h: &azsim_core::stats::Histogram, share: f64| {
                out.push_str(&format!(
                    "{:<24} | {:<14} | {:>7} | {:>9.3} | {:>9.3} | {:>9.3} | {:>9.3} | {:>7.1}\n",
                    class.label(),
                    label,
                    h.count(),
                    h.mean() * 1e3,
                    h.quantile(0.50) * 1e3,
                    h.quantile(0.95) * 1e3,
                    h.quantile(0.99) * 1e3,
                    share,
                ));
            };
            row("end_to_end", e2e, 100.0);
            for p in Phase::ALL {
                let h = stats.phase(p);
                if h.count() > 0 {
                    let share = if e2e_sum > 0.0 {
                        h.sum() / e2e_sum * 100.0
                    } else {
                        0.0
                    };
                    row(p.label(), h, share);
                }
            }
        }
        let (phase_sum, e2e_sum) = self.reconciliation();
        if e2e_sum > 0.0 {
            out.push_str(&format!(
                "(phase sums cover {:.4}% of {:.3}s total end-to-end time; \
                 retry_backoff is client-side and excluded)\n",
                phase_sum / e2e_sum * 100.0,
                e2e_sum
            ));
        }
        out
    }

    fn doc(&self) -> ProfileDoc {
        let (phase_sum, e2e_sum) = self.reconciliation();
        ProfileDoc {
            schema: PROFILE_SCHEMA.to_string(),
            config: ProfileConfigDoc {
                scale: self.scale,
                seed: self.seed,
                ops_per_worker: self.ops_per_worker as u64,
                ladder: self.points.iter().map(|p| p.workers as u64).collect(),
            },
            points: self
                .points
                .iter()
                .map(|p| ProfilePointDoc {
                    workers: p.workers as u64,
                    requests: p.requests,
                    end_time_s: p.end_time_s,
                    retries: p.retries,
                    snapshot: p.snapshot.clone(),
                })
                .collect(),
            merged_phases: phase_snapshots(&self.merged),
            reconciliation: ReconciliationDoc {
                phase_sum_s: phase_sum,
                end_to_end_sum_s: e2e_sum,
                relative_gap: if e2e_sum > 0.0 {
                    (e2e_sum - phase_sum).abs() / e2e_sum
                } else {
                    0.0
                },
            },
        }
    }

    /// Serialize the whole profile to JSON. Deterministic: fixed field
    /// order, shortest-roundtrip floats, merge in ladder order — the same
    /// config and seed give byte-identical output at any `--threads`.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.doc()).expect("profile serialization is infallible")
    }

    /// Prometheus text exposition of the top ladder point (the most loaded
    /// cluster: counters, fault tallies, partition heat and its phase
    /// summaries).
    pub fn to_prometheus(&self) -> String {
        self.points
            .last()
            .map(|p| p.snapshot.to_prometheus())
            .unwrap_or_default()
    }

    /// OTLP-shaped JSON of the same top-ladder-point snapshot the
    /// Prometheus export renders — one `MetricsSnapshot`, three wire
    /// formats. Run provenance (scale, seed, worker count) rides as
    /// resource attributes.
    pub fn to_otlp(&self) -> String {
        self.points
            .last()
            .map(|p| {
                p.snapshot.to_otlp_json(&[
                    ("azurebench.scale", &format!("{:?}", self.scale)),
                    ("azurebench.seed", &self.seed.to_string()),
                    ("azurebench.workers", &p.workers.to_string()),
                ])
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azsim_fabric::TraceOutcome;

    fn small_profile() -> ProfileReport {
        let cfg = BenchConfig::paper().with_scale(0.05).with_sweep_threads(1);
        run_profile(&cfg, &[1, 4], 10)
    }

    #[test]
    fn phases_reconcile_with_end_to_end() {
        let r = small_profile();
        let (phase_sum, e2e_sum) = r.reconciliation();
        assert!(e2e_sum > 0.0);
        // Exact partition up to float accumulation.
        assert!(
            (phase_sum - e2e_sum).abs() <= 1e-9 * e2e_sum.max(1.0),
            "phase sum {phase_sum} vs end-to-end {e2e_sum}"
        );
    }

    #[test]
    fn covers_all_services_and_orders_quantiles() {
        let r = small_profile();
        for class in [
            azsim_storage::OpClass::QueuePut,
            azsim_storage::OpClass::BlobUploadSingle,
            azsim_storage::OpClass::TableInsert,
        ] {
            let stats = r.merged().class(class).expect("class covered");
            let e2e = stats.end_to_end();
            assert!(e2e.count() > 0);
            assert!(e2e.quantile(0.5) <= e2e.quantile(0.95));
            assert!(e2e.quantile(0.95) <= e2e.quantile(0.99));
            assert!(stats.outcome_count(TraceOutcome::Ok) > 0);
        }
    }

    #[test]
    fn otlp_export_matches_schema_and_shares_the_snapshot() {
        let r = small_profile();
        let otlp = r.to_otlp();
        let doc = serde::value::parse(otlp.as_bytes()).expect("OTLP export parses");
        let errors = crate::schema::validate_against_file(
            &doc,
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../schemas/otlp_metrics.schema.json"
            ),
        );
        assert!(errors.is_empty(), "{errors:?}");
        // Same top-ladder snapshot feeds Prometheus and OTLP: the total
        // completed count appears in both.
        let completed = r.points.last().unwrap().snapshot.totals.completed;
        assert!(r.to_prometheus().contains(&format!("outcome=\"ok\"}} {}", {
            let snap = &r.points.last().unwrap().snapshot;
            snap.ops.first().unwrap().completed
        })));
        assert!(completed > 0);
        assert!(otlp.contains("azurebench.workers"));
    }

    #[test]
    fn json_and_prometheus_have_required_structure() {
        let r = small_profile();
        let json = r.to_json();
        assert!(json.starts_with('{'));
        assert!(json.contains("\"schema\":\"azurebench-profile/v1\""));
        assert!(json.contains("\"merged_phases\""));
        assert!(json.contains("\"reconciliation\""));
        let prom = r.to_prometheus();
        for family in [
            "azsim_ops_total",
            "azsim_bytes_total",
            "azsim_fault_injections_total",
            "azsim_partition_ops_total",
            "azsim_phase_latency_seconds",
        ] {
            assert!(prom.contains(family), "{family} missing");
        }
        let table = r.render();
        assert!(table.contains("end_to_end"));
        assert!(table.contains("service"));
    }
}
