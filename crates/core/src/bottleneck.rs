//! `figures bottleneck`: automated bottleneck attribution.
//!
//! Each scenario drives one figure's workload shape against the cluster
//! with the gauge timeline enabled, then asks [`Cluster::resource_usage`]
//! for the time-weighted saturation of every modelled resource — token
//! buckets (fraction of the run with less than one token), partition
//! FIFOs and shared pipes (busy-time utilization). Ranking those rows
//! yields a one-line verdict per ladder point, e.g.
//!
//! ```text
//! fig7-put @ 64 workers: bucket:queue:fig7-shared saturated 97% of steady state
//! ```
//!
//! which names the *documented* limit behind each figure's knee: the
//! 500 msg/s per-queue bucket (Fig. 7), the 5 000 tx/s account bucket
//! (Fig. 6 at high worker counts), the shared table front-end pipe
//! (Fig. 8, large entities) and the 60 MB/s per-blob write pipe (Fig. 4).
//! Two non-figure scenarios widen coverage: `chaos-drain` drains the
//! shared chaos queue under the standard fault template (the queue bucket
//! must stay the binding limit even while its partition server crashes
//! and busy storms rage) and `ycsb-hot` hammers a Zipfian-skewed table
//! (the hottest partition's server FIFO binds, not the front-end).
//! Points run on the sweep engine and the report renders in point order,
//! so JSON and markdown are byte-identical at any `--threads`.

use crate::chaos::{chaos_plan, CHAOS_QUEUE};
use crate::config::BenchConfig;
use crate::payload::PayloadGen;
use crate::sweep::sweep_points;
use crate::timeline::DEFAULT_RESOLUTION;
use crate::ycsb::{record_key, Zipfian};
use azsim_client::{
    BlobClient, Environment, QueueClient, ResilientPolicy, TableClient, VirtualEnv,
};
use azsim_core::Simulation;
use azsim_fabric::{Cluster, ResourceUsage};
use azsim_storage::{Entity, PropValue};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

/// Schema identifier written into every bottleneck JSON export.
pub const BOTTLENECK_SCHEMA: &str = "azurebench-bottleneck/v1";

/// A ranked resource must be at least this saturated for the verdict to
/// name it; below, the point is reported as unsaturated (no knee yet).
const VERDICT_THRESHOLD: f64 = 0.5;

/// How many ranked resources each point retains in the export.
const TOP_K: usize = 8;

/// One workload shape whose binding limit the pass attributes.
#[derive(Clone, Copy)]
struct Scenario {
    /// Stable scenario id (used in verdicts and JSON).
    id: &'static str,
    /// The paper figure whose shape this reproduces.
    figure: &'static str,
    /// The documented limit the shape is expected to hit at scale.
    expected: &'static str,
}

const SCENARIOS: [Scenario; 6] = [
    Scenario {
        id: "fig7-put",
        figure: "fig7",
        expected: "per-queue 500 msg/s bucket",
    },
    Scenario {
        id: "fig6-own",
        figure: "fig6",
        expected: "account 5000 tx/s bucket",
    },
    Scenario {
        id: "fig8-insert",
        figure: "fig8",
        expected: "shared table front-end pipe",
    },
    Scenario {
        id: "fig4-page",
        figure: "fig4",
        expected: "per-blob 60 MB/s write pipe",
    },
    Scenario {
        id: "chaos-drain",
        figure: "chaos",
        expected: "per-queue 500 msg/s bucket under chaos faults",
    },
    Scenario {
        id: "ycsb-hot",
        figure: "ycsb",
        expected: "hottest table partition (Zipfian skew)",
    },
];

/// One `(scenario, workers)` attribution result.
#[derive(Clone, Serialize)]
pub struct BottleneckPoint {
    /// Scenario id (e.g. `fig7-put`).
    pub scenario: String,
    /// Figure the scenario reproduces.
    pub figure: String,
    /// Documented limit the scenario targets.
    pub expected: String,
    /// Worker count of the point.
    pub workers: u64,
    /// Requests the runtime processed.
    pub requests: u64,
    /// Virtual end time, seconds.
    pub end_time_s: f64,
    /// The verdict line.
    pub verdict: String,
    /// Resources ranked by saturation, most saturated first.
    pub ranked: Vec<ResourceUsage>,
}

/// The full attribution report.
pub struct BottleneckReport {
    /// Workload scale the run used.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Worker ladder each scenario swept.
    pub ladder: Vec<usize>,
    /// All points, in (scenario, ladder) order.
    pub points: Vec<BottleneckPoint>,
}

#[derive(Serialize)]
struct BottleneckConfigDoc {
    scale: f64,
    seed: u64,
    ladder: Vec<u64>,
}

#[derive(Serialize)]
struct BottleneckDoc {
    schema: String,
    config: BottleneckConfigDoc,
    points: Vec<BottleneckPoint>,
}

/// Rank usage rows: saturation first, throttle count as tie-break, label
/// last so the order is total (and therefore deterministic).
fn rank(mut usage: Vec<ResourceUsage>) -> Vec<ResourceUsage> {
    usage.sort_by(|a, b| {
        b.saturation
            .total_cmp(&a.saturation)
            .then_with(|| b.throttled.cmp(&a.throttled))
            .then_with(|| a.resource.cmp(&b.resource))
    });
    usage.truncate(TOP_K);
    usage
}

fn verdict(scenario: &str, workers: usize, ranked: &[ResourceUsage]) -> String {
    // A token bucket riding *at* its limit admits and rejects in
    // alternation, so its `fill < 1` time fraction approximates the
    // rejection rate, not 100 % — when nothing is time-saturated, the
    // heaviest throttler (not the busiest FIFO) is the evidence.
    let throttler = ranked
        .iter()
        .filter(|r| r.throttled > 0)
        .max_by(|a, b| a.throttled.cmp(&b.throttled));
    match ranked.first() {
        Some(top) if top.saturation >= VERDICT_THRESHOLD => format!(
            "{scenario} @ {workers} workers: {} saturated {:.0}% of steady state{}",
            top.resource,
            top.saturation * 100.0,
            if top.throttled > 0 {
                format!(", throttling {} requests", top.throttled)
            } else {
                String::new()
            }
        ),
        Some(_) if throttler.is_some() => {
            let t = throttler.unwrap();
            format!(
                "{scenario} @ {workers} workers: {} throttled {} requests \
                 (saturated {:.0}% of steady state)",
                t.resource,
                t.throttled,
                t.saturation * 100.0
            )
        }
        Some(top) => format!(
            "{scenario} @ {workers} workers: no saturated resource (max {} at {:.0}%)",
            top.resource,
            top.saturation * 100.0
        ),
        None => format!("{scenario} @ {workers} workers: no resource observed"),
    }
}

/// Run one scenario at one worker count and attribute its bottleneck.
fn run_point(cfg: &BenchConfig, scenario: Scenario, workers: usize) -> BottleneckPoint {
    let seed = cfg.seed;
    let mut params = cfg.params.clone();
    params.timeline_resolution.get_or_insert(DEFAULT_RESOLUTION);
    let mut cluster = Cluster::new(params);
    // The chaos scenario runs under the standard chaos fault template at
    // half intensity: crash of the queue's partition server, periodic
    // busy storms, request drops and replica stalls.
    if scenario.id == "chaos-drain" {
        cluster.set_fault_plan(chaos_plan(cfg, 0.5));
    }
    let sim = Simulation::new(cluster, seed);
    // Floors keep the pressure high enough to saturate the documented limits
    // even at test scales: the queue scenarios must outrun the 500 msg/s
    // bucket (plus its 50-token burst) for a sustained stretch.
    let queue_ops = cfg.scaled(200).max(60);
    let blob_ops = cfg.scaled(30).max(6);
    let id = scenario.id;
    let report = sim.run_workers(workers, move |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        let me = env.instance();
        let mut gen = PayloadGen::new(seed, me as u64);
        // The queue scenarios run open-loop: rejections return immediately
        // (no retry sleeps), so the offered load stays pinned above the
        // documented target instead of oscillating around it — that is the
        // steady state whose saturation the verdict reports.
        let open_loop = || {
            ResilientPolicy::new(seed ^ me as u64)
                .with_max_attempts(1)
                .with_breaker(None)
        };
        match id {
            // Every worker floods ONE queue with 32 KB puts: the paper's
            // shared-queue experiment, bound by the per-queue bucket.
            "fig7-put" => {
                let q = QueueClient::new(&env, "fig7-shared").with_policy(open_loop());
                q.create().await.unwrap();
                for _ in 0..queue_ops {
                    let _ = q.put_message(gen.bytes(32 << 10)).await;
                }
            }
            // One queue per worker, small put-only traffic (~105 ops/s per
            // worker): no single queue saturates, but the *account*
            // transaction bucket does once the ladder passes ~50 workers.
            "fig6-own" => {
                let q = QueueClient::new(&env, format!("fig6-{me}")).with_policy(open_loop());
                q.create().await.unwrap();
                for _ in 0..queue_ops * 2 {
                    let _ = q.put_message(gen.bytes(1 << 10)).await;
                }
            }
            // Large entities into per-worker partitions: the shared table
            // front-end data path binds before any partition bucket.
            "fig8-insert" => {
                let t = TableClient::new(&env, "fig8");
                t.create_table().await.unwrap();
                for i in 0..queue_ops {
                    let _ = t
                        .insert(
                            Entity::new(format!("p{me}"), i.to_string())
                                .with("v", PropValue::Binary(gen.bytes(32 << 10))),
                        )
                        .await;
                }
            }
            // Every worker writes 1 MB pages into ONE page blob: the
            // documented per-blob write target binds.
            "fig4-page" => {
                let b = BlobClient::new(&env, "bottleneck");
                let _ = b.create_container().await;
                let total = 4u64 << 30;
                let _ = b.create_page_blob("pb", total).await;
                for i in 0..blob_ops {
                    let offset = ((me * blob_ops + i) as u64) << 20;
                    let _ = b.put_page("pb", offset % total, gen.bytes(1 << 20)).await;
                }
            }
            // Drain the shared chaos queue (put → get → delete) while the
            // fault plan crashes its server and raises busy storms: the
            // documented per-queue bucket must still be what binds.
            "chaos-drain" => {
                let q = QueueClient::new(&env, CHAOS_QUEUE).with_policy(open_loop());
                q.create().await.unwrap();
                for _ in 0..queue_ops {
                    let _ = q.put_message(gen.bytes(1 << 10)).await;
                    if let Ok(Some(msg)) = q.get_message().await {
                        let _ = q.delete_message(&msg).await;
                    }
                }
            }
            // Zipfian-skewed blind updates over a small keyspace: the
            // hottest partition's entities/s bucket binds, not the shared
            // front-end pipe (values are tiny).
            "ycsb-hot" => {
                let t = TableClient::new(&env, "ycsb");
                t.create_table().await.unwrap();
                let records: u64 = 256;
                let mut i = me as u64;
                while i < records {
                    let (p, r) = record_key(i);
                    let _ = t
                        .insert(Entity::new(p, r).with("v", PropValue::Binary(gen.bytes(64))))
                        .await;
                    i += workers as u64;
                }
                let zipf = Zipfian::new(records, 0.99);
                let mut rng =
                    SmallRng::seed_from_u64(azsim_core::rng::derive_seed(seed, 0x4242 ^ me as u64));
                for _ in 0..queue_ops * 2 {
                    let (p, r) = record_key(zipf.next(&mut rng));
                    let _ = t
                        .update(Entity::new(p, r).with("v", PropValue::Binary(gen.bytes(64))))
                        .await;
                }
            }
            other => panic!("unknown scenario {other}"),
        }
    });
    let ranked = rank(report.model.resource_usage(report.end_time));
    BottleneckPoint {
        scenario: scenario.id.to_string(),
        figure: scenario.figure.to_string(),
        expected: scenario.expected.to_string(),
        workers: workers as u64,
        requests: report.requests,
        end_time_s: report.end_time.as_secs_f64(),
        verdict: verdict(scenario.id, workers, &ranked),
        ranked,
    }
}

/// Attribute bottlenecks for every scenario across `ladder` worker counts.
/// Points are independent simulations and run on the sweep engine; results
/// collect in (scenario, ladder) order regardless of thread count.
pub fn run_bottlenecks(cfg: &BenchConfig, ladder: &[usize]) -> BottleneckReport {
    let grid: Vec<(Scenario, usize)> = SCENARIOS
        .iter()
        .flat_map(|&s| ladder.iter().map(move |&w| (s, w)))
        .collect();
    let points = sweep_points(&grid, cfg.sweep_threads, |&(s, w)| run_point(cfg, s, w));
    BottleneckReport {
        scale: cfg.scale,
        seed: cfg.seed,
        ladder: ladder.to_vec(),
        points,
    }
}

impl BottleneckReport {
    /// The point for one `(scenario, workers)` pair, if present.
    pub fn point(&self, scenario: &str, workers: usize) -> Option<&BottleneckPoint> {
        self.points
            .iter()
            .find(|p| p.scenario == scenario && p.workers == workers as u64)
    }

    /// Serialize to JSON (`azurebench-bottleneck/v1`). Deterministic:
    /// fixed point order and shortest-roundtrip floats.
    pub fn to_json(&self) -> String {
        let doc = BottleneckDoc {
            schema: BOTTLENECK_SCHEMA.to_string(),
            config: BottleneckConfigDoc {
                scale: self.scale,
                seed: self.seed,
                ladder: self.ladder.iter().map(|&w| w as u64).collect(),
            },
            points: self.points.clone(),
        };
        serde_json::to_string(&doc).expect("bottleneck serialization is infallible")
    }

    /// Render the attribution table as markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = String::from(
            "| figure | scenario | workers | bottleneck | kind | saturation | throttled | runner-up |\n\
             |---|---|---|---|---|---|---|---|\n",
        );
        for p in &self.points {
            let (bottleneck, kind, sat, throttled) = match p.ranked.first() {
                Some(t) => (
                    t.resource.as_str(),
                    t.kind.as_str(),
                    format!("{:.1}%", t.saturation * 100.0),
                    t.throttled,
                ),
                None => ("-", "-", "-".to_string(), 0),
            };
            let runner_up = p
                .ranked
                .get(1)
                .map(|r| format!("{} ({:.1}%)", r.resource, r.saturation * 100.0))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
                p.figure, p.scenario, p.workers, bottleneck, kind, sat, throttled, runner_up
            ));
        }
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!("- {}\n", p.verdict));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_queue_attributes_the_queue_bucket() {
        let cfg = BenchConfig::quick().with_sweep_threads(1);
        let r = run_bottlenecks(&cfg, &[64]);
        let p = r.point("fig7-put", 64).unwrap();
        let top = p.ranked.first().unwrap();
        assert_eq!(top.resource, "bucket:queue:fig7-shared");
        assert!(top.saturation > 0.8, "saturation {}", top.saturation);
        assert!(top.throttled > 0);
        assert!(p.verdict.contains("bucket:queue:fig7-shared"));

        // The per-account transaction bucket rides *at* its limit in the
        // own-queue scenario: it rejects thousands of requests while its
        // time-weighted fill recovers between waves, so the verdict leans
        // on the throttle count instead of the saturation fraction.
        let own = r.point("fig6-own", 64).unwrap();
        let own_top = own.ranked.first().unwrap();
        assert_eq!(own_top.resource, "account_tx");
        assert!(own_top.throttled > 0, "throttled {}", own_top.throttled);
        assert!(
            own.verdict.contains("account_tx") && own.verdict.contains("throttled"),
            "verdict: {}",
            own.verdict
        );

        // The table and blob scenarios pin their documented pipes.
        let tbl = r.point("fig8-insert", 64).unwrap();
        assert_eq!(tbl.ranked.first().unwrap().resource, "pipe:table_frontend");
        let blob = r.point("fig4-page", 64).unwrap();
        assert!(
            blob.ranked
                .first()
                .unwrap()
                .resource
                .starts_with("pipe:blob-write:"),
            "top: {}",
            blob.ranked.first().unwrap().resource
        );
    }

    #[test]
    fn chaos_and_ycsb_scenarios_attribute_their_limits() {
        let cfg = BenchConfig::quick().with_sweep_threads(1);
        let r = run_bottlenecks(&cfg, &[64]);

        // Under the chaos fault template nothing stays time-saturated
        // (storms and the failover pause the whole loop), but the shared
        // queue's bucket rejects thousands of requests — the verdict names
        // the heaviest throttler, not the busiest FIFO.
        let chaos = r.point("chaos-drain", 64).unwrap();
        let bucket = chaos
            .ranked
            .iter()
            .find(|u| u.resource == "bucket:queue:chaos-tasks")
            .expect("chaos queue bucket is ranked");
        assert!(bucket.throttled > 1_000, "throttled {}", bucket.throttled);
        assert!(
            chaos.verdict.contains("bucket:queue:chaos-tasks")
                && chaos.verdict.contains("throttled"),
            "verdict: {}",
            chaos.verdict
        );

        // Zipfian skew concentrates updates on rank 0's partition: its
        // FIFO saturates while its 15 siblings idle along far below.
        let hot = r.point("ycsb-hot", 64).unwrap();
        let top = hot.ranked.first().unwrap();
        assert_eq!(top.resource, "fifo:table:ycsb/part-00");
        assert!(top.saturation > 0.8, "saturation {}", top.saturation);
        assert!(hot.verdict.contains("fifo:table:ycsb/part-00"));
    }

    #[test]
    fn json_and_markdown_are_deterministic_across_threads() {
        let serial = BenchConfig::quick().with_sweep_threads(1);
        let parallel = BenchConfig::quick().with_sweep_threads(4);
        let a = run_bottlenecks(&serial, &[2, 8]);
        let b = run_bottlenecks(&parallel, &[2, 8]);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render_markdown(), b.render_markdown());
        assert!(a.to_json().contains(BOTTLENECK_SCHEMA));
    }

    #[test]
    fn unsaturated_points_say_so() {
        let cfg = BenchConfig::quick().with_sweep_threads(1);
        let r = run_bottlenecks(&cfg, &[1]);
        // One worker against its own queue saturates nothing.
        let p = r.point("fig6-own", 1).unwrap();
        assert!(
            p.verdict.contains("no saturated resource"),
            "verdict: {}",
            p.verdict
        );
    }
}
