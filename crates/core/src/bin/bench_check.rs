//! Guard against engine-throughput regressions.
//!
//! ```text
//! bench_check <baseline BENCH_engine.json> <candidate BENCH_engine.json> [max_regression]
//! ```
//!
//! Compares the `engine` section of two `figures bench` exports: for every
//! `(actors, shards)` pair present in the baseline (rows without a
//! `shards` key count as `shards = 1`, so pre-sharding baselines still
//! compare), the candidate's `ops_per_second` must stay above
//! `baseline * (1 - max_regression)` (default 0.25, i.e. fail on a >25 %
//! drop). Ladder rungs present only in the candidate (new actor counts,
//! new shard counts) pass freely — the gate never blocks ladder growth.
//! Wall-clock figures vary with machine load, so only the engine
//! micro-benchmark — not the figure-suite timings — gates. Exit code 0
//! means no regression; violations print per-row deltas and exit
//! non-zero.

use serde::value::{find, parse, Value};

/// One `engine` row from a `BENCH_engine.json`.
struct EngineRow {
    actors: u64,
    /// Executor shard count (`1` when the row predates the sharded
    /// executor and has no such key).
    shards: u64,
    ops_per_second: f64,
}

fn load(path: &str) -> Value {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse(&bytes).unwrap_or_else(|e| {
        eprintln!("error: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn engine_rows(doc: &Value, path: &str) -> Vec<EngineRow> {
    let rows = doc
        .as_object()
        .and_then(|m| find(m, "engine"))
        .and_then(|v| v.as_array())
        .unwrap_or_else(|| {
            eprintln!("error: {path} has no `engine` array");
            std::process::exit(2);
        });
    rows.iter()
        .filter_map(|row| {
            let m = row.as_object()?;
            let num = |key: &str| {
                find(m, key).and_then(|v| match v {
                    Value::Num(n) => n.parse::<f64>().ok(),
                    _ => None,
                })
            };
            Some(EngineRow {
                actors: num("actors")? as u64,
                shards: num("shards").map_or(1, |s| s as u64),
                ops_per_second: num("ops_per_second")?,
            })
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 || args.len() > 3 {
        eprintln!("usage: bench_check <baseline.json> <candidate.json> [max_regression]");
        std::process::exit(2);
    }
    let max_regression: f64 = args
        .get(2)
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("error: bad max_regression {s:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(0.25);

    let baseline = engine_rows(&load(&args[0]), &args[0]);
    let candidate = engine_rows(&load(&args[1]), &args[1]);
    if baseline.is_empty() {
        eprintln!("error: {} has no engine rows", args[0]);
        std::process::exit(2);
    }

    let mut failures = 0usize;
    for b in &baseline {
        let Some(c) = candidate
            .iter()
            .find(|c| c.actors == b.actors && c.shards == b.shards)
        else {
            eprintln!(
                "bench_check: candidate missing row for {} actors x {} shard(s)",
                b.actors, b.shards
            );
            failures += 1;
            continue;
        };
        let floor = b.ops_per_second * (1.0 - max_regression);
        let delta = (c.ops_per_second - b.ops_per_second) / b.ops_per_second * 100.0;
        let verdict = if c.ops_per_second < floor {
            failures += 1;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "bench_check: {:>6} actors x {} shard(s): baseline {:>12.0} ops/s, candidate {:>12.0} ops/s ({delta:+.1}%) {verdict}",
            b.actors, b.shards, b.ops_per_second, c.ops_per_second
        );
    }

    if failures > 0 {
        eprintln!(
            "bench_check: {failures} regression(s) beyond {:.0}% tolerance",
            max_regression * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "bench_check: OK ({} ladder rung(s) within {:.0}% of baseline)",
        baseline.len(),
        max_regression * 100.0
    );
}
