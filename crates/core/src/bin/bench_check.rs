//! Guard against engine-throughput regressions.
//!
//! ```text
//! bench_check <baseline BENCH_engine.json> <candidate BENCH_engine.json> [max_regression]
//! ```
//!
//! Compares the `engine` section of two `figures bench` exports: for every
//! `(backend, actors, shards)` triple present in the baseline (rows
//! without a `shards` key count as `shards = 1` and rows without a
//! `backend` key count as the `was` reference, so pre-sharding and
//! pre-multi-backend baselines still compare), the candidate's
//! `ops_per_second` must stay above `baseline * (1 - max_regression)`
//! (default 0.25, i.e. fail on a >25 % drop).
//!
//! New *actor counts* on a known `(backend, shards)` combination pass
//! freely — the gate never blocks ladder growth. A candidate row naming a
//! `(backend, shards)` **combination** the baseline has never seen is an
//! error, not a silent pass: it means the bench ran against a
//! configuration nobody has baselined (wrong `--backend` flag, stale
//! baseline after a shard-ladder change), and letting it through would
//! report "OK" while gating nothing.
//!
//! Wall-clock figures vary with machine load, so only the engine
//! micro-benchmark — not the figure-suite timings — gates. Exit code 0
//! means no regression; violations print per-row deltas and exit
//! non-zero.

use serde::value::{find, parse, Value};
use std::collections::BTreeSet;

/// The backend assumed for rows that predate the multi-backend export.
const DEFAULT_BACKEND: &str = "was";

/// One `engine` row from a `BENCH_engine.json`.
#[derive(Debug, Clone, PartialEq)]
struct EngineRow {
    /// Storage backend the bench ran against (`was` when the row predates
    /// the multi-backend export and has no such key).
    backend: String,
    actors: u64,
    /// Executor shard count (`1` when the row predates the sharded
    /// executor and has no such key).
    shards: u64,
    ops_per_second: f64,
}

fn load(path: &str) -> Value {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse(&bytes).unwrap_or_else(|e| {
        eprintln!("error: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn engine_rows(doc: &Value) -> Option<Vec<EngineRow>> {
    let rows = doc
        .as_object()
        .and_then(|m| find(m, "engine"))
        .and_then(|v| v.as_array())?;
    Some(
        rows.iter()
            .filter_map(|row| {
                let m = row.as_object()?;
                let num = |key: &str| {
                    find(m, key).and_then(|v| match v {
                        Value::Num(n) => n.parse::<f64>().ok(),
                        _ => None,
                    })
                };
                let backend = match find(m, "backend") {
                    Some(Value::Str(s)) => s.to_ascii_lowercase(),
                    _ => DEFAULT_BACKEND.to_owned(),
                };
                Some(EngineRow {
                    backend,
                    actors: num("actors")? as u64,
                    shards: num("shards").map_or(1, |s| s as u64),
                    ops_per_second: num("ops_per_second")?,
                })
            })
            .collect(),
    )
}

/// The whole comparison, separated from I/O so it is unit-testable:
/// returns the per-row report lines and the failure count.
fn check(
    baseline: &[EngineRow],
    candidate: &[EngineRow],
    max_regression: f64,
) -> (Vec<String>, usize) {
    let mut lines = Vec::new();
    let mut failures = 0usize;

    for b in baseline {
        let Some(c) = candidate
            .iter()
            .find(|c| c.backend == b.backend && c.actors == b.actors && c.shards == b.shards)
        else {
            lines.push(format!(
                "bench_check: candidate missing row for [{}] {} actors x {} shard(s)",
                b.backend, b.actors, b.shards
            ));
            failures += 1;
            continue;
        };
        let floor = b.ops_per_second * (1.0 - max_regression);
        let delta = (c.ops_per_second - b.ops_per_second) / b.ops_per_second * 100.0;
        let verdict = if c.ops_per_second < floor {
            failures += 1;
            "REGRESSION"
        } else {
            "ok"
        };
        lines.push(format!(
            "bench_check: [{}] {:>6} actors x {} shard(s): baseline {:>12.0} ops/s, candidate {:>12.0} ops/s ({delta:+.1}%) {verdict}",
            b.backend, b.actors, b.shards, b.ops_per_second, c.ops_per_second
        ));
    }

    // New actor counts on a known (backend, shards) combination are
    // ladder growth and pass freely; an unknown combination means the
    // candidate measured a configuration the baseline has never seen,
    // which must not silently count as "no regression".
    let known: BTreeSet<(&str, u64)> = baseline
        .iter()
        .map(|b| (b.backend.as_str(), b.shards))
        .collect();
    for c in candidate {
        if !known.contains(&(c.backend.as_str(), c.shards)) {
            lines.push(format!(
                "bench_check: candidate row [{}] {} actors x {} shard(s) names a \
                 backend/shards combination absent from the baseline — re-baseline \
                 or fix the bench configuration",
                c.backend, c.actors, c.shards
            ));
            failures += 1;
        }
    }

    (lines, failures)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 || args.len() > 3 {
        eprintln!("usage: bench_check <baseline.json> <candidate.json> [max_regression]");
        std::process::exit(2);
    }
    let max_regression: f64 = args
        .get(2)
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("error: bad max_regression {s:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(0.25);

    let baseline = engine_rows(&load(&args[0])).unwrap_or_else(|| {
        eprintln!("error: {} has no `engine` array", args[0]);
        std::process::exit(2);
    });
    let candidate = engine_rows(&load(&args[1])).unwrap_or_else(|| {
        eprintln!("error: {} has no `engine` array", args[1]);
        std::process::exit(2);
    });
    if baseline.is_empty() {
        eprintln!("error: {} has no engine rows", args[0]);
        std::process::exit(2);
    }

    let (lines, failures) = check(&baseline, &candidate, max_regression);
    for line in &lines {
        println!("{line}");
    }

    if failures > 0 {
        eprintln!(
            "bench_check: {failures} failure(s) beyond {:.0}% tolerance",
            max_regression * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "bench_check: OK ({} ladder rung(s) within {:.0}% of baseline)",
        baseline.len(),
        max_regression * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(backend: &str, actors: u64, shards: u64, ops: f64) -> EngineRow {
        EngineRow {
            backend: backend.to_owned(),
            actors,
            shards,
            ops_per_second: ops,
        }
    }

    #[test]
    fn rows_without_backend_or_shards_default_to_the_reference() {
        let doc = parse(
            br#"{"engine": [
                {"actors": 100, "ops_per_second": 5000.0},
                {"backend": "s3", "actors": 100, "shards": 4, "ops_per_second": 4000.0}
            ]}"#,
        )
        .unwrap();
        let rows = engine_rows(&doc).unwrap();
        assert_eq!(rows[0], row(DEFAULT_BACKEND, 100, 1, 5000.0));
        assert_eq!(rows[1], row("s3", 100, 4, 4000.0));
    }

    #[test]
    fn matching_rows_within_tolerance_pass() {
        let base = [row("was", 100, 1, 1000.0)];
        let cand = [row("was", 100, 1, 800.0)];
        let (lines, failures) = check(&base, &cand, 0.25);
        assert_eq!(failures, 0, "{lines:?}");
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let base = [row("was", 100, 1, 1000.0)];
        let cand = [row("was", 100, 1, 700.0)];
        let (lines, failures) = check(&base, &cand, 0.25);
        assert_eq!(failures, 1);
        assert!(lines.iter().any(|l| l.contains("REGRESSION")), "{lines:?}");
    }

    #[test]
    fn missing_candidate_row_fails() {
        let base = [row("was", 100, 1, 1000.0), row("was", 200, 1, 1500.0)];
        let cand = [row("was", 100, 1, 1000.0)];
        let (_, failures) = check(&base, &cand, 0.25);
        assert_eq!(failures, 1);
    }

    #[test]
    fn ladder_growth_on_a_known_combination_passes_freely() {
        let base = [row("was", 100, 1, 1000.0)];
        // New actor count, same (backend, shards): growth, not an error.
        let cand = [row("was", 100, 1, 1000.0), row("was", 400, 1, 2000.0)];
        let (lines, failures) = check(&base, &cand, 0.25);
        assert_eq!(failures, 0, "{lines:?}");
    }

    #[test]
    fn unknown_backend_combination_is_an_error_not_a_silent_pass() {
        let base = [row("was", 100, 1, 1000.0)];
        let cand = [row("was", 100, 1, 1000.0), row("gcs", 100, 1, 900.0)];
        let (lines, failures) = check(&base, &cand, 0.25);
        assert_eq!(failures, 1);
        assert!(
            lines.iter().any(|l| l.contains("absent from the baseline")),
            "{lines:?}"
        );
    }

    #[test]
    fn unknown_shard_combination_is_an_error_too() {
        let base = [row("was", 100, 1, 1000.0), row("was", 100, 2, 1800.0)];
        let cand = [
            row("was", 100, 1, 1000.0),
            row("was", 100, 2, 1800.0),
            row("was", 100, 8, 4000.0),
        ];
        let (_, failures) = check(&base, &cand, 0.25);
        assert_eq!(failures, 1);
    }

    #[test]
    fn backend_names_are_matched_case_insensitively_at_parse_time() {
        // `figures bench` serializes the serde-derived variant name
        // (`"Was"`); the hand-written history/config lines use lowercase.
        // Parsing folds both onto the lowercase profile name.
        let doc = parse(br#"{"engine": [{"backend": "Was", "actors": 1, "ops_per_second": 1.0}]}"#)
            .unwrap();
        assert_eq!(engine_rows(&doc).unwrap()[0].backend, "was");
    }
}
