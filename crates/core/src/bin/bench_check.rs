//! Guard against engine-throughput regressions — snapshot compare, and
//! the trend-aware continuous-benchmarking front end of
//! [`azurebench::benchhist`].
//!
//! ```text
//! bench_check <baseline.json> <candidate.json> [max_regression]
//! bench_check record  <BENCH_engine.json> <BENCH_history.jsonl> [--host H] [--commit C] [--ts N]
//! bench_check trend   <BENCH_history.jsonl> [--snapshot BENCH_engine.json]
//!                     [--window K] [--tolerance T] [--mad-gate G] [--min-history N]
//! bench_check report  <BENCH_history.jsonl> [--out DIR] [--window K] [--tolerance T]
//! bench_check migrate <BENCH_history.jsonl>
//! ```
//!
//! The positional form is the original fixed-tolerance gate: for every
//! `(backend, actors, shards)` triple in the baseline, the candidate's
//! `ops_per_second` must stay above `baseline * (1 - max_regression)`
//! (default 0.25). New actor counts on a known `(backend, shards)`
//! combination pass freely; an unknown combination is an error. When a
//! `BENCH_history.jsonl` sits next to either snapshot, the snapshot must
//! also agree with the history's latest run — a snapshot regenerated
//! without recording history is an error, never a silent win.
//!
//! The subcommands operate on the append-only v1 history
//! (`azurebench-bench-history/v1`, one JSON line per rung per run):
//!
//! * `record` converts a `BENCH_engine.json` into v1 rows (host/commit
//!   provenance from `AZBENCH_HOST`/`HOSTNAME` and
//!   `AZBENCH_COMMIT`/`GITHUB_SHA` unless overridden) and appends them,
//!   refusing runs older than the history tail.
//! * `trend` fits a robust per-series baseline (median + MAD over the
//!   last `--window` runs of each `(backend, actors, shards)` key) and
//!   gates only when the newest run drops beyond **both** the relative
//!   tolerance and the series' own noise band — a clean 30 % step gates,
//!   a noisy-but-flat series does not. Exit 1 on a gated regression.
//! * `report` renders the self-contained markdown + HTML trend report.
//! * `migrate` rewrites a history file (legacy single-line run records
//!   and/or v1 rows) as pure v1 rows.
//!
//! Wall-clock figures vary with machine load, so only the engine
//! micro-benchmark — not the figure-suite timings — gates.

use azurebench::benchhist::{
    analyze, append_rows, check, check_snapshot_agreement, detect_commit, detect_host, engine_rows,
    migrate, parse_history, render_html, render_markdown, snapshot_history_rows, EngineRow,
    HistoryRow, TrendConfig,
};
use serde::value::{parse, Value};
use std::path::Path;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn load(path: &str) -> Value {
    let bytes = std::fs::read(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    parse(&bytes).unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e}")))
}

fn load_history(path: &str) -> Vec<HistoryRow> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    parse_history(&text).unwrap_or_else(|e| fail(&e))
}

/// Pull `--flag value` out of an argument list, in place.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        fail(&format!("{flag} needs a value"));
    }
    args.remove(i);
    Some(args.remove(i))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| fail(&format!("bad {what} {s:?}")))
}

fn trend_config(args: &mut Vec<String>) -> TrendConfig {
    let mut cfg = TrendConfig::default();
    if let Some(v) = take_flag(args, "--window") {
        cfg.window = parse_num(&v, "--window");
    }
    if let Some(v) = take_flag(args, "--tolerance") {
        cfg.tolerance = parse_num(&v, "--tolerance");
    }
    if let Some(v) = take_flag(args, "--mad-gate") {
        cfg.mad_gate = parse_num(&v, "--mad-gate");
    }
    if let Some(v) = take_flag(args, "--min-history") {
        cfg.min_history = parse_num(&v, "--min-history");
    }
    cfg
}

fn expect_args(args: &[String], want: usize, usage: &str) {
    if args.len() != want {
        eprintln!("usage: bench_check {usage}");
        std::process::exit(2);
    }
}

/// If a `BENCH_history.jsonl` sits next to `snapshot_path`, verify the
/// snapshot agrees with the history's latest run.
fn check_sibling_history(snapshot_path: &str, rows: &[EngineRow]) {
    let sibling = Path::new(snapshot_path)
        .parent()
        .unwrap_or_else(|| Path::new("."))
        .join("BENCH_history.jsonl");
    let Ok(text) = std::fs::read_to_string(&sibling) else {
        return;
    };
    let history = parse_history(&text).unwrap_or_else(|e| fail(&e));
    if let Err(e) = check_snapshot_agreement(rows, &history) {
        fail(&format!("{} vs {}: {e}", snapshot_path, sibling.display()));
    }
}

fn cmd_compare(args: &[String]) {
    let max_regression: f64 = args
        .get(2)
        .map(|s| parse_num(s, "max_regression"))
        .unwrap_or(0.25);

    let baseline = engine_rows(&load(&args[0]))
        .unwrap_or_else(|| fail(&format!("{} has no `engine` array", args[0])));
    let candidate = engine_rows(&load(&args[1]))
        .unwrap_or_else(|| fail(&format!("{} has no `engine` array", args[1])));
    if baseline.is_empty() {
        fail(&format!("{} has no engine rows", args[0]));
    }
    check_sibling_history(&args[0], &baseline);
    check_sibling_history(&args[1], &candidate);

    let (lines, failures) = check(&baseline, &candidate, max_regression);
    for line in &lines {
        println!("{line}");
    }

    if failures > 0 {
        eprintln!(
            "bench_check: {failures} failure(s) beyond {:.0}% tolerance",
            max_regression * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "bench_check: OK ({} ladder rung(s) within {:.0}% of baseline)",
        baseline.len(),
        max_regression * 100.0
    );
}

fn cmd_record(mut args: Vec<String>) {
    let host = take_flag(&mut args, "--host").unwrap_or_else(detect_host);
    let commit = take_flag(&mut args, "--commit").unwrap_or_else(detect_commit);
    let ts: u64 = take_flag(&mut args, "--ts")
        .map(|v| parse_num(&v, "--ts"))
        .unwrap_or_else(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0)
        });
    expect_args(
        &args,
        2,
        "record <BENCH_engine.json> <BENCH_history.jsonl> [--host H] [--commit C] [--ts N]",
    );
    let rows = snapshot_history_rows(&load(&args[0]), &host, &commit, ts)
        .unwrap_or_else(|e| fail(&format!("{}: {e}", args[0])));
    append_rows(&args[1], &rows).unwrap_or_else(|e| fail(&e));
    println!(
        "bench_check: recorded {} rung(s) at unix_ts {ts} (host {host}, commit {commit}) into {}",
        rows.len(),
        args[1]
    );
}

fn cmd_trend(mut args: Vec<String>) {
    let cfg = trend_config(&mut args);
    let snapshot = take_flag(&mut args, "--snapshot");
    expect_args(
        &args,
        1,
        "trend <BENCH_history.jsonl> [--snapshot BENCH_engine.json] [--window K] \
         [--tolerance T] [--mad-gate G] [--min-history N]",
    );
    let history = load_history(&args[0]);
    if history.is_empty() {
        fail(&format!("{} has no history rows", args[0]));
    }
    if let Some(snap_path) = snapshot {
        let rows = engine_rows(&load(&snap_path))
            .unwrap_or_else(|| fail(&format!("{snap_path} has no `engine` array")));
        if let Err(e) = check_snapshot_agreement(&rows, &history) {
            fail(&format!("{snap_path} vs {}: {e}", args[0]));
        }
    }

    let report = analyze(&history, &cfg);
    for k in report.keys.iter().filter(|k| k.in_latest_run) {
        println!("{}", k.line());
    }
    let gated = report.gated();
    if !gated.is_empty() {
        eprintln!(
            "bench_check: {} series regressed beyond trend (window {}, tolerance {:.0}%, \
             {}σ noise band)",
            gated.len(),
            cfg.window,
            cfg.tolerance * 100.0,
            cfg.mad_gate
        );
        std::process::exit(1);
    }
    println!(
        "bench_check: OK ({} series in latest run within trend; {} series tracked)",
        report.keys.iter().filter(|k| k.in_latest_run).count(),
        report.keys.len()
    );
}

fn cmd_report(mut args: Vec<String>) {
    let cfg = trend_config(&mut args);
    let out_dir = take_flag(&mut args, "--out").unwrap_or_else(|| "results".to_owned());
    expect_args(
        &args,
        1,
        "report <BENCH_history.jsonl> [--out DIR] [--window K] [--tolerance T]",
    );
    let history = load_history(&args[0]);
    if history.is_empty() {
        fail(&format!("{} has no history rows", args[0]));
    }
    let report = analyze(&history, &cfg);
    std::fs::create_dir_all(&out_dir)
        .unwrap_or_else(|e| fail(&format!("cannot create {out_dir}: {e}")));
    let md_path = format!("{out_dir}/bench_report.md");
    let html_path = format!("{out_dir}/bench_report.html");
    std::fs::write(&md_path, render_markdown(&history, &report, &cfg))
        .unwrap_or_else(|e| fail(&format!("cannot write {md_path}: {e}")));
    std::fs::write(&html_path, render_html(&history, &report, &cfg))
        .unwrap_or_else(|e| fail(&format!("cannot write {html_path}: {e}")));
    println!(
        "bench_check: wrote {md_path} and {html_path} ({} series, {} gated)",
        report.keys.len(),
        report.gated().len()
    );
}

fn cmd_migrate(args: Vec<String>) {
    expect_args(&args, 1, "migrate <BENCH_history.jsonl>");
    let text = std::fs::read_to_string(&args[0])
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", args[0])));
    let (rows, legacy) = migrate(&text).unwrap_or_else(|e| fail(&e));
    if legacy == 0 {
        println!(
            "bench_check: {} already v1 ({} row(s)), nothing to migrate",
            args[0],
            rows.len()
        );
        return;
    }
    let mut out = String::new();
    for r in &rows {
        out.push_str(&r.to_line());
        out.push('\n');
    }
    std::fs::write(&args[0], out)
        .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", args[0])));
    println!(
        "bench_check: migrated {legacy} legacy run line(s) into {} v1 row(s) in {}",
        rows.len(),
        args[0]
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => cmd_record(args[1..].to_vec()),
        Some("trend") => cmd_trend(args[1..].to_vec()),
        Some("report") => cmd_report(args[1..].to_vec()),
        Some("migrate") => cmd_migrate(args[1..].to_vec()),
        _ => {
            if args.len() < 2 || args.len() > 3 {
                eprintln!(
                    "usage: bench_check <baseline.json> <candidate.json> [max_regression]\n\
                     \u{20}      bench_check record|trend|report|migrate ... (see --help in docs)"
                );
                std::process::exit(2);
            }
            cmd_compare(&args);
        }
    }
}
