//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [table1|fig4|fig5|fig6|fig7|fig8|fig9|latency|profile|timeline|
//!          bottleneck|chaos|fleet|verify|bench|all]...
//!         [--scale S] [--workers 1,2,4,...] [--seed N] [--csv DIR]
//!         [--threads N] [--shards N] [--timeline] [--verify-seeds N]
//!         [--naive] [--expect-violation]
//! ```
//!
//! The `verify` target (opt-in, not part of `all`) runs the resilience
//! chaos search: `--verify-seeds N` randomized fault plans plus boundary
//! schedules, each checked against the correctness invariants in
//! [`azurebench::verify`]. `--naive` swaps the hardened idempotent client
//! for a blind-retry one (expected to be caught); `--expect-violation`
//! inverts the exit code for that use. On violation the shrunk plan is
//! written as `repro-<policy>.json`.
//!
//! `--timeline` enables virtual-time gauge sampling for every target (the
//! figures stay bit-identical — sampling is passive; combine with `bench`
//! to measure the sampling overhead).
//!
//! With no target, prints usage. `--scale 1.0` (default) reproduces the
//! paper's workload volumes; smaller scales shrink them proportionally.
//! `--csv DIR` additionally writes one CSV per figure into `DIR`.
//! `--threads N` caps the sweep engine's point-level parallelism (`0`,
//! the default, uses every core; `1` forces the serial schedule — the
//! emitted figures are identical either way). The `profile` target runs
//! the mixed workload with phase tracing and writes `profile.json`,
//! `profile.prom` and `profile.otlp.json` (into the `--csv` directory if
//! given, else `results/`). The `timeline` target runs the mixed workload
//! under a fault plan with virtual-time gauge sampling enabled and writes
//! `timeline.json`, `timeline.csv`, a Perfetto-loadable `trace.json`, and
//! `metrics.prom`/`metrics.otlp.json` — the Prometheus, OTLP and Chrome
//! trace exports all render the same end-of-run snapshot. The `bottleneck`
//! target sweeps the attribution scenarios over the worker ladder and
//! writes `bottlenecks.json` plus a `bottlenecks.md` summary table.
//! `--shards N` runs every simulation on the sharded executor with `N`
//! shards — the emitted figures are bit-identical to the serial run (the
//! sharded executor reproduces the serial event history exactly); only
//! wall-clock time changes. The `fleet` target (opt-in, not part of
//! `all`) sweeps the multi-tenant fleet scenario — the partition-parallel
//! workload where sharding gives real speedup — over the tenant ladder.
//! The `bench` target runs the engine micro-benchmark ladder (serial
//! always; sharded rungs too when `--shards` > 1, climbing through a
//! 100 000-actor rung to a 1 000 000-actor smoke rung that runs
//! *windowed* under adaptive lookahead) plus a timed pass over the
//! figure suite, writes `BENCH_engine.json`, and appends one
//! `azurebench-bench-history/v1` row per rung to `BENCH_history.jsonl`
//! (host/commit/backend provenance, stale-timestamp appends refused) so
//! engine throughput is tracked over time — `bench_check trend` gates on
//! deviation from that history. `--ladder quick` restricts the climb to
//! the two cheapest rungs (same rung keys as the full ladder, so history
//! series stay comparable) — CI uses it to build per-backend trend
//! history without paying for the full climb.

use azsim_fabric::BackendKind;
use azurebench::{
    alg1_blob, alg3_queue, alg4_queue, alg5_table, benchhist, chaos, fig9, verify, BenchConfig,
    Figure,
};
use std::io::Write;
use std::time::Instant;

struct Args {
    targets: Vec<String>,
    scale: f64,
    workers: Option<Vec<usize>>,
    seed: Option<u64>,
    csv_dir: Option<String>,
    threads: usize,
    shards: u32,
    backends: Vec<BackendKind>,
    timeline: bool,
    extrapolate: bool,
    verify_seeds: usize,
    naive: bool,
    expect_violation: bool,
    quick_ladder: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        targets: Vec::new(),
        scale: 1.0,
        workers: None,
        seed: None,
        csv_dir: None,
        threads: 0,
        shards: 1,
        backends: vec![BackendKind::Was],
        timeline: false,
        extrapolate: false,
        verify_seeds: 50,
        naive: false,
        expect_violation: false,
        quick_ladder: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = v.parse().map_err(|_| format!("bad scale {v:?}"))?;
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                let ws: Result<Vec<usize>, _> = v.split(',').map(|s| s.parse()).collect();
                args.workers = Some(ws.map_err(|_| format!("bad workers list {v:?}"))?);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = Some(v.parse().map_err(|_| format!("bad seed {v:?}"))?);
            }
            "--csv" => {
                args.csv_dir = Some(it.next().ok_or("--csv needs a directory")?);
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                args.shards = v.parse().map_err(|_| format!("bad shard count {v:?}"))?;
                if args.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--backend" => {
                let v = it.next().ok_or("--backend needs a value")?;
                let mut kinds = Vec::new();
                for tok in v.split(',') {
                    if tok == "all" {
                        kinds.extend(BackendKind::ALL);
                    } else {
                        kinds.push(
                            BackendKind::parse(tok)
                                .ok_or_else(|| format!("unknown backend {tok:?}"))?,
                        );
                    }
                }
                if kinds.is_empty() {
                    return Err("--backend needs at least one backend".into());
                }
                kinds.dedup();
                args.backends = kinds;
            }
            "--timeline" => args.timeline = true,
            "--extrapolate" => args.extrapolate = true,
            "--verify-seeds" => {
                let v = it.next().ok_or("--verify-seeds needs a value")?;
                args.verify_seeds = v.parse().map_err(|_| format!("bad seed count {v:?}"))?;
            }
            "--naive" => args.naive = true,
            "--expect-violation" => args.expect_violation = true,
            "--ladder" => {
                let v = it.next().ok_or("--ladder needs quick|full")?;
                args.quick_ladder = match v.as_str() {
                    "quick" => true,
                    "full" => false,
                    _ => return Err(format!("bad ladder {v:?} (expected quick or full)")),
                };
            }
            t if !t.starts_with('-') => args.targets.push(t.to_owned()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Write one CSV per figure, suffixing the file name with the backend
/// (`sfx` is empty for `was`, so the 15 Azure goldens keep their names).
fn emit(figures: &[Figure], csv_dir: &Option<String>, sfx: &str) {
    for f in figures {
        println!("{}", f.render_table());
        if let Some(dir) = csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{}{sfx}.csv", f.id);
            let mut file = std::fs::File::create(&path).expect("create csv");
            file.write_all(f.to_csv().as_bytes()).expect("write csv");
            eprintln!("wrote {path}");
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if args.targets.is_empty() {
        eprintln!(
            "usage: figures [table1|fig4|fig5|fig6|fig7|fig8|fig9|latency|profile|timeline|\
             bottleneck|chaos|fleet|verify|bench|all]... \
             [--scale S] [--workers 1,2,...] [--seed N] [--csv DIR] [--threads N] [--shards N] \
             [--backend was,s3,gcs,file|all] [--ladder quick|full] \
             [--timeline] [--extrapolate] [--verify-seeds N] [--naive] [--expect-violation]"
        );
        std::process::exit(2);
    }

    let mut cfg = BenchConfig::paper()
        .with_scale(args.scale)
        .with_sweep_threads(args.threads)
        .with_shards(args.shards);
    if let Some(w) = args.workers.clone() {
        cfg = cfg.with_workers(w);
    }
    if let Some(s) = args.seed {
        cfg.seed = s;
    }
    if args.timeline {
        // Gauge sampling is passive: the emitted figures are bit-identical
        // with or without this flag; only wall-clock time changes (and the
        // `bench` target then measures exactly that overhead).
        cfg.params.timeline_resolution = Some(azurebench::timeline::DEFAULT_RESOLUTION);
    }
    eprintln!(
        "# AzureBench figures — scale {}, workers {:?}, seed {}, shards {}, backends [{}]{}",
        cfg.scale,
        cfg.workers,
        cfg.seed,
        cfg.shards,
        args.backends
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join(", "),
        if args.timeline {
            ", timeline sampling ON"
        } else {
            ""
        }
    );

    // One timestamp per invocation: a multi-backend `bench` run appends
    // every backend's rungs under the same unix_ts, so `bench_check trend`
    // sees them all as one run and gates every backend's series (not just
    // whichever backend happened to finish last).
    let bench_ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());

    // One full pass per selected backend. `was` keeps the unsuffixed
    // output names (the committed goldens); peers suffix every artifact
    // with `-{backend}` so one run can emit all four side by side.
    for &kind in &args.backends {
        if args.backends.len() > 1 {
            eprintln!("# ---- backend: {kind} ----");
        }
        run_targets(&args, cfg.clone().with_backend(kind), kind, bench_ts);
    }
}

/// Run every requested target once, against one backend.
fn run_targets(args: &Args, cfg: BenchConfig, kind: BackendKind, bench_ts: u64) {
    let sfx = if kind == BackendKind::Was {
        String::new()
    } else {
        format!("-{}", kind.name())
    };
    let sfx = sfx.as_str();
    let want = |t: &str| args.targets.iter().any(|x| x == t || x == "all");

    if want("table1") {
        println!(
            "# Table I — VM configurations\n{}",
            azsim_compute::vm::render_table1()
        );
    }
    if want("fig4") || want("fig5") {
        let t = Instant::now();
        let figs = alg1_blob::figures_4_and_5(&cfg);
        eprintln!("# alg1 (blob) swept in {:.1?}", t.elapsed());
        let (fig4, fig5): (Vec<Figure>, Vec<Figure>) =
            figs.into_iter().partition(|f| f.id.starts_with("fig4"));
        if want("fig4") {
            emit(&fig4, &args.csv_dir, sfx);
        }
        if want("fig5") {
            emit(&fig5, &args.csv_dir, sfx);
        }
    }
    if want("fig6") {
        let t = Instant::now();
        let figs = alg3_queue::figure_6(&cfg);
        eprintln!("# alg3 (queue, separate) swept in {:.1?}", t.elapsed());
        emit(&figs, &args.csv_dir, sfx);
    }
    if want("fig7") {
        let t = Instant::now();
        let figs = alg4_queue::figure_7(&cfg);
        eprintln!("# alg4 (queue, shared) swept in {:.1?}", t.elapsed());
        emit(&figs, &args.csv_dir, sfx);
    }
    if want("fig8") {
        let t = Instant::now();
        let figs = alg5_table::figure_8(&cfg);
        eprintln!("# alg5 (table) swept in {:.1?}", t.elapsed());
        emit(&figs, &args.csv_dir, sfx);
    }
    if want("latency") {
        let t = Instant::now();
        let report = azurebench::latency::profile_mixed(&cfg, 8, 50);
        eprintln!("# latency profile swept in {:.1?}", t.elapsed());
        println!(
            "# latency — per-op distributions (mixed workload, 8 workers)\n{}",
            report.render()
        );
    }
    if want("fig9") {
        let t = Instant::now();
        let fig = fig9::figure_9(&cfg);
        eprintln!("# fig9 (per-op) swept in {:.1?}", t.elapsed());
        emit(std::slice::from_ref(&fig), &args.csv_dir, sfx);
        if args.extrapolate {
            let t = Instant::now();
            let fig = fig9::figure_9_extrapolated(&cfg);
            eprintln!(
                "# fig9 extrapolation ({} workers) swept in {:.1?}",
                fig9::EXTRAPOLATE_WORKERS,
                t.elapsed()
            );
            emit(std::slice::from_ref(&fig), &args.csv_dir, sfx);
        }
    }
    if want("profile") {
        let t = Instant::now();
        let report = azurebench::profile::run_profile(&cfg, &cfg.workers, cfg.scaled(50));
        eprintln!("# profile (phase breakdown) swept in {:.1?}", t.elapsed());
        println!(
            "# profile — per-phase latency breakdown (mixed workload)\n{}",
            report.render()
        );
        let dir = args.csv_dir.clone().unwrap_or_else(|| "results".to_owned());
        std::fs::create_dir_all(&dir).expect("create profile dir");
        let json_path = format!("{dir}/profile{sfx}.json");
        std::fs::write(&json_path, report.to_json()).expect("write profile.json");
        eprintln!("wrote {json_path}");
        let prom_path = format!("{dir}/profile{sfx}.prom");
        std::fs::write(&prom_path, report.to_prometheus()).expect("write profile.prom");
        eprintln!("wrote {prom_path}");
        let otlp_path = format!("{dir}/profile{sfx}.otlp.json");
        std::fs::write(&otlp_path, report.to_otlp()).expect("write profile.otlp.json");
        eprintln!("wrote {otlp_path}");
    }
    if want("timeline") {
        let t = Instant::now();
        let report = azurebench::timeline::run_timeline(&cfg, 8, cfg.scaled(50));
        eprintln!("# timeline (gauge sampling) swept in {:.1?}", t.elapsed());
        println!(
            "# timeline — virtual-time gauge/counter series (mixed workload + faults)\n{}",
            report.render()
        );
        let dir = args.csv_dir.clone().unwrap_or_else(|| "results".to_owned());
        std::fs::create_dir_all(&dir).expect("create timeline dir");
        for (name, ext, body) in [
            ("timeline", "json", report.to_json()),
            ("timeline", "csv", report.to_csv()),
            ("trace", "json", report.to_chrome_trace()),
            ("metrics", "prom", report.to_prometheus()),
            ("metrics", "otlp.json", report.to_otlp()),
        ] {
            let path = format!("{dir}/{name}{sfx}.{ext}");
            std::fs::write(&path, body).expect("write timeline export");
            eprintln!("wrote {path}");
        }
    }
    if want("bottleneck") {
        let t = Instant::now();
        let report = azurebench::bottleneck::run_bottlenecks(&cfg, &cfg.workers);
        eprintln!(
            "# bottleneck (saturation attribution) swept in {:.1?}",
            t.elapsed()
        );
        println!("{}", report.render_markdown());
        let dir = args.csv_dir.clone().unwrap_or_else(|| "results".to_owned());
        std::fs::create_dir_all(&dir).expect("create bottleneck dir");
        let json_path = format!("{dir}/bottlenecks{sfx}.json");
        std::fs::write(&json_path, report.to_json()).expect("write bottlenecks.json");
        eprintln!("wrote {json_path}");
        let md_path = format!("{dir}/bottlenecks{sfx}.md");
        std::fs::write(&md_path, report.render_markdown()).expect("write bottlenecks.md");
        eprintln!("wrote {md_path}");
    }
    if want("chaos") {
        let t = Instant::now();
        let figs = chaos::figure_chaos(&cfg, 8, &[0.0, 0.25, 0.5, 0.75, 1.0]);
        eprintln!("# chaos (fault injection) swept in {:.1?}", t.elapsed());
        emit(&figs, &args.csv_dir, sfx);
    }
    // `fleet` is opt-in only (not part of `all`): it is this
    // reproduction's own scaling scenario, not a paper figure.
    if args.targets.iter().any(|t| t == "fleet") {
        let t = Instant::now();
        let figs = azurebench::fleet::figure_fleet(&cfg);
        eprintln!("# fleet (multi-tenant) swept in {:.1?}", t.elapsed());
        emit(&figs, &args.csv_dir, sfx);
    }
    // `verify` is opt-in only (not part of `all`): it runs the resilience
    // chaos search, not a figure, and its exit code reports the verdict.
    if args.targets.iter().any(|t| t == "verify") {
        run_verify_target(args, kind, sfx);
    }
    // `bench` is opt-in only (not part of `all`): it re-runs the figure
    // suite purely for timing and writes BENCH_engine.json.
    if args.targets.iter().any(|t| t == "bench") {
        run_bench(&cfg, &args.csv_dir, kind, sfx, args.quick_ladder, bench_ts);
    }
}

/// The `verify` target: chaos-search the fault-plan space for invariant
/// violations. Exit code 0 = expectation met (clean under the hardened
/// policy, or a violation found when `--expect-violation` was given);
/// 1 = unexpected outcome. On violation, the shrunk reproducer is written
/// as `repro-<policy>.json`.
fn run_verify_target(args: &Args, kind: BackendKind, sfx: &str) {
    let vcfg = verify::VerifyConfig {
        seed: args.seed.unwrap_or(2012),
        hardened: !args.naive,
        backend: kind,
        ..verify::VerifyConfig::quick(!args.naive)
    };
    let seeds: Vec<u64> = (0..args.verify_seeds as u64).collect();
    let t = Instant::now();
    let report = verify::chaos_search(&vcfg, &seeds, args.threads);
    eprintln!(
        "# verify: {} runs ({} boundary + {} seeded, {} policy) in {:.1?}",
        report.runs,
        report.boundary_runs,
        seeds.len(),
        if vcfg.hardened { "hardened" } else { "naive" },
        t.elapsed()
    );
    match &report.failure {
        None => {
            println!("verify: zero invariant violations in {} runs", report.runs);
            if args.expect_violation {
                eprintln!("error: expected a violation but found none");
                std::process::exit(1);
            }
        }
        Some(case) => {
            let doc = verify::ReproDoc::new(&vcfg, case);
            println!(
                "verify: VIOLATION — {} (plan shrunk {} → {} ingredients)",
                case.violations
                    .iter()
                    .map(|v| v.invariant.as_str())
                    .collect::<Vec<_>>()
                    .join(", "),
                verify::plan_events(&case.plan),
                verify::plan_events(&case.shrunk),
            );
            for v in &case.violations {
                println!("  {}: {}", v.invariant, v.detail);
            }
            let dir = args.csv_dir.clone().unwrap_or_else(|| "results".to_owned());
            std::fs::create_dir_all(&dir).expect("create repro dir");
            let path = format!(
                "{dir}/repro-{}{sfx}.json",
                if vcfg.hardened { "hardened" } else { "naive" }
            );
            std::fs::write(&path, doc.to_json()).expect("write reproducer");
            eprintln!("wrote {path}");
            if !args.expect_violation {
                std::process::exit(1);
            }
        }
    }
}

/// A free model: every request completes in 1 µs of virtual time, so the
/// measured cost is the engine itself (event heap, batch-wake rounds,
/// actor handoffs) — the overhead every simulated storage call pays.
struct NullModel;

impl azsim_core::runtime::Model for NullModel {
    type Req = u64;
    type Resp = u64;
    fn handle(
        &mut self,
        now: azsim_core::SimTime,
        _actor: azsim_core::runtime::ActorId,
        req: u64,
    ) -> (azsim_core::SimTime, u64) {
        (now + std::time::Duration::from_micros(1), req)
    }
}

impl azsim_core::ShardableModel for NullModel {
    // Stateless: every partition is the same free model, so the striped
    // engine ladder (one partition per actor) splits trivially.
    fn split(self, partitions: u32) -> Vec<Self> {
        (0..partitions).map(|_| NullModel).collect()
    }
    fn merge(_parts: Vec<Self>) -> Self {
        NullModel
    }
}

/// One measured rung of the engine ladder.
struct EngineRun {
    ops: u64,
    wall: f64,
    /// Events processed per executor shard (length = shard count).
    shard_events: Vec<u64>,
    /// Mean lookahead-window multiple across shards that ran windows
    /// (0.0 for serial and free-run rungs).
    window_multiple: f64,
}

/// Measure raw engine throughput: `actors` workers each issuing `per_actor`
/// back-to-back requests against [`NullModel`]. With `shards == 1` this is
/// the serial coroutine executor (the committed-baseline path); with more,
/// the sharded executor under a striped one-partition-per-actor plan —
/// free-running (embarrassingly parallel, no barriers) unless `windowed`,
/// which adds a lookahead hop plus adaptive window tuning so the rung
/// exercises the synchronized engine path.
fn engine_ops(actors: usize, per_actor: u64, shards: u32, windowed: bool) -> EngineRun {
    let body = move |ctx: azsim_core::ActorCtx<NullModel>| async move {
        let mut acc = 0u64;
        for i in 0..per_actor {
            acc = acc.wrapping_add(ctx.call(i).await);
        }
        acc
    };
    let t = Instant::now();
    let report = if shards <= 1 {
        azsim_core::Simulation::new(NullModel, 1).run_workers(actors, body)
    } else {
        let mut plan = azsim_core::ShardPlan::striped(actors, actors as u32, shards);
        if windowed {
            plan = plan
                .with_hop(std::time::Duration::from_micros(2))
                .with_window_tuning(azsim_core::WindowTuning::Adaptive { target: 0.25 });
        }
        azsim_core::ShardedSimulation::new(NullModel, 1, plan).run_workers(body)
    };
    let active: Vec<f64> = report
        .window_stats
        .iter()
        .filter(|w| w.windows > 0)
        .map(|w| w.mean_multiple)
        .collect();
    let window_multiple = if active.is_empty() {
        0.0
    } else {
        active.iter().sum::<f64>() / active.len() as f64
    };
    EngineRun {
        ops: report.requests,
        wall: t.elapsed().as_secs_f64(),
        shard_events: report.shard_events,
        window_multiple,
    }
}

/// The `bench` target: engine micro-benchmark plus a timed pass over every
/// figure at the current config, written as `BENCH_engine.json` (into the
/// `--csv` directory if given, else the working directory).
fn run_bench(
    cfg: &BenchConfig,
    csv_dir: &Option<String>,
    kind: BackendKind,
    sfx: &str,
    quick: bool,
    ts: u64,
) {
    let backend = kind.name();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut lines = String::from("{\n");

    // The ladder climbs through 100 000 actors to a 1 000 000-actor smoke
    // rung; per-actor ops shrink past 512 so every rung stays near a
    // constant 25.6 M total ops (25 M at the million-actor rung).
    const LADDER: [(usize, u64); 9] = [
        (1, 50_000),
        (8, 50_000),
        (32, 50_000),
        (128, 50_000),
        (512, 50_000),
        (2_048, 12_500),
        (10_000, 2_560),
        (100_000, 256),
        (1_000_000, 25),
    ];
    // `--ladder quick`: the two cheapest representative rungs, with the
    // same (actors, per-actor) tuples as the full ladder so history
    // series stay comparable across ladder modes.
    const QUICK: [(usize, u64); 2] = [(1, 50_000), (128, 50_000)];
    let ladder: &[(usize, u64)] = if quick { &QUICK } else { &LADDER };
    let mut rungs: Vec<(usize, u64, u32, bool)> =
        ladder.iter().map(|&(a, p)| (a, p, 1, false)).collect();
    if cfg.shards > 1 {
        // Sharded rungs from 8 actors up. Rungs below a million actors
        // free-run (one partition per actor, no barriers); the
        // million-actor smoke rung runs windowed under adaptive lookahead
        // so the flagship rung exercises the synchronized engine path.
        rungs.extend(
            ladder
                .iter()
                .filter(|&&(a, _)| a >= 8)
                .map(|&(a, p)| (a, p, cfg.shards, a >= 1_000_000)),
        );
    }

    let (host, commit) = (benchhist::detect_host(), benchhist::detect_commit());
    let mut engines = Vec::new();
    let mut history_rows = Vec::new();
    for (actors, per_actor, shards, windowed) in rungs {
        let run = engine_ops(actors, per_actor, shards, windowed);
        let (ops, wall) = (run.ops, run.wall);
        let rate = ops as f64 / wall;
        eprintln!(
            "# engine: {actors} actors x {shards} shard(s){}, {ops} simulated ops \
             in {wall:.3}s = {rate:.0} ops/s",
            if windowed {
                format!(" (windowed, mean multiple {:.3})", run.window_multiple)
            } else {
                String::new()
            }
        );
        let per_shard = run
            .shard_events
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        engines.push(format!(
            "    {{ \"backend\": \"{backend}\", \"actors\": {actors}, \"shards\": {shards}, \
             \"cores\": {cores}, \"simulated_ops\": {ops}, \"wall_seconds\": {wall:.6}, \
             \"ops_per_second\": {rate:.1}, \"window_multiple\": {:.4}, \
             \"per_shard_events\": [{per_shard}] }}",
            run.window_multiple
        ));
        // The snapshot rounds wall/ops-per-second; the history row must
        // carry the same rounded values so `bench_check` sees snapshot and
        // history agree on the latest run.
        history_rows.push(benchhist::HistoryRow {
            unix_ts: ts,
            host: host.clone(),
            commit: commit.clone(),
            backend: backend.to_owned(),
            scale: cfg.scale,
            seed: cfg.seed,
            actors: actors as u64,
            shards: shards as u64,
            cores: cores as u64,
            simulated_ops: ops,
            wall_seconds: format!("{wall:.6}").parse().unwrap_or(wall),
            ops_per_second: format!("{rate:.1}").parse().unwrap_or(rate),
            per_shard_events: run.shard_events.clone(),
        });
    }
    lines.push_str("  \"engine\": [\n");
    lines.push_str(&engines.join(",\n"));
    lines.push_str("\n  ],\n");

    type FigureFn = fn(&BenchConfig) -> Vec<Figure>;
    let figures: [(&str, FigureFn); 5] = [
        ("alg1_blob", alg1_blob::figures_4_and_5),
        ("alg3_queue", alg3_queue::figure_6),
        ("alg4_queue", alg4_queue::figure_7),
        ("alg5_table", alg5_table::figure_8),
        ("fig9", |c| vec![fig9::figure_9(c)]),
    ];
    let mut timed = Vec::new();
    for (name, f) in figures {
        let t = Instant::now();
        let figs = f(cfg);
        let wall = t.elapsed().as_secs_f64();
        eprintln!(
            "# bench: {name} swept in {wall:.3}s ({} figures)",
            figs.len()
        );
        timed.push(format!(
            "    {{ \"figure\": \"{name}\", \"wall_seconds\": {wall:.6} }}"
        ));
    }
    lines.push_str("  \"figures\": [\n");
    lines.push_str(&timed.join(",\n"));
    lines.push_str("\n  ],\n");
    lines.push_str(&format!(
        "  \"config\": {{ \"backend\": \"{backend}\", \"scale\": {}, \"workers\": {:?}, \
         \"seed\": {}, \"sweep_threads\": {}, \"shards\": {}, \"cores\": {} }}\n",
        cfg.scale, cfg.workers, cfg.seed, cfg.sweep_threads, cfg.shards, cores
    ));
    lines.push_str("}\n");

    let dir = csv_dir.clone().unwrap_or_else(|| ".".to_owned());
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let path = format!("{dir}/BENCH_engine{sfx}.json");
    std::fs::write(&path, &lines).expect("write BENCH_engine.json");
    eprintln!("wrote {path}");

    // Append one v1 row per rung so engine throughput is tracked over time
    // (the full export above is a snapshot, overwritten every run). The
    // append refuses runs older than the history tail — a skewed clock or a
    // replayed run must not corrupt the trend order.
    let history_path = format!("{dir}/BENCH_history.jsonl");
    match benchhist::append_rows(&history_path, &history_rows) {
        Ok(()) => eprintln!(
            "appended {history_path} ({} rung(s) at unix_ts {ts})",
            history_rows.len()
        ),
        Err(e) => {
            eprintln!("error: {history_path}: {e}");
            std::process::exit(1);
        }
    }
}
