//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [table1|fig4|fig5|fig6|fig7|fig8|fig9|latency|chaos|all]...
//!         [--scale S] [--workers 1,2,4,...] [--seed N] [--csv DIR]
//! ```
//!
//! With no target, prints usage. `--scale 1.0` (default) reproduces the
//! paper's workload volumes; smaller scales shrink them proportionally.
//! `--csv DIR` additionally writes one CSV per figure into `DIR`.

use azurebench::{alg1_blob, alg3_queue, alg4_queue, alg5_table, chaos, fig9, BenchConfig, Figure};
use std::io::Write;
use std::time::Instant;

struct Args {
    targets: Vec<String>,
    scale: f64,
    workers: Option<Vec<usize>>,
    seed: Option<u64>,
    csv_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        targets: Vec::new(),
        scale: 1.0,
        workers: None,
        seed: None,
        csv_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = v.parse().map_err(|_| format!("bad scale {v:?}"))?;
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                let ws: Result<Vec<usize>, _> = v.split(',').map(|s| s.parse()).collect();
                args.workers = Some(ws.map_err(|_| format!("bad workers list {v:?}"))?);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = Some(v.parse().map_err(|_| format!("bad seed {v:?}"))?);
            }
            "--csv" => {
                args.csv_dir = Some(it.next().ok_or("--csv needs a directory")?);
            }
            t if !t.starts_with('-') => args.targets.push(t.to_owned()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn emit(figures: &[Figure], csv_dir: &Option<String>) {
    for f in figures {
        println!("{}", f.render_table());
        if let Some(dir) = csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{}.csv", f.id);
            let mut file = std::fs::File::create(&path).expect("create csv");
            file.write_all(f.to_csv().as_bytes()).expect("write csv");
            eprintln!("wrote {path}");
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if args.targets.is_empty() {
        eprintln!(
            "usage: figures [table1|fig4|fig5|fig6|fig7|fig8|fig9|latency|chaos|all]... \
             [--scale S] [--workers 1,2,...] [--seed N] [--csv DIR]"
        );
        std::process::exit(2);
    }

    let mut cfg = BenchConfig::paper().with_scale(args.scale);
    if let Some(w) = args.workers {
        cfg = cfg.with_workers(w);
    }
    if let Some(s) = args.seed {
        cfg.seed = s;
    }
    eprintln!(
        "# AzureBench figures — scale {}, workers {:?}, seed {}",
        cfg.scale, cfg.workers, cfg.seed
    );

    let want = |t: &str| args.targets.iter().any(|x| x == t || x == "all");

    if want("table1") {
        println!(
            "# Table I — VM configurations\n{}",
            azsim_compute::vm::render_table1()
        );
    }
    if want("fig4") || want("fig5") {
        let t = Instant::now();
        let figs = alg1_blob::figures_4_and_5(&cfg);
        eprintln!("# alg1 (blob) swept in {:.1?}", t.elapsed());
        let (fig4, fig5): (Vec<Figure>, Vec<Figure>) =
            figs.into_iter().partition(|f| f.id.starts_with("fig4"));
        if want("fig4") {
            emit(&fig4, &args.csv_dir);
        }
        if want("fig5") {
            emit(&fig5, &args.csv_dir);
        }
    }
    if want("fig6") {
        let t = Instant::now();
        let figs = alg3_queue::figure_6(&cfg);
        eprintln!("# alg3 (queue, separate) swept in {:.1?}", t.elapsed());
        emit(&figs, &args.csv_dir);
    }
    if want("fig7") {
        let t = Instant::now();
        let figs = alg4_queue::figure_7(&cfg);
        eprintln!("# alg4 (queue, shared) swept in {:.1?}", t.elapsed());
        emit(&figs, &args.csv_dir);
    }
    if want("fig8") {
        let t = Instant::now();
        let figs = alg5_table::figure_8(&cfg);
        eprintln!("# alg5 (table) swept in {:.1?}", t.elapsed());
        emit(&figs, &args.csv_dir);
    }
    if want("latency") {
        let t = Instant::now();
        let mut report = azurebench::latency::profile_mixed(&cfg, 8, 50);
        eprintln!("# latency profile swept in {:.1?}", t.elapsed());
        println!(
            "# latency — per-op distributions (mixed workload, 8 workers)\n{}",
            report.render()
        );
    }
    if want("fig9") {
        let t = Instant::now();
        let fig = fig9::figure_9(&cfg);
        eprintln!("# fig9 (per-op) swept in {:.1?}", t.elapsed());
        emit(std::slice::from_ref(&fig), &args.csv_dir);
    }
    if want("chaos") {
        let t = Instant::now();
        let figs = chaos::figure_chaos(&cfg, 8, &[0.0, 0.25, 0.5, 0.75, 1.0]);
        eprintln!("# chaos (fault injection) swept in {:.1?}", t.elapsed());
        emit(&figs, &args.csv_dir);
    }
}
