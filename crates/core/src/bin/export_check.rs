//! Validate a `figures` JSON export (profile, timeline, bottleneck, …).
//!
//! ```text
//! export_check <export.json> <export.schema.json> [export.prom]
//! ```
//!
//! Checks the JSON document against the checked-in schema (a small
//! JSON-Schema subset: `type`, `required`, `properties`, `items`, `const`)
//! and, when a Prometheus file is given, that every required metric family
//! has a `# TYPE` declaration and at least one sample. Exit code 0 means
//! the export is well-formed; any violation prints its JSON path and exits
//! non-zero — CI runs this after reduced-scale `figures profile`,
//! `figures timeline` and `figures bottleneck` passes.

use azurebench::schema::validate;
use serde::value::{find, parse, Value};

/// Metric families the Prometheus export must expose.
const REQUIRED_FAMILIES: [&str; 5] = [
    "azsim_ops_total",
    "azsim_bytes_total",
    "azsim_fault_injections_total",
    "azsim_partition_ops_total",
    "azsim_phase_latency_seconds",
];

/// Check the Prometheus text export for the required families.
fn check_prometheus(text: &str, errors: &mut Vec<String>) {
    for family in REQUIRED_FAMILIES {
        let has_type = text
            .lines()
            .any(|l| l.starts_with(&format!("# TYPE {family} ")));
        if !has_type {
            errors.push(format!("prom: missing `# TYPE {family}` declaration"));
        }
        let has_sample = text
            .lines()
            .any(|l| !l.starts_with('#') && l.starts_with(family));
        if !has_sample {
            errors.push(format!("prom: no samples for family {family}"));
        }
    }
}

fn load(path: &str) -> Value {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse(&bytes).unwrap_or_else(|e| {
        eprintln!("error: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 || args.len() > 3 {
        eprintln!("usage: export_check <export.json> <export.schema.json> [export.prom]");
        std::process::exit(2);
    }

    let doc = load(&args[0]);
    let schema = load(&args[1]);
    let mut errors = Vec::new();
    validate(&doc, &schema, "$", &mut errors);

    if let Some(prom_path) = args.get(2) {
        let text = std::fs::read_to_string(prom_path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {prom_path}: {e}");
            std::process::exit(2);
        });
        check_prometheus(&text, &mut errors);
    }

    if errors.is_empty() {
        let tag = doc
            .as_object()
            .and_then(|m| find(m, "schema"))
            .and_then(|v| v.as_str())
            .unwrap_or("?");
        println!(
            "export_check: OK ({tag} schema valid{})",
            if args.len() == 3 {
                ", prometheus families present"
            } else {
                ""
            }
        );
    } else {
        for e in &errors {
            eprintln!("export_check: {e}");
        }
        eprintln!("export_check: {} violation(s)", errors.len());
        std::process::exit(1);
    }
}
