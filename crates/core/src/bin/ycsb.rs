//! Run the YCSB-style extension workloads (A–F) against the simulated
//! Table storage and print a per-op latency table.
//!
//! ```text
//! ycsb [A|B|C|D|E|F|all]... [--workers N] [--records N] [--ops N]
//!      [--value-size BYTES] [--theta T]
//! ```

use azurebench::ycsb::{run_ycsb, YcsbConfig, YcsbOp, YcsbWorkload};
use azurebench::BenchConfig;

fn main() {
    let mut workloads: Vec<YcsbWorkload> = Vec::new();
    let mut workers = 8usize;
    let mut ycsb = YcsbConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next_num = |flag: &str| -> f64 {
            it.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .parse()
                .unwrap_or_else(|_| panic!("bad value for {flag}"))
        };
        match a.as_str() {
            "A" | "a" => workloads.push(YcsbWorkload::A),
            "B" | "b" => workloads.push(YcsbWorkload::B),
            "C" | "c" => workloads.push(YcsbWorkload::C),
            "D" | "d" => workloads.push(YcsbWorkload::D),
            "E" | "e" => workloads.push(YcsbWorkload::E),
            "F" | "f" => workloads.push(YcsbWorkload::F),
            "all" => workloads.extend(YcsbWorkload::ALL),
            "--workers" => workers = next_num("--workers") as usize,
            "--records" => ycsb.records = next_num("--records") as usize,
            "--ops" => ycsb.ops_per_worker = next_num("--ops") as usize,
            "--value-size" => ycsb.value_size = next_num("--value-size") as usize,
            "--theta" => ycsb.theta = next_num("--theta"),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    if workloads.is_empty() {
        eprintln!(
            "usage: ycsb [A|B|C|D|E|F|all]... [--workers N] [--records N] \
             [--ops N] [--value-size BYTES] [--theta T]"
        );
        std::process::exit(2);
    }

    let bench = BenchConfig::paper();
    eprintln!(
        "# YCSB on simulated Azure Table storage — {} workers, {} records, \
         {} ops/worker, {}B values, zipfian θ={}",
        workers, ycsb.records, ycsb.ops_per_worker, ycsb.value_size, ycsb.theta
    );
    println!(
        "{:<8} | {:>8} | {:>6} | {:>12} | {:>12} | {:>12}",
        "workload", "op", "count", "mean ms", "min ms", "max ms"
    );
    for wl in workloads {
        let result = run_ycsb(&bench, &ycsb, wl, workers);
        let mut ops: Vec<(&YcsbOp, _)> = result.iter().collect();
        ops.sort_by_key(|(op, _)| format!("{op:?}"));
        for (op, stats) in ops {
            println!(
                "{:<8} | {:>8} | {:>6} | {:>12.3} | {:>12.3} | {:>12.3}",
                wl.label(),
                format!("{op:?}"),
                stats.count(),
                stats.mean() * 1e3,
                stats.min() * 1e3,
                stats.max() * 1e3
            );
        }
    }
}
