//! Figure 9: per-operation time for Table (insert, query, update, delete)
//! and Queue storage (put, peek, get) services, versus worker count.
//!
//! The paper reports "the average time taken by an operation" and concludes
//! that "the Queue storage scales better than the Table storage as the
//! number of workers increases". We derive both halves from the same runs
//! that feed Figures 6 and 8, using a 32 KB queue message and a 32 KB
//! entity so the payloads are comparable.

use crate::alg3_queue::{run_alg3, QueueOp};
use crate::alg5_table::{run_alg5, TableOp};
use crate::config::BenchConfig;
use crate::report::{Figure, Series};

/// Payload size (bytes) used for the per-op comparison.
pub const FIG9_PAYLOAD: usize = 32 << 10;

/// Beyond-paper worker count appended to the ladder by
/// [`figure_9_extrapolated`]. The paper stops near 100 workers; the
/// coroutine executor makes a 256-worker point affordable.
pub const EXTRAPOLATE_WORKERS: usize = 256;

/// Produce Figure 9: seven series (four table ops, three queue ops) of
/// mean per-operation seconds over the worker ladder.
pub fn figure_9(cfg: &BenchConfig) -> Figure {
    let mut fig = Figure::new(
        "fig9",
        "Per-operation time for Table and Queue storage",
        "workers",
        "seconds (mean per op)",
    );
    for op in TableOp::ALL {
        fig.series
            .push(Series::new(format!("table-{}", op.label())));
    }
    for op in QueueOp::ALL {
        fig.series
            .push(Series::new(format!("queue-{}", op.label())));
    }

    let swept = crate::sweep::sweep(cfg, |cfg, w| (run_alg5(cfg, w), run_alg3(cfg, w)));
    for (&w, (table, queue)) in cfg.workers.iter().zip(swept) {
        let x = w as f64;
        for (i, op) in TableOp::ALL.iter().enumerate() {
            if let Some((_, per_op)) = table.get(&(FIG9_PAYLOAD, *op)) {
                fig.series[i].push(x, *per_op);
            }
        }
        for (i, op) in QueueOp::ALL.iter().enumerate() {
            if let Some((_, per_op)) = queue.get(&(FIG9_PAYLOAD, *op)) {
                fig.series[TableOp::ALL.len() + i].push(x, *per_op);
            }
        }
    }
    fig
}

/// Figure 9 with the worker ladder extended past the paper's range to
/// [`EXTRAPOLATE_WORKERS`]. Emitted as a separate figure
/// (`fig9-extrapolated`) so the paper-faithful `fig9` CSV stays
/// byte-stable; any ladder entries at or beyond the extrapolation point
/// are dropped first so the appended point is always the maximum.
pub fn figure_9_extrapolated(cfg: &BenchConfig) -> Figure {
    let mut cfg = cfg.clone();
    cfg.workers.retain(|&w| w < EXTRAPOLATE_WORKERS);
    cfg.workers.push(EXTRAPOLATE_WORKERS);
    let mut fig = figure_9(&cfg);
    fig.id = "fig9-extrapolated".to_owned();
    fig.title = format!(
        "{} — extrapolated to {EXTRAPOLATE_WORKERS} workers",
        fig.title
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_has_all_seven_series() {
        let cfg = BenchConfig::paper()
            .with_scale(0.01)
            .with_workers(vec![1, 4]);
        let fig = figure_9(&cfg);
        assert_eq!(fig.series.len(), 7);
        for s in &fig.series {
            assert_eq!(s.points.len(), 2, "series {} incomplete", s.name);
            assert!(s.points.iter().all(|(_, y)| *y > 0.0));
        }
    }

    #[test]
    fn extrapolated_figure_ends_at_the_256_worker_point() {
        let cfg = BenchConfig::paper()
            .with_scale(0.002)
            .with_workers(vec![1, 512]); // 512 must be dropped, 256 appended
        let fig = figure_9_extrapolated(&cfg);
        assert_eq!(fig.id, "fig9-extrapolated");
        assert_eq!(fig.series.len(), 7);
        for s in &fig.series {
            let last = s.points.last().expect("series has points");
            assert_eq!(last.0, EXTRAPOLATE_WORKERS as f64, "series {}", s.name);
            assert!(last.1 > 0.0);
        }
    }

    #[test]
    fn queue_scales_better_than_table() {
        // The paper's headline Figure 9 conclusion: as workers grow, table
        // per-op time degrades more than queue per-op time.
        let cfg = BenchConfig::paper().with_scale(0.05);
        let fig = {
            let cfg = cfg.clone().with_workers(vec![1, 16]);
            figure_9(&cfg)
        };
        let ratio = |name: &str| {
            let s = fig.series.iter().find(|s| s.name == name).unwrap();
            s.y_at(16.0).unwrap() / s.y_at(1.0).unwrap()
        };
        let table_degradation = ratio("table-insert");
        let queue_degradation = ratio("queue-put");
        assert!(
            table_degradation > queue_degradation,
            "table ×{table_degradation:.2} must degrade more than queue ×{queue_degradation:.2}"
        );
    }
}
