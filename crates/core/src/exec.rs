//! Executor selection: run a figure scenario serially or sharded.
//!
//! Every figure driver funnels its simulation through
//! [`run_cluster_workers`], which picks the executor from
//! [`BenchConfig::shards`](crate::BenchConfig):
//!
//! * `shards == 1` — the serial stackless-coroutine executor, exactly the
//!   path the committed figure CSVs were produced on.
//! * `shards > 1` — the sharded executor under a **colocated** plan: a
//!   [`Cluster`] is one storage account whose requests all share the
//!   account pipes and transaction bucket, so the model itself cannot be
//!   split — every actor and event runs on shard 0 while the remaining
//!   shards idle. This still exercises the full sharded machinery
//!   (routing tables, arena stores, cross-thread merge) and must — and
//!   does, see `tests/figures_sharded.rs` — reproduce the serial figures
//!   bit for bit. Real multi-shard speedup comes from partition-separable
//!   models ([`azsim_fabric::Fleet`]) and the engine ladder, not from a
//!   single coupled account.

use crate::BenchConfig;
use azsim_core::runtime::ActorCtx;
use azsim_core::shard::{ShardPlan, ShardedSimulation};
use azsim_core::{SimReport, Simulation};
use azsim_fabric::Cluster;
use std::future::Future;

/// Build the simulated cluster a figure driver runs against: the
/// configured parameters, including the selected backend profile. Every
/// driver goes through this single seam so backend selection reaches all
/// figures uniformly.
pub fn build_cluster(cfg: &BenchConfig) -> Cluster {
    Cluster::new(cfg.params.clone())
}

/// Run `workers` identical actors against `cluster` on the executor chosen
/// by `cfg.shards`. The emitted report is identical either way; only the
/// executor plumbing differs.
pub fn run_cluster_workers<R, F, Fut>(
    cfg: &BenchConfig,
    cluster: Cluster,
    workers: usize,
    body: F,
) -> SimReport<Cluster, R>
where
    R: Send,
    F: Fn(ActorCtx<Cluster>) -> Fut + Sync,
    Fut: Future<Output = R>,
{
    if cfg.shards <= 1 {
        Simulation::new(cluster, cfg.seed).run_workers(workers, body)
    } else {
        let plan = ShardPlan::colocated(workers).with_shards(cfg.shards);
        ShardedSimulation::new(cluster, cfg.seed, plan).run_workers(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azsim_storage::StorageRequest;
    use bytes::Bytes;

    #[test]
    fn sharded_figure_path_matches_serial() {
        let run = |shards: u32| {
            let cfg = BenchConfig::quick().with_shards(shards);
            run_cluster_workers(&cfg, Cluster::with_defaults(), 4, |ctx| async move {
                let q = format!("q{}", ctx.id().0);
                ctx.call(StorageRequest::CreateQueue { queue: q.clone() })
                    .await
                    .unwrap();
                for _ in 0..8 {
                    ctx.call(StorageRequest::PutMessage {
                        queue: q.clone(),
                        data: Bytes::from_static(&[9u8; 128]),
                        ttl: None,
                    })
                    .await
                    .unwrap();
                }
                ctx.now().as_nanos()
            })
        };
        let serial = run(1);
        for shards in [2u32, 4] {
            let shd = run(shards);
            assert_eq!(serial.results, shd.results);
            assert_eq!(serial.end_time, shd.end_time);
            assert_eq!(
                serial.model.metrics().total_completed(),
                shd.model.metrics().total_completed()
            );
        }
    }
}
