//! `figures timeline`: virtual-time telemetry capture and export.
//!
//! Runs the mixed blob/queue/table workload with the cluster's gauge
//! timeline, per-operation trace records and the client policy's span and
//! breaker event logs enabled — under a small scheduled fault plan so the
//! recovery machinery is visible — then exports three views of the run:
//!
//! * a deterministic JSON document ([`TIMELINE_SCHEMA`], validated in CI
//!   against `schemas/timeline.schema.json`) holding every gauge series,
//!   counter-delta series, discrete event and the resource-usage table;
//! * a long-format CSV (one row per retained time bucket) for plotting;
//! * a Chrome Trace Event file (`trace.json`) loadable in Perfetto or
//!   `chrome://tracing`: per-worker phase spans, fault windows as async
//!   events, breaker transitions and retry waits as instants, and the
//!   cluster-wide gauges as counter tracks.
//!
//! All exports are byte-deterministic: virtual timestamps, fixed series
//! registration order, shortest-roundtrip float formatting and a stable
//! event sort mean the same config and seed produce identical bytes on
//! every run and at any `--threads`.

use crate::config::BenchConfig;
use crate::payload::PayloadGen;
use azsim_client::{
    BlobClient, BreakerEvent, BreakerTransition, Environment, QueueClient, ResilientPolicy,
    RetrySpan, TableClient, VirtualEnv,
};
use azsim_core::timeline::{GaugeRecorder, TimelineEvent};
use azsim_core::{SimTime, Simulation};
use azsim_fabric::{BusyStorm, Cluster, FaultPlan, Phase, ResourceUsage, ServerCrash, TraceRecord};
use azsim_storage::{Entity, PropValue};
use serde::ser::write_escaped;
use serde::Serialize;
use std::collections::BTreeSet;
use std::rc::Rc;
use std::time::Duration;

/// Schema identifier written into every timeline JSON export.
pub const TIMELINE_SCHEMA: &str = "azurebench-timeline/v1";

/// Sampling resolution used when the config does not set one.
pub const DEFAULT_RESOLUTION: Duration = Duration::from_millis(5);

/// The captured telemetry of one timeline run.
pub struct TimelineReport {
    /// Worker count of the run.
    pub workers: usize,
    /// Mixed-workload iterations per worker.
    pub ops_per_worker: usize,
    /// Workload scale factor.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Sampling resolution the run used.
    pub resolution: Duration,
    /// Virtual end time.
    pub end_time: SimTime,
    /// Requests the runtime processed.
    pub requests: u64,
    /// Time-weighted per-resource usage over the run.
    pub usage: Vec<ResourceUsage>,
    /// The cluster's metrics snapshot at end of run — the same value the
    /// Prometheus and OTLP exports render, so every telemetry format of a
    /// timeline run derives from one snapshot.
    pub snapshot: azsim_fabric::metrics::MetricsSnapshot,
    recorder: GaugeRecorder,
    events: Vec<TimelineEvent>,
    records: Vec<TraceRecord>,
    plan: FaultPlan,
}

/// The scheduled faults a timeline run carries so recovery telemetry
/// (fault-window gauge, breaker transitions, retry waits) has something to
/// show: one busy storm early on and one server crash with failover.
fn fault_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed: seed ^ 0x7e1e,
        busy_storms: vec![BusyStorm {
            at: SimTime::from_millis(300),
            duration: Duration::from_millis(500),
            retry_after: Duration::from_millis(100),
        }],
        crashes: vec![ServerCrash {
            server: 0,
            at: SimTime::from_secs(2),
            failover: Duration::from_secs(1),
        }],
        ..FaultPlan::default()
    }
}

/// Run the mixed workload for one `(workers, ops_per_worker)` point with
/// full telemetry enabled.
pub fn run_timeline(cfg: &BenchConfig, workers: usize, ops_per_worker: usize) -> TimelineReport {
    let seed = cfg.seed;
    let mut params = cfg.params.clone();
    let resolution = *params.timeline_resolution.get_or_insert(DEFAULT_RESOLUTION);
    let mut cluster = Cluster::new(params);
    cluster.enable_tracing(workers * ops_per_worker * 12 + 1024);
    let plan = fault_plan(seed);
    cluster.set_fault_plan(plan.clone());
    let sim = Simulation::new(cluster, seed);
    let report = sim.run_workers(workers, move |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        let me = env.instance();
        let policy = Rc::new(
            ResilientPolicy::new(seed ^ me as u64)
                .with_span_log()
                .with_event_log(),
        );
        let shared = QueueClient::new(&env, "timeline-shared").with_policy(policy.clone());
        shared.create().await.unwrap();
        let own = QueueClient::new(&env, format!("timeline-{me}")).with_policy(policy.clone());
        own.create().await.unwrap();
        let blobs = BlobClient::new(&env, "timeline").with_policy(policy.clone());
        blobs.create_container().await.unwrap();
        let table = TableClient::new(&env, "timeline").with_policy(policy.clone());
        table.create_table().await.unwrap();
        let mut gen = PayloadGen::new(seed, me as u64);

        for i in 0..ops_per_worker {
            // Same mix as `figures profile`: a contended shared queue, a
            // private queue, blob round trips and table CRUD. Errors after
            // retry exhaustion are tolerated — they remain in the trace.
            let _ = shared.put_message(gen.bytes(32 << 10)).await;
            if let Ok(Some(m)) = shared.get_message().await {
                let _ = shared.delete_message(&m).await;
            }
            let _ = own.put_message(gen.bytes(8 << 10)).await;
            let _ = own.get_message().await;
            let _ = blobs
                .upload(&format!("b-{me}-{i}"), gen.bytes(64 << 10))
                .await;
            let _ = blobs.download(&format!("b-{me}-{i}")).await;
            let _ = table
                .insert(
                    Entity::new(format!("p{me}"), i.to_string())
                        .with("v", PropValue::Binary(gen.bytes(4 << 10))),
                )
                .await;
            let _ = table.query(&format!("p{me}"), &i.to_string()).await;
        }
        (policy.take_retry_spans(), policy.take_breaker_events())
    });

    let model = report.model;
    let recorder = model
        .timeline()
        .expect("timeline enabled via params")
        .recorder()
        .clone();
    // Merge client-side telemetry into the event stream. Worker results
    // arrive in worker order; the final sort by (time, kind, label) makes
    // the stream independent of any collection order.
    let mut events: Vec<TimelineEvent> = recorder.events().to_vec();
    for (spans, breakers) in &report.results {
        for s in spans {
            events.push(retry_event(s));
        }
        for b in breakers {
            events.push(breaker_event(b));
        }
    }
    events.sort_by(|a, b| {
        a.at.as_nanos()
            .cmp(&b.at.as_nanos())
            .then_with(|| a.kind.cmp(&b.kind))
            .then_with(|| a.label.cmp(&b.label))
    });

    let records = model
        .tracer()
        .map(|t| t.records().to_vec())
        .unwrap_or_default();
    let usage = model.resource_usage(report.end_time);
    let snapshot = model.snapshot();
    TimelineReport {
        workers,
        ops_per_worker,
        scale: cfg.scale,
        seed,
        resolution,
        end_time: report.end_time,
        requests: report.requests,
        usage,
        snapshot,
        recorder,
        events,
        records,
        plan,
    }
}

fn retry_event(s: &RetrySpan) -> TimelineEvent {
    TimelineEvent {
        at: s.at,
        kind: "retry_wait".to_string(),
        label: format!(
            "{} attempt {} wait {:.1}ms",
            s.class.label(),
            s.attempt,
            s.wait.as_secs_f64() * 1e3
        ),
    }
}

fn breaker_event(b: &BreakerEvent) -> TimelineEvent {
    let kind = match b.kind {
        BreakerTransition::Opened => "breaker_open",
        BreakerTransition::HalfOpen => "breaker_half_open",
        BreakerTransition::Closed => "breaker_closed",
    };
    TimelineEvent {
        at: b.at,
        kind: kind.to_string(),
        label: b.partition.to_string(),
    }
}

#[derive(Serialize)]
struct SampleDoc {
    t_s: f64,
    min: f64,
    max: f64,
    last: f64,
    mean: f64,
    count: u64,
}

#[derive(Serialize)]
struct GaugeDoc {
    name: String,
    unit: String,
    resolution_ns: u64,
    samples: Vec<SampleDoc>,
}

#[derive(Serialize)]
struct CounterSampleDoc {
    t_s: f64,
    delta: f64,
}

#[derive(Serialize)]
struct CounterDoc {
    name: String,
    resolution_ns: u64,
    samples: Vec<CounterSampleDoc>,
}

#[derive(Serialize)]
struct EventDoc {
    t_s: f64,
    kind: String,
    label: String,
}

#[derive(Serialize)]
struct TimelineConfigDoc {
    workers: u64,
    ops_per_worker: u64,
    scale: f64,
    seed: u64,
    resolution_ns: u64,
}

#[derive(Serialize)]
struct TimelineDoc {
    schema: String,
    config: TimelineConfigDoc,
    end_time_s: f64,
    requests: u64,
    gauges: Vec<GaugeDoc>,
    counters: Vec<CounterDoc>,
    events: Vec<EventDoc>,
    dropped_events: u64,
    usage: Vec<ResourceUsage>,
}

impl TimelineReport {
    /// Access to the raw recorder (tests, custom exports).
    pub fn recorder(&self) -> &GaugeRecorder {
        &self.recorder
    }

    /// The merged, time-sorted event stream (cluster + client side).
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// The retained per-operation trace records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    fn doc(&self) -> TimelineDoc {
        TimelineDoc {
            schema: TIMELINE_SCHEMA.to_string(),
            config: TimelineConfigDoc {
                workers: self.workers as u64,
                ops_per_worker: self.ops_per_worker as u64,
                scale: self.scale,
                seed: self.seed,
                resolution_ns: self.resolution.as_nanos() as u64,
            },
            end_time_s: self.end_time.as_secs_f64(),
            requests: self.requests,
            gauges: self
                .recorder
                .gauges()
                .iter()
                .filter(|g| !g.series.is_empty())
                .map(|g| GaugeDoc {
                    name: g.name.clone(),
                    unit: g.unit.clone(),
                    resolution_ns: g.series.resolution().as_nanos() as u64,
                    samples: g
                        .series
                        .iter()
                        .map(|(t, b)| SampleDoc {
                            t_s: t.as_secs_f64(),
                            min: b.min,
                            max: b.max,
                            last: b.last,
                            mean: b.mean(),
                            count: b.count,
                        })
                        .collect(),
                })
                .collect(),
            counters: self
                .recorder
                .counters()
                .iter()
                .map(|c| CounterDoc {
                    name: c.name.clone(),
                    resolution_ns: c.series.series().resolution().as_nanos() as u64,
                    samples: c
                        .series
                        .series()
                        .iter()
                        .map(|(t, b)| CounterSampleDoc {
                            t_s: t.as_secs_f64(),
                            delta: b.sum,
                        })
                        .collect(),
                })
                .collect(),
            events: self
                .events
                .iter()
                .map(|e| EventDoc {
                    t_s: e.at.as_secs_f64(),
                    kind: e.kind.clone(),
                    label: e.label.clone(),
                })
                .collect(),
            dropped_events: self.recorder.dropped_events(),
            usage: self.usage.clone(),
        }
    }

    /// Serialize the full timeline to JSON (`azurebench-timeline/v1`).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.doc()).expect("timeline serialization is infallible")
    }

    /// Long-format CSV: one row per retained bucket of every gauge and
    /// counter series (`kind` is `gauge` or `counter`; a counter bucket's
    /// `sum` is the delta that landed in it).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_s,series,kind,unit,count,min,max,last,sum\n");
        for g in self.recorder.gauges() {
            for (t, b) in g.series.iter() {
                out.push_str(&format!(
                    "{:?},{},gauge,{},{},{:?},{:?},{:?},{:?}\n",
                    t.as_secs_f64(),
                    g.name,
                    g.unit,
                    b.count,
                    b.min,
                    b.max,
                    b.last,
                    b.sum
                ));
            }
        }
        for c in self.recorder.counters() {
            for (t, b) in c.series.series().iter() {
                out.push_str(&format!(
                    "{:?},{},counter,ops,{},{:?},{:?},{:?},{:?}\n",
                    t.as_secs_f64(),
                    c.name,
                    b.count,
                    b.min,
                    b.max,
                    b.last,
                    b.sum
                ));
            }
        }
        out
    }

    /// Prometheus text-format render of the end-of-run metrics snapshot —
    /// the same [`MetricsSnapshot`](azsim_fabric::metrics::MetricsSnapshot)
    /// that [`to_otlp`](Self::to_otlp) and the Chrome trace derive from.
    pub fn to_prometheus(&self) -> String {
        self.snapshot.to_prometheus()
    }

    /// OTLP-shaped JSON render of the end-of-run metrics snapshot, tagged
    /// with the run's scale/seed/workers as resource attributes.
    pub fn to_otlp(&self) -> String {
        self.snapshot.to_otlp_json(&[
            ("azurebench.scale", &format!("{:?}", self.scale)),
            ("azurebench.seed", &self.seed.to_string()),
            ("azurebench.workers", &self.workers.to_string()),
        ])
    }

    /// Export the run in Chrome Trace Event format, loadable in Perfetto
    /// (<https://ui.perfetto.dev>) or `chrome://tracing`. Phase spans are
    /// complete (`X`) events per worker thread, fault windows are async
    /// (`b`/`e`) pairs, breaker transitions and retry waits are instants,
    /// and the cluster-wide gauges become counter (`C`) tracks.
    pub fn to_chrome_trace(&self) -> String {
        let us = |t: SimTime| t.as_nanos() as f64 / 1e3;
        let mut ev: Vec<String> = Vec::new();

        ev.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"azurebench\"}}"
                .to_string(),
        );
        let actors: BTreeSet<usize> = self.records.iter().map(|r| r.actor).collect();
        for a in &actors {
            ev.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{a},\
                 \"args\":{{\"name\":\"worker-{a}\"}}}}"
            ));
        }

        for r in &self.records {
            let mut cursor = us(r.issued);
            for p in Phase::ALL {
                if p == Phase::RetryBackoff {
                    continue; // client-side; rendered as retry_wait instants
                }
                let d = r.phases.get(p);
                if d.is_zero() {
                    continue;
                }
                let dur = d.as_nanos() as f64 / 1e3;
                ev.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\
                     \"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"outcome\":\"{}\"}}}}",
                    p.label(),
                    r.class.label(),
                    cursor,
                    dur,
                    r.actor,
                    r.outcome.label()
                ));
                cursor += dur;
            }
        }

        let mut window_id = 0u64;
        let mut window = |name: String, start: SimTime, dur: Duration, ev: &mut Vec<String>| {
            window_id += 1;
            let name = jstr(&name);
            ev.push(format!(
                "{{\"name\":{name},\"cat\":\"fault\",\"ph\":\"b\",\"id\":{window_id},\
                 \"ts\":{:.3},\"pid\":1,\"tid\":0}}",
                us(start)
            ));
            ev.push(format!(
                "{{\"name\":{name},\"cat\":\"fault\",\"ph\":\"e\",\"id\":{window_id},\
                 \"ts\":{:.3},\"pid\":1,\"tid\":0}}",
                us(start + dur)
            ));
        };
        for s in &self.plan.busy_storms {
            window("busy_storm".to_string(), s.at, s.duration, &mut ev);
        }
        for c in &self.plan.crashes {
            window(
                format!("server_crash:{}", c.server),
                c.at,
                c.failover,
                &mut ev,
            );
        }
        for b in &self.plan.blackouts {
            window(
                format!("blackout:{}", b.partition),
                b.at,
                b.duration,
                &mut ev,
            );
        }

        for e in &self.events {
            ev.push(format!(
                "{{\"name\":{},\"cat\":\"client\",\"ph\":\"i\",\"ts\":{:.3},\
                 \"pid\":1,\"tid\":0,\"s\":\"g\"}}",
                jstr(&format!("{}:{}", e.kind, e.label)),
                us(e.at)
            ));
        }

        // Cluster-wide gauges (per-partition series carry a ':' in the
        // name and would flood the counter track list).
        for g in self.recorder.gauges() {
            if g.name.contains(':') {
                continue;
            }
            for (t, b) in g.series.iter() {
                ev.push(format!(
                    "{{\"name\":{},\"ph\":\"C\",\"ts\":{:.3},\"pid\":1,\
                     \"args\":{{\"{}\":{:?}}}}}",
                    jstr(&g.name),
                    us(t),
                    g.unit,
                    b.last
                ));
            }
        }

        // Monotonic counters (ops.submitted, ops.throttled, ops.ambiguous)
        // as running-total tracks: ambiguous outcomes become visible right
        // next to the fault windows that caused them.
        for c in self.recorder.counters() {
            for (t, b) in c.series.series().iter() {
                ev.push(format!(
                    "{{\"name\":{},\"ph\":\"C\",\"ts\":{:.3},\"pid\":1,\
                     \"args\":{{\"total\":{:?}}}}}",
                    jstr(&c.name),
                    us(t),
                    b.last
                ));
            }
        }

        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}\n",
            ev.join(",")
        )
    }

    /// A short human-readable summary of what was captured.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<34} | {:>8} | {:>8} | {:>12} | {:>12}\n",
            "series", "samples", "buckets", "min", "max"
        );
        for g in self.recorder.gauges() {
            if g.series.is_empty() {
                continue;
            }
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for (_, b) in g.series.iter() {
                lo = lo.min(b.min);
                hi = hi.max(b.max);
            }
            out.push_str(&format!(
                "{:<34} | {:>8} | {:>8} | {:>12.3} | {:>12.3}\n",
                g.name,
                g.series.sample_count(),
                g.series.len(),
                lo,
                hi
            ));
        }
        out.push_str(&format!(
            "({} events, {} trace records, {} resource-usage rows, end {:.3}s)\n",
            self.events.len(),
            self.records.len(),
            self.usage.len(),
            self.end_time.as_secs_f64()
        ));
        out
    }
}

/// Quote and escape a string for direct inclusion in JSON output.
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_escaped(s, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_timeline() -> TimelineReport {
        let cfg = BenchConfig::quick().with_sweep_threads(1);
        run_timeline(&cfg, 4, 12)
    }

    #[test]
    fn captures_gauges_counters_and_events() {
        let r = small_timeline();
        let names: Vec<&str> = r
            .recorder()
            .gauges()
            .iter()
            .map(|g| g.name.as_str())
            .collect();
        for required in [
            "account_tx.fill",
            "cluster.inflight",
            "faults.active_windows",
            "bucket_fill:queue:timeline-shared",
        ] {
            assert!(
                names.contains(&required),
                "{required} missing from {names:?}"
            );
        }
        // The busy storm forces retries → retry_wait events exist.
        assert!(r.events().iter().any(|e| e.kind == "retry_wait"));
        // The fault-window gauge saw the storm and/or crash.
        let fw = r
            .recorder()
            .gauges()
            .iter()
            .find(|g| g.name == "faults.active_windows")
            .unwrap();
        let max = fw.series.iter().map(|(_, b)| b.max).fold(0.0, f64::max);
        assert!(max >= 1.0, "no fault window observed");
        assert!(!r.records().is_empty());
        assert!(!r.usage.is_empty());
    }

    #[test]
    fn json_csv_and_trace_are_deterministic() {
        let a = small_timeline();
        let b = small_timeline();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.to_chrome_trace(), b.to_chrome_trace());
    }

    #[test]
    fn json_has_required_structure() {
        let r = small_timeline();
        let json = r.to_json();
        let doc = serde::value::parse(json.as_bytes()).expect("valid JSON");
        let obj = doc.as_object().unwrap();
        assert_eq!(
            serde::value::find(obj, "schema").and_then(|v| v.as_str()),
            Some(TIMELINE_SCHEMA)
        );
        for key in ["config", "gauges", "counters", "events", "usage"] {
            assert!(serde::value::find(obj, key).is_some(), "{key} missing");
        }
        let csv = r.to_csv();
        assert!(csv.starts_with("t_s,series,kind,unit,count,min,max,last,sum\n"));
        assert!(csv.lines().count() > 10);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_span_and_fault_events() {
        let r = small_timeline();
        let trace = r.to_chrome_trace();
        let doc = serde::value::parse(trace.as_bytes()).expect("trace.json parses");
        let events = doc
            .as_object()
            .and_then(|o| serde::value::find(o, "traceEvents"))
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        let ph = |p: &str| {
            events
                .iter()
                .filter(|e| {
                    e.as_object()
                        .and_then(|o| serde::value::find(o, "ph"))
                        .and_then(|v| v.as_str())
                        == Some(p)
                })
                .count()
        };
        assert!(ph("X") > 0, "no complete span events");
        assert!(
            ph("b") > 0 && ph("b") == ph("e"),
            "unbalanced fault windows"
        );
        assert!(ph("C") > 0, "no counter tracks");
        assert!(ph("M") > 0, "no metadata events");
    }
}
