//! Algorithm 4: Queue storage with a **single queue shared by all
//! workers** (Figure 7).
//!
//! All workers hammer one queue (one partition), with a *think time*
//! between operations modelling an application that touches the queue
//! intermittently. The total transaction count is held constant across
//! worker counts — workers proportionately carry out fewer transactions as
//! their number increases — and the message size is fixed at 32 KB. The
//! think time is swept from 1 s to 5 s.
//!
//! Expected shapes (paper §IV-B): every operation is slower than in the
//! separate-queue configuration (contention at one partition); op time
//! *falls* as think time grows (sometimes by almost 2×); and op time falls
//! as workers grow, because each worker performs fewer of the fixed total
//! transactions while the queue sustains these access frequencies easily.

use crate::config::BenchConfig;
use crate::payload::PayloadGen;
use crate::report::{Figure, Series};
use azsim_client::{Environment, QueueClient, VirtualEnv};
use azsim_core::stats::OnlineStats;
use azsim_fabric::Cluster;
use std::collections::HashMap;
use std::time::Duration;

use crate::alg3_queue::QueueOp;

/// Result at one worker count: for each `(think_secs, op)`, the mean
/// per-operation latency in seconds.
pub type Alg4Result = HashMap<(u64, QueueOp), f64>;

/// Run Algorithm 4 at one worker count.
pub fn run_alg4(cfg: &BenchConfig, workers: usize) -> Alg4Result {
    let think_times = cfg.think_times_secs();
    let msg_size = cfg.shared_queue_message_size();
    // Fixed total transactions: each worker runs total/workers iterations
    // of {put, peek, get+delete}.
    let iterations = (cfg.queue_messages_total() / 10 / workers).max(1);
    let seed = cfg.seed;

    let report = crate::exec::run_cluster_workers(
        cfg,
        crate::exec::build_cluster(cfg),
        workers,
        move |ctx| {
            let think_times = think_times.clone();
            async move {
                let env = VirtualEnv::new(&ctx);
                let me = env.instance();
                let queue = QueueClient::new(&env, "AzureBenchQueue");
                queue.create().await.unwrap();
                let mut gen = PayloadGen::new(seed, me as u64);
                let mut stats: HashMap<(u64, QueueOp), OnlineStats> = HashMap::new();

                // Think times carry a small (±2 %) deterministic jitter: real
                // applications never sleep in perfect lockstep, and the absolute
                // jitter grows with the think time — which is exactly why longer
                // think times de-synchronize workers and reduce the burst
                // contention at the shared partition.
                let jittered = |ctx: &azsim_core::ActorCtx<Cluster>, base: Duration| {
                    let f: f64 = ctx.with_rng(|r| rand::Rng::random_range(r, -0.02..0.02));
                    base.mul_f64(1.0 + f)
                };
                for &think_secs in &think_times {
                    let think = Duration::from_secs(think_secs);
                    for _ in 0..iterations {
                        let t0 = env.now();
                        queue.put_message(gen.bytes(msg_size)).await.unwrap();
                        stats
                            .entry((think_secs, QueueOp::Put))
                            .or_default()
                            .record(env.now().saturating_since(t0).as_secs_f64());
                        env.sleep(jittered(&ctx, think)).await;

                        let t0 = env.now();
                        let _ = queue.peek_message().await.unwrap();
                        stats
                            .entry((think_secs, QueueOp::Peek))
                            .or_default()
                            .record(env.now().saturating_since(t0).as_secs_f64());
                        env.sleep(jittered(&ctx, think)).await;

                        let t0 = env.now();
                        if let Some(m) = queue
                            .get_message_with_visibility(Duration::from_secs(3600))
                            .await
                            .unwrap()
                        {
                            queue.delete_message(&m).await.unwrap();
                        }
                        stats
                            .entry((think_secs, QueueOp::Get))
                            .or_default()
                            .record(env.now().saturating_since(t0).as_secs_f64());
                        env.sleep(jittered(&ctx, think)).await;
                    }
                }
                stats
            }
        },
    );

    // Merge workers' stats.
    let mut merged: HashMap<(u64, QueueOp), OnlineStats> = HashMap::new();
    for worker in report.results {
        for (key, s) in worker {
            merged.entry(key).or_default().merge(&s);
        }
    }
    merged.into_iter().map(|(k, s)| (k, s.mean())).collect()
}

/// Sweep the worker ladder and produce Figure 7: one sub-figure per
/// operation, one series per think time, y = mean per-op latency.
pub fn figure_7(cfg: &BenchConfig) -> Vec<Figure> {
    let think_times = cfg.think_times_secs();
    let mut figs: Vec<Figure> = QueueOp::ALL
        .iter()
        .map(|op| {
            let mut f = Figure::new(
                format!("fig7-{}", op.label()),
                format!(
                    "Queue benchmark, single shared queue: {} message",
                    op.label()
                ),
                "workers",
                "seconds (mean per-op)",
            );
            for &t in &think_times {
                f.series.push(Series::new(format!("think-{t}s")));
            }
            f
        })
        .collect();

    let swept = crate::sweep::sweep(cfg, run_alg4);
    for (&w, result) in cfg.workers.iter().zip(swept) {
        for (oi, op) in QueueOp::ALL.iter().enumerate() {
            for (ti, &t) in think_times.iter().enumerate() {
                if let Some(mean) = result.get(&(t, *op)) {
                    figs[oi].series[ti].push(w as f64, *mean);
                }
            }
        }
    }
    figs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig::paper().with_scale(0.02).with_workers(vec![4])
        // 40 iterations/worker at w=1
    }

    #[test]
    fn alg4_measures_every_think_time_and_op() {
        let cfg = tiny();
        let r = run_alg4(&cfg, 4);
        assert_eq!(r.len(), cfg.think_times_secs().len() * 3);
        for ((t, op), mean) in &r {
            assert!(*mean > 0.0, "think {t}/{op:?} zero mean");
        }
    }

    #[test]
    fn op_ordering_survives_contention() {
        let cfg = tiny();
        let r = run_alg4(&cfg, 4);
        for &t in &cfg.think_times_secs() {
            assert!(r[&(t, QueueOp::Peek)] < r[&(t, QueueOp::Put)]);
            assert!(r[&(t, QueueOp::Put)] < r[&(t, QueueOp::Get)]);
        }
    }

    #[test]
    fn shared_queue_is_slower_than_separate_queues() {
        // The paper's comparison of Figures 6 and 7 at equal load.
        let cfg = BenchConfig::paper().with_scale(0.02);
        let workers = 8;
        let shared = run_alg4(&cfg, workers);
        let separate = crate::alg3_queue::run_alg3(&cfg, workers);
        let shared_put = shared[&(1, QueueOp::Put)];
        let separate_put = separate[&(32 << 10, QueueOp::Put)].1;
        assert!(
            shared_put >= separate_put,
            "shared {shared_put} must be ≥ separate {separate_put}"
        );
    }

    #[test]
    fn longer_think_time_never_hurts() {
        let cfg = BenchConfig::paper().with_scale(0.03).with_workers(vec![8]);
        let r = run_alg4(&cfg, 8);
        for op in QueueOp::ALL {
            let t1 = r[&(1, op)];
            let t5 = r[&(5, op)];
            assert!(
                t5 <= t1 * 1.05,
                "{op:?}: think 5s ({t5}) must not exceed think 1s ({t1})"
            );
        }
    }
}
