//! Continuous benchmark history: the versioned `BENCH_history.jsonl`
//! store, the trend-aware regression detector and the report renderers
//! behind `bench_check record|trend|report`.
//!
//! The paper reports point-in-time numbers; its own conclusion — cloud
//! storage performance drifts and must be re-measured — is the argument
//! for *continuous* benchmarking. This module turns the single-snapshot
//! `bench_check` gate into a history pipeline:
//!
//! * **Rows** ([`HistoryRow`], schema [`HISTORY_SCHEMA`]): one JSON line
//!   per engine-ladder rung per run, carrying full provenance (timestamp,
//!   host, commit, backend, shard count, core count) so series from
//!   different machines or configurations never silently mix.
//! * **Trend** ([`analyze`]): for every `(backend, actors, shards)` key,
//!   a robust baseline — median plus MAD over the last
//!   [`TrendConfig::window`] runs — classifies the newest point as
//!   stable, improved, regressed, recovered or too noisy to call. The
//!   gate fires only when a drop clears **both** the relative tolerance
//!   and the series' own noise band, so a noisy-but-flat series never
//!   gates while a clean 30 % step does.
//! * **Report** ([`render_markdown`], [`render_html`]): self-contained
//!   artifacts with sparkline trend tables per backend/shard section.
//! * **Agreement** ([`check_snapshot_agreement`]): `BENCH_engine.json`
//!   (the snapshot, overwritten every run) and `BENCH_history.jsonl`
//!   (append-only) must tell the same story about the latest run; a
//!   disagreement is an error, never a silent snapshot win.
//!
//! Everything is plain-text JSONL with hand-rolled serialization (the
//! offline serde shim's `Value` for parsing), so the history file stays
//! diffable and mergeable in git.

use serde::ser::write_escaped;
use serde::value::{find, parse, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Schema identifier carried by every v1 history row.
pub const HISTORY_SCHEMA: &str = "azurebench-bench-history/v1";

/// The backend assumed for rows that predate the multi-backend export.
pub const DEFAULT_BACKEND: &str = "was";

/// One engine-ladder rung of one bench run: a single JSONL line.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryRow {
    /// Wall-clock time of the run (seconds since the Unix epoch). All
    /// rungs of one run share one timestamp — it is the run key.
    pub unix_ts: u64,
    /// Hostname the run executed on (`unknown` when unavailable).
    pub host: String,
    /// Commit the run measured (`unknown` when unavailable).
    pub commit: String,
    /// Storage backend profile the run used.
    pub backend: String,
    /// Workload scale factor of the surrounding bench invocation.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Actor count of the rung.
    pub actors: u64,
    /// Executor shard count of the rung.
    pub shards: u64,
    /// Cores available to the run.
    pub cores: u64,
    /// Simulated operations the rung completed.
    pub simulated_ops: u64,
    /// Wall-clock seconds the rung took.
    pub wall_seconds: f64,
    /// Throughput of the rung.
    pub ops_per_second: f64,
    /// Events processed per executor shard.
    pub per_shard_events: Vec<u64>,
}

impl HistoryRow {
    /// Serialize as one JSONL line (no trailing newline). Deterministic:
    /// fixed key order, shortest-roundtrip floats.
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema\":");
        write_escaped(HISTORY_SCHEMA, &mut out);
        out.push_str(&format!(",\"unix_ts\":{}", self.unix_ts));
        out.push_str(",\"host\":");
        write_escaped(&self.host, &mut out);
        out.push_str(",\"commit\":");
        write_escaped(&self.commit, &mut out);
        out.push_str(",\"backend\":");
        write_escaped(&self.backend, &mut out);
        out.push_str(&format!(
            ",\"scale\":{:?},\"seed\":{},\"actors\":{},\"shards\":{},\"cores\":{},\
             \"simulated_ops\":{},\"wall_seconds\":{:?},\"ops_per_second\":{:?},\
             \"per_shard_events\":[{}]}}",
            self.scale,
            self.seed,
            self.actors,
            self.shards,
            self.cores,
            self.simulated_ops,
            self.wall_seconds,
            self.ops_per_second,
            self.per_shard_events
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ));
        out
    }
}

fn num_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Num(n) => n.parse().ok(),
        _ => None,
    }
}

fn get_f64(m: &[(String, Value)], key: &str) -> Option<f64> {
    find(m, key).and_then(num_f64)
}

fn get_u64(m: &[(String, Value)], key: &str) -> Option<u64> {
    get_f64(m, key).map(|v| v as u64)
}

fn get_str(m: &[(String, Value)], key: &str, default: &str) -> String {
    match find(m, key) {
        Some(Value::Str(s)) => s.to_ascii_lowercase(),
        _ => default.to_owned(),
    }
}

/// Parse one v1 row object.
fn parse_v1_row(m: &[(String, Value)]) -> Result<HistoryRow, String> {
    let req_u64 = |key: &str| get_u64(m, key).ok_or_else(|| format!("missing numeric {key:?}"));
    let req_f64 = |key: &str| get_f64(m, key).ok_or_else(|| format!("missing numeric {key:?}"));
    Ok(HistoryRow {
        unix_ts: req_u64("unix_ts")?,
        host: get_str(m, "host", "unknown"),
        commit: get_str(m, "commit", "unknown"),
        backend: get_str(m, "backend", DEFAULT_BACKEND),
        scale: req_f64("scale")?,
        seed: req_u64("seed")?,
        actors: req_u64("actors")?,
        shards: get_u64(m, "shards").unwrap_or(1),
        cores: get_u64(m, "cores").unwrap_or(1),
        simulated_ops: req_u64("simulated_ops")?,
        wall_seconds: req_f64("wall_seconds")?,
        ops_per_second: req_f64("ops_per_second")?,
        per_shard_events: find(m, "per_shard_events")
            .and_then(|v| v.as_array())
            .map(|a| a.iter().filter_map(num_f64).map(|v| v as u64).collect())
            .unwrap_or_default(),
    })
}

/// Expand one legacy (pre-v1) run line — a nested `engine` array with
/// run-level provenance — into one row per rung.
fn parse_legacy_line(m: &[(String, Value)]) -> Result<Vec<HistoryRow>, String> {
    let unix_ts = get_u64(m, "unix_ts").ok_or("legacy line missing \"unix_ts\"")?;
    let scale = get_f64(m, "scale").unwrap_or(1.0);
    let seed = get_u64(m, "seed").unwrap_or(0);
    let cores = get_u64(m, "cores").unwrap_or(1);
    let run_backend = get_str(m, "backend", DEFAULT_BACKEND);
    let engine = find(m, "engine")
        .and_then(|v| v.as_array())
        .ok_or("legacy line missing \"engine\" array")?;
    engine
        .iter()
        .map(|row| {
            let rm = row
                .as_object()
                .ok_or("legacy engine row is not an object")?;
            Ok(HistoryRow {
                unix_ts,
                host: "unknown".to_owned(),
                commit: "unknown".to_owned(),
                backend: get_str(rm, "backend", &run_backend),
                scale,
                seed,
                actors: get_u64(rm, "actors").ok_or("legacy engine row missing \"actors\"")?,
                shards: get_u64(rm, "shards").unwrap_or(1),
                cores: get_u64(rm, "cores").unwrap_or(cores),
                simulated_ops: get_u64(rm, "simulated_ops").unwrap_or(0),
                wall_seconds: get_f64(rm, "wall_seconds").unwrap_or(0.0),
                ops_per_second: get_f64(rm, "ops_per_second")
                    .ok_or("legacy engine row missing \"ops_per_second\"")?,
                per_shard_events: find(rm, "per_shard_events")
                    .and_then(|v| v.as_array())
                    .map(|a| a.iter().filter_map(num_f64).map(|v| v as u64).collect())
                    .unwrap_or_default(),
            })
        })
        .collect()
}

fn parse_line(line: &str) -> Result<Vec<HistoryRow>, String> {
    let doc = parse(line.as_bytes()).map_err(|e| format!("invalid JSON: {e}"))?;
    let m = doc.as_object().ok_or("line is not a JSON object")?;
    match find(m, "schema").and_then(|v| v.as_str()) {
        Some(HISTORY_SCHEMA) => Ok(vec![parse_v1_row(m)?]),
        Some(other) => Err(format!(
            "unknown history schema {other:?} (expected {HISTORY_SCHEMA:?})"
        )),
        // No schema tag: a legacy pre-v1 run line.
        None => parse_legacy_line(m),
    }
}

/// Parse a whole history file (v1 rows and legacy run lines mix freely);
/// errors name the offending line.
pub fn parse_history(text: &str) -> Result<Vec<HistoryRow>, String> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        rows.extend(parse_line(line).map_err(|e| format!("BENCH_history line {}: {e}", i + 1))?);
    }
    Ok(rows)
}

/// Parse a history file and report how many of its lines were legacy
/// (pre-v1) run lines — the migration count.
pub fn migrate(text: &str) -> Result<(Vec<HistoryRow>, usize), String> {
    let rows = parse_history(text)?;
    let legacy = text
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.contains(HISTORY_SCHEMA))
        .count();
    Ok((rows, legacy))
}

/// The run timestamp of the newest row in a history file's text, if any.
pub fn tail_unix_ts(text: &str) -> Result<Option<u64>, String> {
    let Some(last) = text.lines().rev().find(|l| !l.trim().is_empty()) else {
        return Ok(None);
    };
    let rows = parse_line(last).map_err(|e| format!("BENCH_history tail line: {e}"))?;
    Ok(rows.iter().map(|r| r.unix_ts).max())
}

/// Append rows to a history file, refusing rows older than the file's
/// tail — a replayed run or a host with a skewed clock must not corrupt
/// the append-only ordering the trend detector relies on.
pub fn append_rows(path: &str, rows: &[HistoryRow]) -> Result<(), String> {
    if rows.is_empty() {
        return Ok(());
    }
    let new_ts = rows.iter().map(|r| r.unix_ts).min().unwrap_or(0);
    if let Ok(existing) = std::fs::read_to_string(path) {
        if let Some(tail) = tail_unix_ts(&existing)? {
            if new_ts < tail {
                return Err(format!(
                    "refusing to append run at unix_ts {new_ts} behind the history tail \
                     ({tail}): clock skew or a replayed run would corrupt the trend order"
                ));
            }
        }
    }
    let mut text = String::new();
    for r in rows {
        text.push_str(&r.to_line());
        text.push('\n');
    }
    use std::io::Write as _;
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(text.as_bytes()))
        .map_err(|e| format!("cannot append {path}: {e}"))
}

/// The host identity recorded in history rows: `AZBENCH_HOST`, then
/// `HOSTNAME`, then `/etc/hostname`, then `unknown`.
pub fn detect_host() -> String {
    for var in ["AZBENCH_HOST", "HOSTNAME"] {
        if let Ok(v) = std::env::var(var) {
            let v = v.trim().to_owned();
            if !v.is_empty() {
                return v;
            }
        }
    }
    if let Ok(v) = std::fs::read_to_string("/etc/hostname") {
        let v = v.trim().to_owned();
        if !v.is_empty() {
            return v;
        }
    }
    "unknown".to_owned()
}

/// The commit identity recorded in history rows: `AZBENCH_COMMIT`, then
/// `GITHUB_SHA`, then `GIT_COMMIT`, then `unknown`. No `git` subprocess —
/// benches must not depend on a repository checkout.
pub fn detect_commit() -> String {
    for var in ["AZBENCH_COMMIT", "GITHUB_SHA", "GIT_COMMIT"] {
        if let Ok(v) = std::env::var(var) {
            let v = v.trim().to_owned();
            if !v.is_empty() {
                return v;
            }
        }
    }
    "unknown".to_owned()
}

/// Convert a full `BENCH_engine.json` snapshot into v1 history rows with
/// the given provenance — the `bench_check record` path for snapshots
/// produced without a history append.
pub fn snapshot_history_rows(
    doc: &Value,
    host: &str,
    commit: &str,
    unix_ts: u64,
) -> Result<Vec<HistoryRow>, String> {
    let top = doc.as_object().ok_or("snapshot is not a JSON object")?;
    let config = find(top, "config").and_then(|v| v.as_object());
    let cfg_f64 = |key: &str| config.and_then(|m| get_f64(m, key));
    let scale = cfg_f64("scale").unwrap_or(1.0);
    let seed = cfg_f64("seed").unwrap_or(0.0) as u64;
    let cfg_cores = cfg_f64("cores").map(|v| v as u64);
    let engine = find(top, "engine")
        .and_then(|v| v.as_array())
        .ok_or("snapshot has no `engine` array")?;
    engine
        .iter()
        .map(|row| {
            let m = row.as_object().ok_or("engine row is not an object")?;
            Ok(HistoryRow {
                unix_ts,
                host: host.to_owned(),
                commit: commit.to_owned(),
                backend: get_str(m, "backend", DEFAULT_BACKEND),
                scale,
                seed,
                actors: get_u64(m, "actors").ok_or("engine row missing \"actors\"")?,
                shards: get_u64(m, "shards").unwrap_or(1),
                cores: get_u64(m, "cores").or(cfg_cores).unwrap_or(1),
                simulated_ops: get_u64(m, "simulated_ops").unwrap_or(0),
                wall_seconds: get_f64(m, "wall_seconds").unwrap_or(0.0),
                ops_per_second: get_f64(m, "ops_per_second")
                    .ok_or("engine row missing \"ops_per_second\"")?,
                per_shard_events: find(m, "per_shard_events")
                    .and_then(|v| v.as_array())
                    .map(|a| a.iter().filter_map(num_f64).map(|v| v as u64).collect())
                    .unwrap_or_default(),
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Snapshot comparison (the legacy two-snapshot gate) and agreement check.
// ---------------------------------------------------------------------------

/// One `engine` row from a `BENCH_engine.json` snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineRow {
    /// Storage backend the bench ran against (`was` when the row predates
    /// the multi-backend export and has no such key).
    pub backend: String,
    /// Actor count of the rung.
    pub actors: u64,
    /// Executor shard count (`1` when the row predates the sharded
    /// executor and has no such key).
    pub shards: u64,
    /// Measured throughput.
    pub ops_per_second: f64,
}

/// Extract the `engine` rows of a parsed `BENCH_engine.json`, defaulting
/// provenance keys absent from pre-sharding / pre-multi-backend exports.
pub fn engine_rows(doc: &Value) -> Option<Vec<EngineRow>> {
    let rows = doc
        .as_object()
        .and_then(|m| find(m, "engine"))
        .and_then(|v| v.as_array())?;
    Some(
        rows.iter()
            .filter_map(|row| {
                let m = row.as_object()?;
                Some(EngineRow {
                    backend: get_str(m, "backend", DEFAULT_BACKEND),
                    actors: get_u64(m, "actors")?,
                    shards: get_u64(m, "shards").unwrap_or(1),
                    ops_per_second: get_f64(m, "ops_per_second")?,
                })
            })
            .collect(),
    )
}

/// The two-snapshot comparison behind the legacy CLI form: returns the
/// per-row report lines and the failure count.
pub fn check(
    baseline: &[EngineRow],
    candidate: &[EngineRow],
    max_regression: f64,
) -> (Vec<String>, usize) {
    let mut lines = Vec::new();
    let mut failures = 0usize;

    for b in baseline {
        let Some(c) = candidate
            .iter()
            .find(|c| c.backend == b.backend && c.actors == b.actors && c.shards == b.shards)
        else {
            lines.push(format!(
                "bench_check: candidate missing row for [{}] {} actors x {} shard(s)",
                b.backend, b.actors, b.shards
            ));
            failures += 1;
            continue;
        };
        let floor = b.ops_per_second * (1.0 - max_regression);
        let delta = (c.ops_per_second - b.ops_per_second) / b.ops_per_second * 100.0;
        let verdict = if c.ops_per_second < floor {
            failures += 1;
            "REGRESSION"
        } else {
            "ok"
        };
        lines.push(format!(
            "bench_check: [{}] {:>6} actors x {} shard(s): baseline {:>12.0} ops/s, candidate {:>12.0} ops/s ({delta:+.1}%) {verdict}",
            b.backend, b.actors, b.shards, b.ops_per_second, c.ops_per_second
        ));
    }

    // New actor counts on a known (backend, shards) combination are
    // ladder growth and pass freely; an unknown combination means the
    // candidate measured a configuration the baseline has never seen,
    // which must not silently count as "no regression".
    let known: BTreeSet<(&str, u64)> = baseline
        .iter()
        .map(|b| (b.backend.as_str(), b.shards))
        .collect();
    for c in candidate {
        if !known.contains(&(c.backend.as_str(), c.shards)) {
            lines.push(format!(
                "bench_check: candidate row [{}] {} actors x {} shard(s) names a \
                 backend/shards combination absent from the baseline — re-baseline \
                 or fix the bench configuration",
                c.backend, c.actors, c.shards
            ));
            failures += 1;
        }
    }

    (lines, failures)
}

/// Verify that a `BENCH_engine.json` snapshot and a history agree on the
/// latest run: for every backend the snapshot covers, the history's most
/// recent run for that backend must contain exactly the snapshot's rungs
/// with matching throughput. A mismatch means the snapshot was
/// regenerated without appending history (or vice versa) — an error, not
/// a silent snapshot win.
pub fn check_snapshot_agreement(
    snapshot: &[EngineRow],
    history: &[HistoryRow],
) -> Result<(), String> {
    let backends: BTreeSet<&str> = snapshot.iter().map(|r| r.backend.as_str()).collect();
    for backend in backends {
        let latest_ts = history
            .iter()
            .filter(|h| h.backend == backend)
            .map(|h| h.unix_ts)
            .max()
            .ok_or_else(|| {
                format!(
                    "BENCH_engine.json has [{backend}] rows but BENCH_history.jsonl has \
                     no run for that backend — record the run into the history"
                )
            })?;
        let latest: BTreeMap<(u64, u64), f64> = history
            .iter()
            .filter(|h| h.backend == backend && h.unix_ts == latest_ts)
            .map(|h| ((h.actors, h.shards), h.ops_per_second))
            .collect();
        let snap: BTreeMap<(u64, u64), f64> = snapshot
            .iter()
            .filter(|r| r.backend == backend)
            .map(|r| ((r.actors, r.shards), r.ops_per_second))
            .collect();
        for (&(actors, shards), &ops) in &snap {
            match latest.get(&(actors, shards)) {
                None => {
                    return Err(format!(
                        "BENCH_engine.json and BENCH_history.jsonl disagree on the latest \
                         [{backend}] run: snapshot has rung {actors} actors x {shards} \
                         shard(s) but the history's latest run (unix_ts {latest_ts}) does \
                         not — re-run `figures bench` (snapshot + history append together) \
                         or `bench_check record` the snapshot"
                    ));
                }
                Some(&h) if (h - ops).abs() > 1e-6 * ops.abs().max(1.0) => {
                    return Err(format!(
                        "BENCH_engine.json and BENCH_history.jsonl disagree on the latest \
                         [{backend}] run: rung {actors} actors x {shards} shard(s) is \
                         {ops:.1} ops/s in the snapshot but {h:.1} ops/s in the history's \
                         latest run (unix_ts {latest_ts}) — the snapshot was regenerated \
                         without recording history"
                    ));
                }
                Some(_) => {}
            }
        }
        for &(actors, shards) in latest.keys() {
            if !snap.contains_key(&(actors, shards)) {
                return Err(format!(
                    "BENCH_engine.json and BENCH_history.jsonl disagree on the latest \
                     [{backend}] run: the history's latest run (unix_ts {latest_ts}) has \
                     rung {actors} actors x {shards} shard(s) but the snapshot does not"
                ));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Trend detection.
// ---------------------------------------------------------------------------

/// Knobs of the trend detector.
#[derive(Clone, Copy, Debug)]
pub struct TrendConfig {
    /// How many prior runs the rolling baseline covers.
    pub window: usize,
    /// Relative drop that is *never* acceptable on a quiet series.
    pub tolerance: f64,
    /// How many robust standard deviations (1.4826 × MAD) a drop must
    /// also clear before it gates — the noise-band half-width.
    pub mad_gate: f64,
    /// Minimum prior runs before any verdict besides `Insufficient`.
    pub min_history: usize,
}

impl Default for TrendConfig {
    fn default() -> Self {
        TrendConfig {
            window: 8,
            tolerance: 0.25,
            mad_gate: 4.0,
            min_history: 3,
        }
    }
}

/// Classification of the newest point of one series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrendVerdict {
    /// Fewer than `min_history` prior runs: nothing to gate against.
    Insufficient,
    /// Within tolerance and noise band of the rolling baseline.
    Stable,
    /// The series' own noise band exceeds the tolerance: a single point
    /// can never be called a regression (or an improvement) here.
    Noisy,
    /// Above baseline beyond both tolerance and noise band.
    Improvement,
    /// Below baseline beyond both tolerance and noise band — gates.
    Regression,
    /// Back within tolerance right after a regressed point.
    Recovery,
}

impl TrendVerdict {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            TrendVerdict::Insufficient => "insufficient-history",
            TrendVerdict::Stable => "stable",
            TrendVerdict::Noisy => "noisy",
            TrendVerdict::Improvement => "improvement",
            TrendVerdict::Regression => "REGRESSION",
            TrendVerdict::Recovery => "recovery",
        }
    }
}

fn median(values: &[f64]) -> f64 {
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Robust per-point statistics: the baseline the point was judged
/// against plus the resulting verdict.
#[derive(Clone, Copy, Debug)]
pub struct PointJudgement {
    /// Median of the prior window.
    pub baseline: f64,
    /// Median absolute deviation of the prior window.
    pub mad: f64,
    /// Relative deviation of the point from the baseline.
    pub deviation: f64,
    /// The verdict.
    pub verdict: TrendVerdict,
}

/// Judge every point of a chronological series against the rolling
/// window of points before it.
pub fn judge_series(values: &[f64], cfg: &TrendConfig) -> Vec<PointJudgement> {
    let mut out = Vec::with_capacity(values.len());
    for (i, &v) in values.iter().enumerate() {
        let start = i.saturating_sub(cfg.window);
        let prior = &values[start..i];
        let j = if prior.len() < cfg.min_history {
            PointJudgement {
                baseline: median(prior),
                mad: 0.0,
                deviation: 0.0,
                verdict: TrendVerdict::Insufficient,
            }
        } else {
            let m = median(prior);
            let mad = median(&prior.iter().map(|x| (x - m).abs()).collect::<Vec<_>>());
            let sigma = 1.4826 * mad;
            let dev = if m > 0.0 { (v - m) / m } else { 0.0 };
            let prev_regressed = out
                .last()
                .is_some_and(|p: &PointJudgement| p.verdict == TrendVerdict::Regression);
            let verdict = if m <= 0.0 {
                TrendVerdict::Insufficient
            } else if dev < -cfg.tolerance && v < m - cfg.mad_gate * sigma {
                TrendVerdict::Regression
            } else if prev_regressed && dev >= -cfg.tolerance {
                TrendVerdict::Recovery
            } else if sigma / m > cfg.tolerance / 2.0 {
                TrendVerdict::Noisy
            } else if dev > cfg.tolerance && v > m + cfg.mad_gate * sigma {
                TrendVerdict::Improvement
            } else {
                TrendVerdict::Stable
            };
            PointJudgement {
                baseline: m,
                mad,
                deviation: dev,
                verdict,
            }
        };
        out.push(j);
    }
    out
}

/// The trend of one `(backend, actors, shards)` series.
#[derive(Clone, Debug)]
pub struct KeyTrend {
    /// Storage backend of the series.
    pub backend: String,
    /// Actor count of the series.
    pub actors: u64,
    /// Shard count of the series.
    pub shards: u64,
    /// Chronological throughput values, newest last.
    pub history: Vec<f64>,
    /// Timestamp of the newest row.
    pub latest_ts: u64,
    /// Judgement of the newest point.
    pub latest: PointJudgement,
    /// Whether the newest row belongs to the newest run in the whole
    /// history — only those series gate.
    pub in_latest_run: bool,
}

impl KeyTrend {
    /// Whether this series fails the gate.
    pub fn gated(&self) -> bool {
        self.in_latest_run && self.latest.verdict == TrendVerdict::Regression
    }

    /// One human-readable verdict line.
    pub fn line(&self) -> String {
        let v = self.history.last().copied().unwrap_or(0.0);
        if self.latest.verdict == TrendVerdict::Insufficient {
            return format!(
                "trend: [{}] {:>6} actors x {} shard(s): {:>12.0} ops/s ({} runs, \
                 insufficient history)",
                self.backend,
                self.actors,
                self.shards,
                v,
                self.history.len()
            );
        }
        format!(
            "trend: [{}] {:>6} actors x {} shard(s): {:>12.0} ops/s vs trend {:>12.0} \
             ({:+.1}%, {} runs) {}",
            self.backend,
            self.actors,
            self.shards,
            v,
            self.latest.baseline,
            self.latest.deviation * 100.0,
            self.history.len(),
            self.latest.verdict.label()
        )
    }
}

/// The whole trend analysis of a history.
#[derive(Clone, Debug)]
pub struct TrendReport {
    /// Per-series trends, ordered by (backend, shards, actors).
    pub keys: Vec<KeyTrend>,
    /// Timestamp of the newest run in the history.
    pub latest_ts: u64,
}

impl TrendReport {
    /// Series failing the gate.
    pub fn gated(&self) -> Vec<&KeyTrend> {
        self.keys.iter().filter(|k| k.gated()).collect()
    }
}

/// Group history rows into per-key series (file order is chronological —
/// [`append_rows`] enforces it) and judge each against its own trend.
pub fn analyze(rows: &[HistoryRow], cfg: &TrendConfig) -> TrendReport {
    let latest_ts = rows.iter().map(|r| r.unix_ts).max().unwrap_or(0);
    let mut series: BTreeMap<(String, u64, u64), Vec<&HistoryRow>> = BTreeMap::new();
    for r in rows {
        series
            .entry((r.backend.clone(), r.shards, r.actors))
            .or_default()
            .push(r);
    }
    let keys = series
        .into_iter()
        .map(|((backend, shards, actors), rows)| {
            let history: Vec<f64> = rows.iter().map(|r| r.ops_per_second).collect();
            let judgements = judge_series(&history, cfg);
            let latest = *judgements.last().expect("series is non-empty");
            let ts = rows.last().expect("series is non-empty").unix_ts;
            KeyTrend {
                backend,
                actors,
                shards,
                history,
                latest_ts: ts,
                latest,
                in_latest_run: ts == latest_ts,
            }
        })
        .collect();
    TrendReport { keys, latest_ts }
}

// ---------------------------------------------------------------------------
// Report rendering.
// ---------------------------------------------------------------------------

/// Provenance summary of one run.
#[derive(Clone, Debug)]
pub struct RunInfo {
    /// Run timestamp.
    pub unix_ts: u64,
    /// Host the run executed on.
    pub host: String,
    /// Commit the run measured.
    pub commit: String,
    /// Backends the run covered.
    pub backends: BTreeSet<String>,
    /// Rung count.
    pub rows: usize,
}

/// Distinct runs of a history, oldest first.
pub fn runs(rows: &[HistoryRow]) -> Vec<RunInfo> {
    let mut by_ts: BTreeMap<u64, RunInfo> = BTreeMap::new();
    for r in rows {
        let e = by_ts.entry(r.unix_ts).or_insert_with(|| RunInfo {
            unix_ts: r.unix_ts,
            host: r.host.clone(),
            commit: r.commit.clone(),
            backends: BTreeSet::new(),
            rows: 0,
        });
        e.backends.insert(r.backend.clone());
        e.rows += 1;
    }
    by_ts.into_values().collect()
}

/// Render a value series as a unicode sparkline (one glyph per run).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    values
        .iter()
        .map(|&v| {
            if hi <= lo {
                BARS[3]
            } else {
                let t = (v - lo) / (hi - lo);
                BARS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Format a Unix timestamp as an ISO-8601 UTC instant, no external
/// crates (Howard Hinnant's `civil_from_days`).
pub fn iso_utc(unix_ts: u64) -> String {
    let days = (unix_ts / 86_400) as i64;
    let secs = unix_ts % 86_400;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{y:04}-{m:02}-{d:02} {:02}:{:02}:{:02}Z",
        secs / 3600,
        (secs / 60) % 60,
        secs % 60
    )
}

/// How many trailing runs a report row's sparkline covers.
const SPARK_WINDOW: usize = 24;

fn spark_tail(history: &[f64]) -> &[f64] {
    &history[history.len().saturating_sub(SPARK_WINDOW)..]
}

/// Render the trend report as markdown: per `(backend, shards)` sections
/// with sparkline rung tables, plus the run provenance list.
pub fn render_markdown(rows: &[HistoryRow], report: &TrendReport, cfg: &TrendConfig) -> String {
    let mut out = String::from("# Benchmark history report\n\n");
    let run_list = runs(rows);
    out.push_str(&format!(
        "{} run(s), {} series, latest run {} — baseline: median + MAD over the \
         last {} run(s), gate at −{:.0}% beyond {}σ.\n\n",
        run_list.len(),
        report.keys.len(),
        iso_utc(report.latest_ts),
        cfg.window,
        cfg.tolerance * 100.0,
        cfg.mad_gate
    ));

    let gated = report.gated();
    if gated.is_empty() {
        out.push_str("**Gate: PASS** — no series regressed beyond its trend.\n\n");
    } else {
        out.push_str(&format!(
            "**Gate: FAIL** — {} series regressed beyond trend:\n\n",
            gated.len()
        ));
        for k in &gated {
            out.push_str(&format!("- {}\n", k.line()));
        }
        out.push('\n');
    }

    let mut sections: BTreeMap<(String, u64), Vec<&KeyTrend>> = BTreeMap::new();
    for k in &report.keys {
        sections
            .entry((k.backend.clone(), k.shards))
            .or_default()
            .push(k);
    }
    for ((backend, shards), keys) in sections {
        out.push_str(&format!("## backend `{backend}`, {shards} shard(s)\n\n"));
        out.push_str(
            "| actors | runs | trend | baseline ops/s | latest ops/s | Δ vs trend | verdict |\n\
             |---:|---:|---|---:|---:|---:|---|\n",
        );
        for k in keys {
            let latest = k.history.last().copied().unwrap_or(0.0);
            let (baseline, delta) = if k.latest.verdict == TrendVerdict::Insufficient {
                ("-".to_owned(), "-".to_owned())
            } else {
                (
                    format!("{:.0}", k.latest.baseline),
                    format!("{:+.1}%", k.latest.deviation * 100.0),
                )
            };
            out.push_str(&format!(
                "| {} | {} | {} | {} | {:.0} | {} | {} |\n",
                k.actors,
                k.history.len(),
                sparkline(spark_tail(&k.history)),
                baseline,
                latest,
                delta,
                k.latest.verdict.label()
            ));
        }
        out.push('\n');
    }

    out.push_str(
        "## Runs\n\n| when | host | commit | backends | rungs |\n|---|---|---|---|---:|\n",
    );
    for r in &run_list {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            iso_utc(r.unix_ts),
            r.host,
            r.commit,
            r.backends.iter().cloned().collect::<Vec<_>>().join(", "),
            r.rows
        ));
    }
    out
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render the trend report as a self-contained HTML page (inline CSS, no
/// external assets) — the CI artifact.
pub fn render_html(rows: &[HistoryRow], report: &TrendReport, cfg: &TrendConfig) -> String {
    let run_list = runs(rows);
    let gated = report.gated();
    let mut out = String::from(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>AzureBench benchmark history</title>\n<style>\n\
         body{font-family:system-ui,sans-serif;margin:2em;max-width:70em}\n\
         table{border-collapse:collapse;margin:1em 0}\n\
         th,td{border:1px solid #ccc;padding:.3em .6em;text-align:right}\n\
         th{background:#f0f0f0}td.l,th.l{text-align:left}\n\
         .spark{font-family:monospace;letter-spacing:.05em}\n\
         .pass{color:#006400;font-weight:bold}.fail{color:#8b0000;font-weight:bold}\n\
         .REGRESSION{color:#8b0000;font-weight:bold}.recovery{color:#006400}\n\
         .noisy{color:#8a6d00}\n</style></head><body>\n\
         <h1>AzureBench benchmark history</h1>\n",
    );
    out.push_str(&format!(
        "<p>{} run(s), {} series, latest run {} — baseline: median + MAD over the \
         last {} run(s), gate at &minus;{:.0}% beyond {}&sigma;.</p>\n",
        run_list.len(),
        report.keys.len(),
        iso_utc(report.latest_ts),
        cfg.window,
        cfg.tolerance * 100.0,
        cfg.mad_gate
    ));
    if gated.is_empty() {
        out.push_str("<p class=\"pass\">Gate: PASS — no series regressed beyond its trend.</p>\n");
    } else {
        out.push_str(&format!(
            "<p class=\"fail\">Gate: FAIL — {} series regressed beyond trend.</p>\n<ul>\n",
            gated.len()
        ));
        for k in &gated {
            out.push_str(&format!("<li>{}</li>\n", html_escape(&k.line())));
        }
        out.push_str("</ul>\n");
    }

    let mut sections: BTreeMap<(String, u64), Vec<&KeyTrend>> = BTreeMap::new();
    for k in &report.keys {
        sections
            .entry((k.backend.clone(), k.shards))
            .or_default()
            .push(k);
    }
    for ((backend, shards), keys) in sections {
        out.push_str(&format!(
            "<h2>backend <code>{}</code>, {shards} shard(s)</h2>\n\
             <table><tr><th>actors</th><th>runs</th><th class=\"l\">trend</th>\
             <th>baseline ops/s</th><th>latest ops/s</th><th>&Delta; vs trend</th>\
             <th class=\"l\">verdict</th></tr>\n",
            html_escape(&backend)
        ));
        for k in keys {
            let latest = k.history.last().copied().unwrap_or(0.0);
            let (baseline, delta) = if k.latest.verdict == TrendVerdict::Insufficient {
                ("-".to_owned(), "-".to_owned())
            } else {
                (
                    format!("{:.0}", k.latest.baseline),
                    format!("{:+.1}%", k.latest.deviation * 100.0),
                )
            };
            let verdict = k.latest.verdict.label();
            out.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td class=\"l spark\">{}</td><td>{}</td>\
                 <td>{:.0}</td><td>{}</td><td class=\"l {verdict}\">{verdict}</td></tr>\n",
                k.actors,
                k.history.len(),
                sparkline(spark_tail(&k.history)),
                baseline,
                latest,
                delta,
            ));
        }
        out.push_str("</table>\n");
    }

    out.push_str(
        "<h2>Runs</h2>\n<table><tr><th class=\"l\">when</th><th class=\"l\">host</th>\
         <th class=\"l\">commit</th><th class=\"l\">backends</th><th>rungs</th></tr>\n",
    );
    for r in &run_list {
        out.push_str(&format!(
            "<tr><td class=\"l\">{}</td><td class=\"l\">{}</td><td class=\"l\">{}</td>\
             <td class=\"l\">{}</td><td>{}</td></tr>\n",
            iso_utc(r.unix_ts),
            html_escape(&r.host),
            html_escape(&r.commit),
            html_escape(&r.backends.iter().cloned().collect::<Vec<_>>().join(", ")),
            r.rows
        ));
    }
    out.push_str("</table>\n</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(ts: u64, backend: &str, actors: u64, shards: u64, ops: f64) -> HistoryRow {
        HistoryRow {
            unix_ts: ts,
            host: "testhost".into(),
            commit: "deadbeef".into(),
            backend: backend.into(),
            scale: 0.1,
            seed: 2012,
            actors,
            shards,
            cores: 1,
            simulated_ops: 1000,
            wall_seconds: 0.5,
            ops_per_second: ops,
            per_shard_events: vec![2000],
        }
    }

    /// One single-rung run per value, chronological.
    fn series_rows(values: &[f64]) -> Vec<HistoryRow> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| row(1000 + i as u64, "was", 32, 1, v))
            .collect()
    }

    #[test]
    fn row_roundtrips_through_its_own_line() {
        let r = row(1234, "s3", 128, 4, 123456.7);
        let parsed = parse_history(&r.to_line()).unwrap();
        assert_eq!(parsed, vec![r]);
    }

    #[test]
    fn rows_match_the_checked_in_schema() {
        let line = row(1234, "s3", 128, 4, 123456.7).to_line();
        let doc = parse(line.as_bytes()).unwrap();
        let errors = crate::schema::validate_against_file(
            &doc,
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../schemas/bench_history.schema.json"
            ),
        );
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn legacy_run_line_expands_to_one_row_per_rung() {
        let legacy = r#"{"unix_ts": 500, "scale": 0.1, "seed": 2012, "shards": 4, "cores": 1, "engine": [{ "actors": 1, "shards": 1, "cores": 1, "simulated_ops": 50000, "wall_seconds": 0.004, "ops_per_second": 12500000.0, "per_shard_events": [100000] }, { "actors": 8, "shards": 4, "cores": 1, "simulated_ops": 400000, "wall_seconds": 0.03, "ops_per_second": 13333333.3, "per_shard_events": [200000, 200000, 200000, 200000] }]}"#;
        let (rows, legacy_lines) = migrate(legacy).unwrap();
        assert_eq!(legacy_lines, 1);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].unix_ts, 500);
        assert_eq!(rows[0].backend, "was");
        assert_eq!(rows[0].host, "unknown");
        assert_eq!(rows[1].actors, 8);
        assert_eq!(rows[1].shards, 4);
        assert_eq!(rows[1].per_shard_events.len(), 4);
        // Migrated rows are v1 rows: parsing their lines yields them back.
        let text: String = rows.iter().map(|r| r.to_line() + "\n").collect();
        let (again, legacy_again) = migrate(&text).unwrap();
        assert_eq!(again, rows);
        assert_eq!(legacy_again, 0);
    }

    #[test]
    fn snapshot_rows_carry_config_provenance() {
        let doc = parse(
            br#"{"engine": [
                   { "backend": "was", "actors": 8, "shards": 4, "cores": 1,
                     "simulated_ops": 400, "wall_seconds": 0.02,
                     "ops_per_second": 20000.0, "per_shard_events": [200, 200, 200, 200] }
                 ],
                 "config": {"scale": 0.1, "seed": 2012, "shards": 4, "cores": 1}}"#,
        )
        .unwrap();
        let rows = snapshot_history_rows(&doc, "h1", "c0ffee", 42).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(
            (r.unix_ts, r.host.as_str(), r.commit.as_str()),
            (42, "h1", "c0ffee")
        );
        assert_eq!((r.scale, r.seed, r.actors, r.shards), (0.1, 2012, 8, 4));
        assert_eq!(r.per_shard_events, vec![200, 200, 200, 200]);
    }

    #[test]
    fn unknown_schema_tag_is_an_error() {
        let line = r#"{"schema": "azurebench-bench-history/v9", "unix_ts": 1}"#;
        let err = parse_history(line).unwrap_err();
        assert!(err.contains("unknown history schema"), "{err}");
    }

    #[test]
    fn append_refuses_rows_older_than_the_tail() {
        let dir = std::env::temp_dir().join(format!("azb-hist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hist.jsonl");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        append_rows(path, &[row(100, "was", 1, 1, 10.0)]).unwrap();
        // Equal timestamps append fine (same run, multiple rungs/backends).
        append_rows(path, &[row(100, "was", 8, 1, 20.0)]).unwrap();
        append_rows(path, &[row(200, "was", 1, 1, 11.0)]).unwrap();
        let err = append_rows(path, &[row(150, "was", 1, 1, 12.0)]).unwrap_err();
        assert!(err.contains("refusing to append"), "{err}");
        let rows = parse_history(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(rows.len(), 3);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn step_regression_of_30_percent_gates() {
        // Clean series with small jitter, then a 30 % step down.
        let mut vals = vec![1000.0, 1010.0, 990.0, 1005.0, 995.0, 1000.0];
        vals.push(700.0);
        let report = analyze(&series_rows(&vals), &TrendConfig::default());
        assert_eq!(report.keys.len(), 1);
        let k = &report.keys[0];
        assert_eq!(k.latest.verdict, TrendVerdict::Regression);
        assert!(k.gated());
        assert!(k.line().contains("REGRESSION"), "{}", k.line());
    }

    #[test]
    fn noisy_but_flat_series_passes_without_gating() {
        // ±15 % swings around a flat 1000 — the same −30 % low sample that
        // gates a quiet series is inside this series' own noise band.
        let vals = [
            1000.0, 1150.0, 850.0, 1120.0, 880.0, 1100.0, 900.0, 1150.0, 700.0,
        ];
        let report = analyze(&series_rows(&vals), &TrendConfig::default());
        let k = &report.keys[0];
        assert!(!k.gated(), "noisy series must not gate: {}", k.line());
        assert_eq!(k.latest.verdict, TrendVerdict::Noisy);
    }

    #[test]
    fn slow_drift_within_the_band_does_not_gate() {
        // 2 % decline per run: each point stays within tolerance of the
        // rolling median, so the detector (by design) follows the drift.
        let vals: Vec<f64> = (0..12).map(|i| 1000.0 * 0.98f64.powi(i)).collect();
        let report = analyze(&series_rows(&vals), &TrendConfig::default());
        let k = &report.keys[0];
        assert_eq!(k.latest.verdict, TrendVerdict::Stable, "{}", k.line());
        assert!(!k.gated());
    }

    #[test]
    fn recovery_after_a_regression_is_labelled_and_passes() {
        let vals = [1000.0, 1005.0, 995.0, 1000.0, 650.0, 1002.0];
        let rows = series_rows(&vals);
        let judged = judge_series(&vals, &TrendConfig::default());
        assert_eq!(judged[4].verdict, TrendVerdict::Regression);
        assert_eq!(judged[5].verdict, TrendVerdict::Recovery);
        let report = analyze(&rows, &TrendConfig::default());
        assert!(!report.keys[0].gated());
    }

    #[test]
    fn improvement_beyond_the_band_is_labelled() {
        let vals = [1000.0, 1005.0, 995.0, 1000.0, 1500.0];
        let judged = judge_series(&vals, &TrendConfig::default());
        assert_eq!(judged[4].verdict, TrendVerdict::Improvement);
    }

    #[test]
    fn short_series_are_insufficient_not_gated() {
        let report = analyze(&series_rows(&[1000.0, 600.0]), &TrendConfig::default());
        let k = &report.keys[0];
        assert_eq!(k.latest.verdict, TrendVerdict::Insufficient);
        assert!(!k.gated());
    }

    #[test]
    fn only_series_in_the_latest_run_gate() {
        // The s3 series regressed in an *older* run; the latest run only
        // covers was. The stale regression must not gate today's run.
        let mut rows = Vec::new();
        for (i, v) in [1000.0, 1000.0, 1000.0, 1000.0, 600.0].iter().enumerate() {
            rows.push(row(1000 + i as u64, "s3", 32, 1, *v));
        }
        for (i, v) in [500.0, 505.0, 495.0, 500.0, 502.0].iter().enumerate() {
            rows.push(row(2000 + i as u64, "was", 32, 1, *v));
        }
        let report = analyze(&rows, &TrendConfig::default());
        let s3 = report.keys.iter().find(|k| k.backend == "s3").unwrap();
        assert_eq!(s3.latest.verdict, TrendVerdict::Regression);
        assert!(!s3.in_latest_run);
        assert!(report.gated().is_empty());
    }

    #[test]
    fn snapshot_and_history_agreement_is_checked_per_backend() {
        let snap = vec![
            EngineRow {
                backend: "was".into(),
                actors: 32,
                shards: 1,
                ops_per_second: 1000.0,
            },
            EngineRow {
                backend: "was".into(),
                actors: 128,
                shards: 1,
                ops_per_second: 900.0,
            },
        ];
        let hist = vec![
            row(100, "was", 32, 1, 800.0), // older run: may disagree freely
            row(200, "was", 32, 1, 1000.0),
            row(200, "was", 128, 1, 900.0),
        ];
        check_snapshot_agreement(&snap, &hist).unwrap();

        // Snapshot regenerated without recording: value differs.
        let mut stale = hist.clone();
        stale[1].ops_per_second = 2000.0;
        let err = check_snapshot_agreement(&snap, &stale).unwrap_err();
        assert!(err.contains("disagree on the latest"), "{err}");

        // Snapshot has a rung the history's latest run lacks.
        let err = check_snapshot_agreement(&snap, &hist[..2]).unwrap_err();
        assert!(err.contains("does not"), "{err}");

        // History has no run for the snapshot's backend at all.
        let s3 = vec![EngineRow {
            backend: "s3".into(),
            actors: 32,
            shards: 1,
            ops_per_second: 1.0,
        }];
        let err = check_snapshot_agreement(&s3, &hist).unwrap_err();
        assert!(err.contains("no run for that backend"), "{err}");
    }

    #[test]
    fn report_renders_markdown_and_html() {
        let vals = [1000.0, 1005.0, 995.0, 1000.0, 650.0];
        let rows = series_rows(&vals);
        let report = analyze(&rows, &TrendConfig::default());
        let md = render_markdown(&rows, &report, &TrendConfig::default());
        assert!(md.contains("Gate: FAIL"), "{md}");
        assert!(md.contains("backend `was`, 1 shard(s)"));
        assert!(md.contains('█'), "sparkline missing: {md}");
        let html = render_html(&rows, &report, &TrendConfig::default());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("class=\"fail\""));
        assert!(html.contains("testhost"));
        // Self-contained: no external references.
        assert!(!html.contains("http://") && !html.contains("https://"));
    }

    #[test]
    fn sparkline_spans_the_range() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'));
        assert_eq!(sparkline(&[5.0, 5.0]), "▄▄");
    }

    #[test]
    fn iso_utc_formats_known_instants() {
        assert_eq!(iso_utc(0), "1970-01-01 00:00:00Z");
        assert_eq!(iso_utc(1_786_110_026), "2026-08-07 13:40:26Z");
    }

    // ---- the legacy two-snapshot gate (moved from the bench_check bin) ----

    fn erow(backend: &str, actors: u64, shards: u64, ops: f64) -> EngineRow {
        EngineRow {
            backend: backend.to_owned(),
            actors,
            shards,
            ops_per_second: ops,
        }
    }

    #[test]
    fn rows_without_backend_or_shards_default_to_the_reference() {
        let doc = parse(
            br#"{"engine": [
                {"actors": 100, "ops_per_second": 5000.0},
                {"backend": "s3", "actors": 100, "shards": 4, "ops_per_second": 4000.0}
            ]}"#,
        )
        .unwrap();
        let rows = engine_rows(&doc).unwrap();
        assert_eq!(rows[0], erow(DEFAULT_BACKEND, 100, 1, 5000.0));
        assert_eq!(rows[1], erow("s3", 100, 4, 4000.0));
    }

    #[test]
    fn matching_rows_within_tolerance_pass() {
        let (lines, failures) = check(
            &[erow("was", 100, 1, 1000.0)],
            &[erow("was", 100, 1, 800.0)],
            0.25,
        );
        assert_eq!(failures, 0, "{lines:?}");
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let (lines, failures) = check(
            &[erow("was", 100, 1, 1000.0)],
            &[erow("was", 100, 1, 700.0)],
            0.25,
        );
        assert_eq!(failures, 1);
        assert!(lines.iter().any(|l| l.contains("REGRESSION")), "{lines:?}");
    }

    #[test]
    fn missing_candidate_row_fails() {
        let base = [erow("was", 100, 1, 1000.0), erow("was", 200, 1, 1500.0)];
        let (_, failures) = check(&base, &[erow("was", 100, 1, 1000.0)], 0.25);
        assert_eq!(failures, 1);
    }

    #[test]
    fn ladder_growth_on_a_known_combination_passes_freely() {
        let base = [erow("was", 100, 1, 1000.0)];
        let cand = [erow("was", 100, 1, 1000.0), erow("was", 400, 1, 2000.0)];
        let (lines, failures) = check(&base, &cand, 0.25);
        assert_eq!(failures, 0, "{lines:?}");
    }

    #[test]
    fn unknown_backend_combination_is_an_error_not_a_silent_pass() {
        let base = [erow("was", 100, 1, 1000.0)];
        let cand = [erow("was", 100, 1, 1000.0), erow("gcs", 100, 1, 900.0)];
        let (lines, failures) = check(&base, &cand, 0.25);
        assert_eq!(failures, 1);
        assert!(
            lines.iter().any(|l| l.contains("absent from the baseline")),
            "{lines:?}"
        );
    }

    #[test]
    fn unknown_shard_combination_is_an_error_too() {
        let base = [erow("was", 100, 1, 1000.0), erow("was", 100, 2, 1800.0)];
        let cand = [
            erow("was", 100, 1, 1000.0),
            erow("was", 100, 2, 1800.0),
            erow("was", 100, 8, 4000.0),
        ];
        let (_, failures) = check(&base, &cand, 0.25);
        assert_eq!(failures, 1);
    }

    #[test]
    fn backend_names_are_matched_case_insensitively_at_parse_time() {
        // `figures bench` serializes the serde-derived variant name
        // (`"Was"`); the hand-written history/config lines use lowercase.
        // Parsing folds both onto the lowercase profile name.
        let doc = parse(br#"{"engine": [{"backend": "Was", "actors": 1, "ops_per_second": 1.0}]}"#)
            .unwrap();
        assert_eq!(engine_rows(&doc).unwrap()[0].backend, "was");
    }
}
