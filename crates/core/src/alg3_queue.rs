//! Algorithm 3: Queue storage with a **separate queue per worker**
//! (Figure 6).
//!
//! Each worker creates its own queue (`AzureBenchQueue + roleid`), so every
//! worker gets its own partition — this is the configuration where the
//! paper observes near-linear (sometimes super-linear) scaling and
//! recommends "usage of multiple queues as and when possible".
//!
//! For each message size (4–48 KB usable), the worker inserts its share of
//! the 20 000 total messages, peeks them all, then gets-and-deletes them
//! all. Phase times are measured separately for Put / Peek / Get (the Get
//! figure includes the delete, as in the paper).

use crate::config::BenchConfig;
use crate::payload::PayloadGen;
use crate::report::{Figure, Series};
use azsim_client::{Environment, QueueClient, VirtualEnv};
use std::collections::HashMap;
use std::time::Duration;

/// The three measured queue operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueueOp {
    /// `PutMessage`.
    Put,
    /// `PeekMessage`.
    Peek,
    /// `GetMessage` + `DeleteMessage` (the paper folds the delete in).
    Get,
}

impl QueueOp {
    /// All ops in phase order.
    pub const ALL: [QueueOp; 3] = [QueueOp::Put, QueueOp::Peek, QueueOp::Get];

    /// Label used in series names.
    pub fn label(self) -> &'static str {
        match self {
            QueueOp::Put => "put",
            QueueOp::Peek => "peek",
            QueueOp::Get => "get",
        }
    }
}

/// Result of one Algorithm 3 sweep at one worker count: for each
/// `(message size, op)`, the mean per-worker phase time in seconds and the
/// mean per-op latency in seconds.
pub type Alg3Result = HashMap<(usize, QueueOp), (f64, f64)>;

/// Run Algorithm 3 at one worker count.
pub fn run_alg3(cfg: &BenchConfig, workers: usize) -> Alg3Result {
    let sizes = cfg.message_sizes();
    let per_worker = (cfg.queue_messages_total() / workers).max(1);
    let seed = cfg.seed;

    let report = crate::exec::run_cluster_workers(
        cfg,
        crate::exec::build_cluster(cfg),
        workers,
        move |ctx| {
            let sizes = sizes.clone();
            async move {
                let env = VirtualEnv::new(&ctx);
                let me = env.instance();
                let queue = QueueClient::new(&env, format!("AzureBenchQueue{me}"));
                queue.create().await.unwrap();
                let mut gen = PayloadGen::new(seed, me as u64);
                let mut out: Vec<((usize, QueueOp), f64)> = Vec::new();

                for &size in &sizes {
                    // ---- Put phase ----
                    let t0 = env.now();
                    for _ in 0..per_worker {
                        queue.put_message(gen.bytes(size)).await.unwrap();
                    }
                    out.push((
                        (size, QueueOp::Put),
                        env.now().saturating_since(t0).as_secs_f64(),
                    ));

                    // ---- Peek phase ----
                    let t0 = env.now();
                    for _ in 0..per_worker {
                        let m = queue.peek_message().await.unwrap();
                        assert!(m.is_some(), "peek must find a message");
                    }
                    out.push((
                        (size, QueueOp::Peek),
                        env.now().saturating_since(t0).as_secs_f64(),
                    ));

                    // ---- Get (+ delete) phase ----
                    let t0 = env.now();
                    for _ in 0..per_worker {
                        let m = queue
                            .get_message_with_visibility(Duration::from_secs(3600))
                            .await
                            .unwrap()
                            .expect("queue must not run dry");
                        assert_eq!(m.data.len(), size);
                        queue.delete_message(&m).await.unwrap();
                    }
                    out.push((
                        (size, QueueOp::Get),
                        env.now().saturating_since(t0).as_secs_f64(),
                    ));
                }
                queue.delete_queue().await.unwrap();
                out
            }
        },
    );

    // Average phase time across workers; per-op mean = phase / count.
    let mut acc: HashMap<(usize, QueueOp), Vec<f64>> = HashMap::new();
    for worker in report.results {
        for (key, secs) in worker {
            acc.entry(key).or_default().push(secs);
        }
    }
    acc.into_iter()
        .map(|(key, v)| {
            let mean_phase = v.iter().sum::<f64>() / v.len() as f64;
            (key, (mean_phase, mean_phase / per_worker as f64))
        })
        .collect()
}

/// Sweep the worker ladder and produce Figure 6: one sub-figure per
/// operation, one series per message size, y = mean per-worker phase time.
pub fn figure_6(cfg: &BenchConfig) -> Vec<Figure> {
    let sizes = cfg.message_sizes();
    let mut figs: Vec<Figure> = QueueOp::ALL
        .iter()
        .map(|op| {
            let mut f = Figure::new(
                format!("fig6-{}", op.label()),
                format!(
                    "Queue benchmark, separate queue per worker: {} message",
                    op.label()
                ),
                "workers",
                "seconds (mean per-worker phase time)",
            );
            for &s in &sizes {
                f.series.push(Series::new(format!("{}KB", s / 1024)));
            }
            f
        })
        .collect();

    let swept = crate::sweep::sweep(cfg, run_alg3);
    for (&w, result) in cfg.workers.iter().zip(swept) {
        for (oi, op) in QueueOp::ALL.iter().enumerate() {
            for (si, &size) in sizes.iter().enumerate() {
                if let Some((phase_secs, _)) = result.get(&(size, *op)) {
                    figs[oi].series[si].push(w as f64, *phase_secs);
                }
            }
        }
    }
    figs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        // 100 messages total, tiny ladder.
        BenchConfig::paper().with_scale(0.005).with_workers(vec![2])
    }

    #[test]
    fn alg3_measures_every_size_and_op() {
        let cfg = tiny();
        let r = run_alg3(&cfg, 2);
        assert_eq!(r.len(), cfg.message_sizes().len() * 3);
        for ((size, op), (phase, per_op)) in &r {
            assert!(*phase > 0.0, "{size}/{op:?} phase zero");
            assert!(*per_op > 0.0 && per_op <= phase);
        }
    }

    #[test]
    fn peek_put_get_ordering_holds_at_every_size() {
        let cfg = tiny();
        let r = run_alg3(&cfg, 2);
        for &size in &cfg.message_sizes() {
            let put = r[&(size, QueueOp::Put)].1;
            let peek = r[&(size, QueueOp::Peek)].1;
            let get = r[&(size, QueueOp::Get)].1;
            assert!(
                peek < put && put < get,
                "size {size}: expected peek {peek} < put {put} < get {get}"
            );
        }
    }

    #[test]
    fn sixteen_kb_get_anomaly_reproduces() {
        let cfg = tiny();
        let r = run_alg3(&cfg, 2);
        let get = |kb: usize| r[&(kb << 10, QueueOp::Get)].1;
        // 16 KB Get is slower than both 8 KB and 32 KB.
        assert!(get(16) > get(8), "16KB {} !> 8KB {}", get(16), get(8));
        assert!(get(16) > get(32), "16KB {} !> 32KB {}", get(16), get(32));
    }

    #[test]
    fn more_workers_shrink_phase_time() {
        // Fixed total load, separate queues: phase time must drop.
        let cfg = BenchConfig::paper().with_scale(0.02);
        let r1 = run_alg3(&cfg, 1);
        let r8 = run_alg3(&cfg, 8);
        let size = 32 << 10;
        assert!(
            r8[&(size, QueueOp::Put)].0 < r1[&(size, QueueOp::Put)].0 / 4.0,
            "8 workers {} must be far below 1 worker {}",
            r8[&(size, QueueOp::Put)].0,
            r1[&(size, QueueOp::Put)].0
        );
    }

    #[test]
    fn figure6_has_three_subfigures_with_ladders() {
        let cfg = BenchConfig::paper()
            .with_scale(0.005)
            .with_workers(vec![1, 2]);
        let figs = figure_6(&cfg);
        assert_eq!(figs.len(), 3);
        for f in &figs {
            assert_eq!(f.series.len(), cfg.message_sizes().len());
            for s in &f.series {
                assert_eq!(s.points.len(), 2);
            }
        }
    }
}
