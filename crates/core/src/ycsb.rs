//! YCSB-style workloads over the simulated Table storage.
//!
//! The paper predates standardized cloud-storage benchmarking on Azure;
//! YCSB (Cooper et al., SoCC'10) became the de-facto suite for exactly the
//! kind of key-value serving the Table service offers. This module adds
//! the classic core workloads A–F as an *extension* of AzureBench, running
//! against the same simulated cluster so their results are comparable with
//! the paper's Figure 8/9 numbers.
//!
//! | Workload | Mix |
//! |---|---|
//! | A | 50% read / 50% update |
//! | B | 95% read / 5% update |
//! | C | 100% read |
//! | D | 95% read (latest) / 5% insert |
//! | E | 95% scan / 5% insert |
//! | F | 50% read / 50% read-modify-write |
//!
//! Keys are drawn from a Zipfian distribution (θ = 0.99, YCSB's default)
//! over the loaded key space, deterministic per worker stream.

use crate::config::BenchConfig;
use crate::payload::PayloadGen;
use azsim_client::{Environment, TableClient, VirtualEnv};
use azsim_core::stats::OnlineStats;
use azsim_fabric::Cluster;
use azsim_storage::{Entity, PropValue};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::HashMap;

/// The six YCSB core workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum YcsbWorkload {
    /// 50/50 read/update — "update heavy".
    A,
    /// 95/5 read/update — "read mostly".
    B,
    /// Read only.
    C,
    /// Read latest, 5% inserts.
    D,
    /// Short scans, 5% inserts.
    E,
    /// Read-modify-write.
    F,
}

impl YcsbWorkload {
    /// All workloads.
    pub const ALL: [YcsbWorkload; 6] = [
        YcsbWorkload::A,
        YcsbWorkload::B,
        YcsbWorkload::C,
        YcsbWorkload::D,
        YcsbWorkload::E,
        YcsbWorkload::F,
    ];

    /// Single-letter label.
    pub fn label(self) -> &'static str {
        match self {
            YcsbWorkload::A => "A",
            YcsbWorkload::B => "B",
            YcsbWorkload::C => "C",
            YcsbWorkload::D => "D",
            YcsbWorkload::E => "E",
            YcsbWorkload::F => "F",
        }
    }
}

/// The operation classes YCSB issues.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum YcsbOp {
    /// Point read.
    Read,
    /// Blind update.
    Update,
    /// Insert of a new key.
    Insert,
    /// Partition scan.
    Scan,
    /// Read-modify-write (read + conditional-free update).
    Rmw,
}

/// A Zipfian generator over `0..n` with parameter `theta` (YCSB's
/// `ScrambledZipfian` without the scrambling — we hash afterwards),
/// using the Gray/Jim rejection-free method.
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Build a generator over `0..n` items.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0 && theta > 0.0 && theta < 1.0);
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for moderate n (the benchmarks load ≤ ~100k keys).
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draw the next rank (0 = most popular).
    pub fn next(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let _ = self.zeta2;
        ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64 % self.n
    }
}

/// Per-op latency statistics of one YCSB run.
pub type YcsbResult = HashMap<YcsbOp, OnlineStats>;

/// YCSB run parameters.
#[derive(Clone, Debug)]
pub struct YcsbConfig {
    /// Records loaded before the run.
    pub records: usize,
    /// Operations per worker.
    pub ops_per_worker: usize,
    /// Value size in bytes.
    pub value_size: usize,
    /// Zipfian theta.
    pub theta: f64,
    /// Maximum rows returned by a scan.
    pub scan_len: usize,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            records: 1_000,
            ops_per_worker: 500,
            value_size: 1 << 10,
            theta: 0.99,
            scan_len: 20,
        }
    }
}

pub(crate) fn record_key(i: u64) -> (String, String) {
    // Spread records over 16 partitions by hashed prefix — a "good
    // partitioning" per the paper's advice — with the row key carrying the
    // record id.
    let p = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) & 0xF;
    (format!("part-{p:02}"), format!("user{i:010}"))
}

/// Run one YCSB workload on the simulated cluster at `workers` workers.
pub fn run_ycsb(
    bench: &BenchConfig,
    ycsb: &YcsbConfig,
    workload: YcsbWorkload,
    workers: usize,
) -> YcsbResult {
    let records = ycsb.records as u64;
    let ops = ycsb.ops_per_worker;
    let value_size = ycsb.value_size;
    let theta = ycsb.theta;
    let scan_len = ycsb.scan_len;
    let seed = bench.seed;

    let report = crate::exec::run_cluster_workers(
        bench,
        Cluster::new(bench.params.clone()),
        workers,
        move |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let table = TableClient::new(&env, "usertable");
            table.create_table().await.unwrap();
            let mut gen = PayloadGen::new(seed, ctx.id().0 as u64);

            // ---- Load phase: each worker loads its share ----
            let me = ctx.id().0 as u64;
            let w = workers as u64;
            for i in (me..records).step_by(w as usize) {
                let (pk, rk) = record_key(i);
                table
                    .insert(
                        Entity::new(pk, rk)
                            .with("field0", PropValue::Binary(gen.bytes(value_size))),
                    )
                    .await
                    .unwrap();
            }

            // ---- Transaction phase ----
            let zipf = Zipfian::new(records, theta);
            let mut stats: YcsbResult = HashMap::new();
            for opno in 0..ops {
                let op = ctx.with_rng(|r| {
                    let roll: f64 = r.random();
                    match workload {
                        YcsbWorkload::A => {
                            if roll < 0.5 {
                                YcsbOp::Read
                            } else {
                                YcsbOp::Update
                            }
                        }
                        YcsbWorkload::B => {
                            if roll < 0.95 {
                                YcsbOp::Read
                            } else {
                                YcsbOp::Update
                            }
                        }
                        YcsbWorkload::C => YcsbOp::Read,
                        YcsbWorkload::D => {
                            if roll < 0.95 {
                                YcsbOp::Read
                            } else {
                                YcsbOp::Insert
                            }
                        }
                        YcsbWorkload::E => {
                            if roll < 0.95 {
                                YcsbOp::Scan
                            } else {
                                YcsbOp::Insert
                            }
                        }
                        YcsbWorkload::F => {
                            if roll < 0.5 {
                                YcsbOp::Read
                            } else {
                                YcsbOp::Rmw
                            }
                        }
                    }
                });
                let rank = ctx.with_rng(|r| zipf.next(r));
                let (pk, rk) = record_key(rank);
                let t0 = env.now();
                match op {
                    YcsbOp::Read => {
                        let got = table.query(&pk, &rk).await.unwrap();
                        assert!(got.is_some(), "loaded key must exist");
                    }
                    YcsbOp::Update => {
                        table
                            .update(
                                Entity::new(&pk, &rk)
                                    .with("field0", PropValue::Binary(gen.bytes(value_size))),
                            )
                            .await
                            .unwrap();
                    }
                    YcsbOp::Insert => {
                        // Unique new id: disjoint per (worker, op index) and
                        // disjoint from the loaded key space.
                        let id = records + me + (opno as u64) * w;
                        let (pk, rk) = record_key(id + 1_000_000_000);
                        table
                            .insert(
                                Entity::new(pk, rk)
                                    .with("field0", PropValue::Binary(gen.bytes(value_size))),
                            )
                            .await
                            .unwrap();
                    }
                    YcsbOp::Scan => {
                        let rows = table.query_partition(&pk).await.unwrap();
                        assert!(!rows.is_empty());
                        std::hint::black_box(rows.len().min(scan_len));
                    }
                    YcsbOp::Rmw => {
                        let (e, _) = table.query(&pk, &rk).await.unwrap().unwrap();
                        let mut updated = e.clone();
                        updated
                            .properties
                            .insert("field0".into(), PropValue::Binary(gen.bytes(value_size)));
                        table.update(updated).await.unwrap();
                    }
                }
                stats
                    .entry(op)
                    .or_default()
                    .record(env.now().saturating_since(t0).as_secs_f64());
            }
            stats
        },
    );

    let mut merged: YcsbResult = HashMap::new();
    for worker in report.results {
        for (op, s) in worker {
            merged.entry(op).or_default().merge(&s);
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench() -> BenchConfig {
        BenchConfig::paper().with_scale(0.01)
    }

    fn small() -> YcsbConfig {
        YcsbConfig {
            records: 100,
            ops_per_worker: 50,
            value_size: 256,
            ..YcsbConfig::default()
        }
    }

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let z = Zipfian::new(1_000, 0.99);
        let mut rng = azsim_core::rng::stream_rng(1, 1);
        let mut counts = vec![0u32; 1_000];
        for _ in 0..20_000 {
            let r = z.next(&mut rng);
            assert!(r < 1_000);
            counts[r as usize] += 1;
        }
        // Rank 0 must be far more popular than the median rank.
        assert!(counts[0] > 20 * counts[500].max(1));
        // But the tail must still be hit.
        assert!(counts[500..].iter().any(|&c| c > 0));
    }

    #[test]
    fn zipfian_theta_controls_skew() {
        let mut rng = azsim_core::rng::stream_rng(2, 2);
        let hits_top10 = |theta: f64, rng: &mut rand::rngs::SmallRng| {
            let z = Zipfian::new(1_000, theta);
            (0..5_000).filter(|_| z.next(rng) < 10).count()
        };
        let mild = hits_top10(0.5, &mut rng);
        let strong = hits_top10(0.99, &mut rng);
        assert!(
            strong > mild,
            "higher theta must be more skewed: {strong} vs {mild}"
        );
    }

    #[test]
    fn workload_a_mixes_reads_and_updates() {
        let r = run_ycsb(&bench(), &small(), YcsbWorkload::A, 2);
        let reads = r[&YcsbOp::Read].count();
        let updates = r[&YcsbOp::Update].count();
        assert_eq!(reads + updates, 100);
        assert!(
            reads > 20 && updates > 20,
            "mix badly skewed: {reads}/{updates}"
        );
        // Updates replicate; reads do not: updates must be slower.
        assert!(r[&YcsbOp::Update].mean() > r[&YcsbOp::Read].mean());
    }

    #[test]
    fn workload_c_is_read_only() {
        let r = run_ycsb(&bench(), &small(), YcsbWorkload::C, 2);
        assert_eq!(r.len(), 1);
        assert_eq!(r[&YcsbOp::Read].count(), 100);
    }

    #[test]
    fn workload_f_rmw_costs_more_than_read() {
        let r = run_ycsb(&bench(), &small(), YcsbWorkload::F, 2);
        assert!(r[&YcsbOp::Rmw].mean() > r[&YcsbOp::Read].mean() * 1.5);
    }

    #[test]
    fn inserts_in_d_and_e_succeed() {
        for wl in [YcsbWorkload::D, YcsbWorkload::E] {
            let r = run_ycsb(&bench(), &small(), wl, 3);
            if let Some(ins) = r.get(&YcsbOp::Insert) {
                assert!(ins.count() > 0);
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_ycsb(&bench(), &small(), YcsbWorkload::A, 2);
        let b = run_ycsb(&bench(), &small(), YcsbWorkload::A, 2);
        for (op, s) in &a {
            assert_eq!(s.count(), b[op].count());
            assert_eq!(s.mean(), b[op].mean());
        }
    }
}
