//! Figure data: named series over the worker axis, with ASCII and CSV
//! rendering so every paper figure can be regenerated as text.

use serde::Serialize;

/// One line of a figure: a named series of `(x, y)` points.
#[derive(Clone, Debug, Serialize)]
pub struct Series {
    /// Series label (e.g. `"page-upload"`, `"get-16KB"`).
    pub name: String,
    /// `(x, y)` points; x is almost always the worker count.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// An empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at a given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }

    /// Largest y value (0 for an empty series).
    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|(_, y)| *y).fold(0.0, f64::max)
    }
}

/// A reproducible paper figure: metadata plus its series.
#[derive(Clone, Debug, Serialize)]
pub struct Figure {
    /// Identifier, e.g. `"fig4a"`.
    pub id: String,
    /// Human title, e.g. `"Blob storage throughput"`.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// An empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Find a series by name.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Render as an aligned text table: one row per x, one column per
    /// series (the textual equivalent of the paper's plot).
    pub fn render_table(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let mut out = format!("# {} — {}\n# y: {}\n", self.id, self.title, self.y_label);
        let name_w = self
            .series
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(4)
            .max(self.x_label.len())
            .max(10);
        out.push_str(&format!("{:>w$}", self.x_label, w = name_w));
        for s in &self.series {
            out.push_str(&format!(" | {:>w$}", s.name, w = name_w));
        }
        out.push('\n');
        for x in &xs {
            out.push_str(&format!("{:>w$.0}", x, w = name_w));
            for s in &self.series {
                match s.y_at(*x) {
                    Some(y) => out.push_str(&format!(" | {:>w$.4}", y, w = name_w)),
                    None => out.push_str(&format!(" | {:>w$}", "-", w = name_w)),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV: `x,series1,series2,...`.
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let mut out = String::from(&self.x_label.replace(' ', "_"));
        for s in &self.series {
            out.push(',');
            out.push_str(&s.name);
        }
        out.push('\n');
        for x in &xs {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                out.push(',');
                if let Some(y) = s.y_at(*x) {
                    out.push_str(&format!("{y}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut f = Figure::new("figX", "Test", "workers", "seconds");
        let mut a = Series::new("alpha");
        a.push(1.0, 0.5);
        a.push(2.0, 0.25);
        let mut b = Series::new("beta");
        b.push(1.0, 1.5);
        f.series.push(a);
        f.series.push(b);
        f
    }

    #[test]
    fn series_lookup() {
        let f = sample();
        assert_eq!(f.series("alpha").unwrap().y_at(2.0), Some(0.25));
        assert_eq!(f.series("alpha").unwrap().y_at(3.0), None);
        assert!(f.series("gamma").is_none());
        assert_eq!(f.series("beta").unwrap().max_y(), 1.5);
    }

    #[test]
    fn table_renders_all_points_and_gaps() {
        let t = sample().render_table();
        assert!(t.contains("figX"));
        assert!(t.contains("alpha"));
        assert!(t.contains("0.2500"));
        // beta has no point at x=2 → a dash.
        assert!(t.contains('-'));
    }

    #[test]
    fn csv_roundtrips_structure() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "workers,alpha,beta");
        assert_eq!(lines.next().unwrap(), "1,0.5,1.5");
        assert_eq!(lines.next().unwrap(), "2,0.25,");
    }

    #[test]
    fn empty_figure_renders() {
        let f = Figure::new("f", "t", "x", "y");
        assert!(f.render_table().contains("# f"));
        assert_eq!(f.to_csv(), "x\n");
    }
}
