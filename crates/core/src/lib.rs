//! # azurebench — the AzureBench benchmark suite, reproduced in Rust
//!
//! This crate is the paper's primary contribution: the benchmark programs
//! of Algorithms 1–5 and the harness that regenerates every table and
//! figure of the evaluation (Section IV), running against the simulated
//! Windows Azure storage cluster (`azsim-*` crates) on the deterministic
//! virtual-time runtime.
//!
//! | Paper artifact | Module | Harness target |
//! |---|---|---|
//! | Table I (VM sizes) | `azsim_compute::vm` | `figures table1` |
//! | Fig. 4 (blob up/download) | [`alg1_blob`] | `figures fig4` |
//! | Fig. 5 (chunked download) | [`alg1_blob`] | `figures fig5` |
//! | Fig. 6 (queue, per-worker queues) | [`alg3_queue`] | `figures fig6` |
//! | Fig. 7 (queue, shared queue) | [`alg4_queue`] | `figures fig7` |
//! | Fig. 8 (table CRUD) | [`alg5_table`] | `figures fig8` |
//! | Fig. 9 (per-op comparison) | [`fig9`] | `figures fig9` |
//! | Alg. 2 (queue barrier) | `azsim_framework::barrier` | tests/benches |
//!
//! Run `cargo run --release -p azurebench --bin figures -- all` to print
//! every series; pass `--scale 0.1` to shrink the workload for quick runs.

pub mod alg1_blob;
pub mod alg3_queue;
pub mod alg4_queue;
pub mod alg5_table;
pub mod benchhist;
pub mod bottleneck;
pub mod chaos;
pub mod config;
pub mod conformance;
pub mod exec;
pub mod fig9;
pub mod fleet;
pub mod latency;
pub mod payload;
pub mod profile;
pub mod report;
pub mod schema;
pub mod sweep;
pub mod timeline;
pub mod verify;
pub mod ycsb;

pub use config::BenchConfig;
pub use report::{Figure, Series};
