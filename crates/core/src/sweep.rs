//! Parallel sweep engine for the figure harness.
//!
//! Every figure in the suite is a sweep over independent points — usually
//! worker counts, for chaos a fault intensity — and each point runs its own
//! [`Simulation`](azsim_core::Simulation) from its own seed. Points share
//! no state, so they can run on OS threads concurrently without touching
//! the determinism story: the per-point results are bit-identical to a
//! serial sweep, and [`sweep_points`] writes each result into its input's
//! slot, so the collected order is the input order regardless of which
//! point finishes first. `figures --threads 1` forces the serial schedule;
//! a byte-equal CSV from both schedules is asserted in this module's tests
//! and in `tests/determinism.rs`.
//!
//! Scheduling is dynamic (an atomic cursor over the point list), not
//! chunked: ladder points are wildly uneven (96 workers simulate far more
//! events than 1), so static chunking would leave threads idle behind the
//! big points.

use crate::config::BenchConfig;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve a thread-count setting: `0` means one thread per available core.
pub fn resolve_threads(setting: usize, points: usize) -> usize {
    let t = if setting == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        setting
    };
    t.min(points.max(1))
}

/// Run `run` over every point, on up to `threads` OS threads (0 = auto),
/// returning results in input order.
///
/// Points are claimed dynamically, one at a time, so uneven point costs
/// still balance. A panic in any point propagates to the caller once the
/// scope joins.
pub fn sweep_points<P, T, F>(points: &[P], threads: usize, run: F) -> Vec<T>
where
    P: Sync,
    T: Send,
    F: Fn(&P) -> T + Sync,
{
    let n = points.len();
    let threads = resolve_threads(threads, n);
    if threads <= 1 || n <= 1 {
        return points.iter().map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let run = &run;
    let next = &next;
    let slots = &slots;
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = run(&points[i]);
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .iter()
        .map(|m| {
            m.lock()
                .unwrap()
                .take()
                .expect("sweep point produced no result")
        })
        .collect()
}

/// Sweep `cfg.workers`, running `run(cfg, w)` per ladder point on up to
/// `cfg.sweep_threads` threads; results come back in ladder order.
pub fn sweep<T, F>(cfg: &BenchConfig, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(&BenchConfig, usize) -> T + Sync,
{
    sweep_points(&cfg.workers, cfg.sweep_threads, |&w| run(cfg, w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        // Make early points slow so completion order inverts input order.
        let points: Vec<u64> = (0..16).collect();
        let out = sweep_points(&points, 4, |&p| {
            std::thread::sleep(std::time::Duration::from_millis(15 - p.min(15)));
            p * 10
        });
        assert_eq!(out, (0..16).map(|p| p * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_schedules_agree() {
        let points: Vec<usize> = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let serial = sweep_points(&points, 1, |&p| p * p);
        let parallel = sweep_points(&points, 8, |&p| p * p);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sweep_follows_the_worker_ladder() {
        let cfg = BenchConfig::paper().with_workers(vec![1, 2, 4]);
        let out = sweep(&cfg, |_, w| w * 100);
        assert_eq!(out, vec![100, 200, 400]);
    }

    #[test]
    fn empty_point_list_is_fine() {
        let points: Vec<usize> = Vec::new();
        assert!(sweep_points(&points, 0, |&p| p).is_empty());
    }

    #[test]
    fn resolve_threads_clamps_to_points() {
        assert_eq!(resolve_threads(8, 3), 3);
        assert_eq!(resolve_threads(2, 10), 2);
        assert!(resolve_threads(0, 100) >= 1);
        assert_eq!(resolve_threads(4, 0), 1);
    }
}
