//! Resilience verification: invariant-checking chaos search with shrinking.
//!
//! The chaos scenario ([`crate::chaos`]) shows the system *degrades
//! gracefully*; this module proves it stays *correct*. A verification run
//! drives a mixed queue + table workload against a [`Cluster`] with
//! ground-truth history recording enabled
//! ([`Cluster::enable_history`]), injects a [`FaultPlan`] that includes
//! **ambiguous outcomes** (`ack_loss_prob`, mid-window crash cuts), and
//! checks invariants against the post-run server state:
//!
//! * **I1 — no acked write lost**: every queue put the producer saw
//!   acknowledged is consumed, still queued, or dead-lettered at the end.
//! * **I2 — at-least-once, duplicates only under ambiguity**: the same
//!   payload arriving in two *distinct* messages is legal only when the
//!   history records a queue put that executed but timed out (the classic
//!   duplicate-on-retry); redeliveries of one message (attempt > 1) are
//!   ordinary at-least-once behaviour.
//! * **I3 — idempotent table read-modify-writes**: each worker applies a
//!   known number of logical increments to its own counter row; the final
//!   value must equal that number exactly. The hardened client uses
//!   [`update_idempotent`] (If-Match + op marker); a naive client that
//!   re-reads and re-applies after an ambiguous `update_if` double-applies
//!   and is caught here.
//! * **I4 — poison accounting**: dead-lettered poison messages are
//!   neither lost nor parked twice without an ambiguous op to blame.
//! * **I5 — read-your-writes**: a worker's read of its own row never
//!   shows fewer increments than it has definitely applied.
//!
//! [`chaos_search`] sweeps randomized fault plans (plus hand-built
//! boundary schedules at window edges) across seeds; on a violation it
//! greedily **shrinks** the failing plan — dropping scheduled events and
//! zeroing probabilities while the violation persists — and the result is
//! serialized as a [`ReproDoc`] (`schemas/repro.schema.json`) that
//! replays the violation deterministically.
//!
//! Everything here is seeded and schedule-independent: the same
//! (config, plan) pair reproduces the same violations bit-for-bit, which
//! is what makes shrinking and committed reproducers possible.

use crate::sweep::sweep_points;
use azsim_client::{
    insert_idempotent, update_idempotent, Environment, QueueClient, ResilientPolicy,
    RetryBudgetConfig, TableClient, VirtualEnv,
};
use azsim_core::rng::stream_rng;
use azsim_core::{SimTime, Simulation};
use azsim_fabric::{
    BackendKind, BusyStorm, Cluster, ClusterParams, FaultPlan, OpOutcome, PartitionBlackout,
    ServerCrash,
};
use azsim_framework::TaskQueue;
use azsim_storage::{Entity, EtagCondition, OpClass, PartitionKey, PropValue, StorageError};
use bytes::Bytes;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

/// Shared work queue (its partition server is a preferred crash target).
pub const VERIFY_QUEUE: &str = "verify-tasks";
/// Table holding the per-worker counter rows and the schema version row.
pub const VERIFY_TABLE: &str = "verify";
/// Partition of the counter rows.
const COUNTER_PARTITION: &str = "counters";
/// Property holding the counter value.
const COUNTER_PROP: &str = "v";
/// Simulated per-task processing time.
const TASK_WORK: Duration = Duration::from_millis(10);
/// Pause before re-trying a logical step that exhausted its policy.
const RETRY_PAUSE: Duration = Duration::from_secs(1);

/// One work item on the shared queue.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VerifyTask {
    /// Payload id, unique within a run.
    pub id: u32,
}

/// Workload shape of one verification run. `Copy` and serializable so a
/// reproducer can carry it verbatim.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct VerifyConfig {
    /// Workload seed (worker jitter streams; independent of the plan's
    /// fault-draw seed).
    pub seed: u64,
    /// Concurrent workers (worker 0 is also the producer).
    pub workers: usize,
    /// Well-formed queue payloads submitted.
    pub items: u32,
    /// Logical counter increments per worker.
    pub increments: u32,
    /// Undecodable poison messages submitted.
    pub poison: u32,
    /// `true` = idempotent client (If-Match + op marker, read-back insert
    /// resolution, pop-receipt revalidation, retry budget); `false` =
    /// naive blind retry, the policy the harness must catch.
    pub hardened: bool,
    /// Storage backend the run simulates. Invariant I5 (read-your-writes)
    /// is checked against this backend's *declared* consistency: a backend
    /// with a non-zero `read_staleness` window is allowed to serve a stale
    /// read within that window, so the probe waits the window out and
    /// re-reads before flagging — relaxed, never skipped.
    pub backend: BackendKind,
}

impl VerifyConfig {
    /// A small, fast configuration for sweeps and CI.
    pub fn quick(hardened: bool) -> Self {
        VerifyConfig {
            seed: 2012,
            workers: 3,
            items: 30,
            increments: 8,
            poison: 2,
            hardened,
            backend: BackendKind::Was,
        }
    }
}

/// One invariant violation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Invariant label (`acked-write-lost`, `dup-without-ambiguity`,
    /// `counter-double-apply`, `counter-lost-update`, `counter-row-lost`,
    /// `poison-lost`, `poison-double-parked`, `read-your-writes`).
    pub invariant: String,
    /// Human-readable evidence.
    pub detail: String,
}

impl Violation {
    fn new(invariant: &str, detail: String) -> Self {
        Violation {
            invariant: invariant.to_owned(),
            detail,
        }
    }
}

/// Result of one verification run.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyOutcome {
    /// All invariant violations found (empty = the run is correct).
    pub violations: Vec<Violation>,
    /// Operations recorded in the ground-truth history.
    pub ops: usize,
    /// Timeouts that secretly executed (each a potential duplicate).
    pub ambiguous_executed: usize,
    /// Timeouts that never executed.
    pub ambiguous_lost: usize,
    /// Distinct payload ids processed at least once.
    pub consumed_distinct: usize,
    /// Total processings (duplicates included).
    pub consumed_total: usize,
    /// Poison copies parked on the dead-letter queue at the end.
    pub poison_parked: usize,
    /// Well-formed payloads still sitting in the main queue at the end.
    pub remaining_in_queue: usize,
    /// Virtual end time of the run, in seconds.
    pub end_s: f64,
}

fn counter_value(e: &Entity) -> i64 {
    match e.properties.get(COUNTER_PROP) {
        Some(PropValue::I64(v)) => *v,
        _ => 0,
    }
}

fn bump(e: &mut Entity) {
    let v = counter_value(e);
    e.properties
        .insert(COUNTER_PROP.to_owned(), PropValue::I64(v + 1));
}

fn poison_payload(k: u32) -> String {
    // Leading '!' guarantees the JSON decode fails → dead-letter path.
    format!("!poison-{k}")
}

/// Run the verification workload once under `plan` and check every
/// invariant against the recorded history and the final server state.
pub fn run_verify(cfg: &VerifyConfig, plan: &FaultPlan) -> VerifyOutcome {
    let cfg = *cfg;
    let mut cluster = Cluster::new(ClusterParams::for_backend(cfg.backend.profile()));
    cluster.enable_history();
    if !plan.is_inert() {
        cluster.set_fault_plan(plan.clone());
    }

    let sim = Simulation::new(cluster, cfg.seed);
    let report = sim.run_workers(cfg.workers, move |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        let me = env.instance();
        let mut policy = ResilientPolicy::new(cfg.seed ^ me as u64)
            .with_max_attempts(8)
            .with_deadline(Duration::from_secs(120));
        if cfg.hardened {
            // Budgeted retries: ack-loss storms cannot amplify into retry
            // storms; exhaustion surfaces the op's own error and the
            // logical-step loops below re-issue after a pause.
            policy = policy.with_retry_budget(RetryBudgetConfig {
                capacity: 32,
                refill_per_success: 1.0,
            });
        }
        let policy = Rc::new(policy);

        let tq: TaskQueue<'_, _, VerifyTask> = TaskQueue::new(&env, VERIFY_QUEUE)
            .with_visibility(Duration::from_secs(90))
            .with_max_attempts(5)
            .with_policy(policy.clone());
        while tq.init().await.is_err() {
            env.sleep(RETRY_PAUSE).await;
        }

        let mut acked: Vec<u32> = Vec::new();
        let mut acked_poison: Vec<u32> = Vec::new();
        if me == 0 {
            for id in 0..cfg.items {
                // Re-submitting after an ambiguous error may duplicate the
                // payload; that's exactly what I2 accounts for.
                while tq.submit(&VerifyTask { id }).await.is_err() {
                    env.sleep(RETRY_PAUSE).await;
                }
                acked.push(id);
            }
            let raw = QueueClient::new(&env, VERIFY_QUEUE).with_policy(policy.clone());
            for k in 0..cfg.poison {
                while raw
                    .put_message(Bytes::from(poison_payload(k)))
                    .await
                    .is_err()
                {
                    env.sleep(RETRY_PAUSE).await;
                }
                acked_poison.push(k);
            }
        }

        // --- Table side: per-worker counter row, `increments` logical
        // read-modify-writes, hardened or naive. ---
        let table = TableClient::new(&env, VERIFY_TABLE).with_policy(policy.clone());
        while table.create_table().await.is_err() {
            env.sleep(RETRY_PAUSE).await;
        }
        let row = format!("w{me}");
        let init = Entity::new(COUNTER_PARTITION, &row).with(COUNTER_PROP, PropValue::I64(0));
        loop {
            let done = if cfg.hardened {
                insert_idempotent(&table, &init).await.is_ok()
            } else {
                matches!(
                    table.insert(init.clone()).await,
                    Ok(_) | Err(StorageError::AlreadyExists)
                )
            };
            if done {
                break;
            }
            env.sleep(RETRY_PAUSE).await;
        }

        let mut ryw: Vec<String> = Vec::new();
        let mut applied: i64 = 0;
        for k in 0..cfg.increments {
            if cfg.hardened {
                let op_id = format!("w{me}-i{k}");
                while update_idempotent(&table, COUNTER_PARTITION, &row, &op_id, bump)
                    .await
                    .is_err()
                {
                    env.sleep(RETRY_PAUSE).await;
                }
            } else {
                // Naive read-modify-write: on *any* failed conditional
                // update — including a `PreconditionFailed` produced by a
                // blind retry of an update that secretly executed — re-read
                // and re-apply the increment. This is the duplicate-on-
                // retry bug the harness must catch.
                loop {
                    let Ok(Some((mut e, tag))) = table.query(COUNTER_PARTITION, &row).await else {
                        env.sleep(RETRY_PAUSE).await;
                        continue;
                    };
                    bump(&mut e);
                    match table.update_if(e, EtagCondition::Match(tag)).await {
                        Ok(_) => break,
                        Err(StorageError::PreconditionFailed) => continue,
                        Err(_) => env.sleep(RETRY_PAUSE).await,
                    }
                }
            }
            applied += 1;
            // I5 probe: our own definitely-applied increments must be
            // visible to our next read. Transient read failures make no
            // visibility claim and are skipped. A backend declaring a
            // bounded `read_staleness` window may legally serve a stale
            // value inside that window — so the probe waits the declared
            // window out and re-reads before calling it a violation
            // (relaxed to the declared consistency level, never skipped).
            let staleness = cfg.backend.profile().read_staleness;
            if let Ok(Some((e, _))) = table.query(COUNTER_PARTITION, &row).await {
                let mut seen = counter_value(&e);
                if seen < applied && staleness > Duration::ZERO {
                    env.sleep(staleness).await;
                    if let Ok(Some((e2, _))) = table.query(COUNTER_PARTITION, &row).await {
                        seen = counter_value(&e2);
                    }
                }
                if seen < applied {
                    let note = if staleness > Duration::ZERO {
                        format!(" (declared staleness {staleness:?} already waited out)")
                    } else {
                        String::new()
                    };
                    ryw.push(format!(
                        "worker {me} read {seen} after applying {applied} increments{note}"
                    ));
                }
            }
        }

        // --- Drain the shared queue (all workers, producer included). ---
        let mut consumed: Vec<(u32, u32)> = Vec::new();
        let mut idle = 0;
        while idle < 8 {
            match tq.claim().await {
                Ok(Some(claimed)) => {
                    idle = 0;
                    env.sleep(TASK_WORK).await;
                    // Processing happened regardless of how the delete
                    // goes; record it first, then clean up.
                    consumed.push((claimed.task.id, claimed.attempt));
                    if cfg.hardened {
                        // Pop-receipt revalidation: a stale receipt means
                        // the task is someone else's now — not an error.
                        if tq.complete_checked(&claimed).await.is_err() {
                            env.sleep(RETRY_PAUSE).await;
                        }
                    } else if tq.complete(&claimed).await.is_err() {
                        env.sleep(RETRY_PAUSE).await;
                    }
                }
                Ok(None) => {
                    idle += 1;
                    env.sleep(Duration::from_secs(2)).await;
                }
                Err(_) => env.sleep(RETRY_PAUSE).await,
            }
        }
        (consumed, acked, acked_poison, ryw)
    });

    // --- Gather evidence: history, final queue audits, final table rows. ---
    let end = report.end_time;
    let history = report
        .model
        .history()
        .expect("history recording was enabled");
    let main_audit = report
        .model
        .queue_audit(end, VERIFY_QUEUE)
        .unwrap_or_default();
    let poison_audit = report
        .model
        .queue_audit(end, &format!("{VERIFY_QUEUE}-poison"))
        .unwrap_or_default();

    let mut remaining_items: Vec<u32> = Vec::new();
    let mut remaining_poison: Vec<String> = Vec::new();
    for m in &main_audit {
        if let Ok(t) = serde_json::from_slice::<VerifyTask>(&m.data) {
            remaining_items.push(t.id);
        } else if let Ok(s) = std::str::from_utf8(&m.data) {
            remaining_poison.push(s.to_owned());
        }
    }
    let mut parked: HashMap<String, usize> = HashMap::new();
    for m in &poison_audit {
        if let Ok(s) = std::str::from_utf8(&m.data) {
            *parked.entry(s.to_owned()).or_insert(0) += 1;
        }
    }

    let mut consumed_first: HashMap<u32, usize> = HashMap::new(); // id → #(attempt == 1)
    let mut consumed_any: HashMap<u32, usize> = HashMap::new();
    let mut acked_items: Vec<u32> = Vec::new();
    let mut acked_poison: Vec<u32> = Vec::new();
    let mut violations: Vec<Violation> = Vec::new();
    for (consumed, acked, poison, ryw) in report.results {
        for (id, attempt) in consumed {
            *consumed_any.entry(id).or_insert(0) += 1;
            if attempt == 1 {
                *consumed_first.entry(id).or_insert(0) += 1;
            }
        }
        acked_items.extend(acked);
        acked_poison.extend(poison);
        violations.extend(
            ryw.into_iter()
                .map(|d| Violation::new("read-your-writes", d)),
        );
    }

    let ambiguous_put = history
        .records()
        .iter()
        .any(|r| matches!(r.class, OpClass::QueuePut) && r.outcome == OpOutcome::TimedOutExecuted);
    let any_ambiguous = history.ambiguous_executed() > 0;

    // I1: no acked queue write lost.
    for &id in &acked_items {
        let seen = consumed_any.contains_key(&id)
            || remaining_items.contains(&id)
            || poison_audit
                .iter()
                .any(|m| serde_json::from_slice::<VerifyTask>(&m.data).is_ok_and(|t| t.id == id));
        if !seen {
            violations.push(Violation::new(
                "acked-write-lost",
                format!("payload {id} was acked but is neither consumed, queued, nor parked"),
            ));
        }
    }

    // I2: distinct-message duplicates only under an ambiguous put.
    for (&id, &firsts) in &consumed_first {
        if firsts > 1 && !ambiguous_put {
            violations.push(Violation::new(
                "dup-without-ambiguity",
                format!(
                    "payload {id} arrived in {firsts} distinct messages with no ambiguous put in the history"
                ),
            ));
        }
    }

    // I3: every counter row holds exactly its worker's increment count.
    for w in 0..cfg.workers {
        let row = format!("w{w}");
        match report
            .model
            .table_entity(VERIFY_TABLE, COUNTER_PARTITION, &row)
        {
            None => violations.push(Violation::new(
                "counter-row-lost",
                format!("counter row {row} vanished after an acked insert"),
            )),
            Some(e) => {
                let v = counter_value(&e);
                let want = cfg.increments as i64;
                if v > want {
                    violations.push(Violation::new(
                        "counter-double-apply",
                        format!("row {row} holds {v} after {want} logical increments"),
                    ));
                } else if v < want {
                    violations.push(Violation::new(
                        "counter-lost-update",
                        format!("row {row} holds {v} after {want} logical increments"),
                    ));
                }
            }
        }
    }

    // I4: poison messages are parked (or still queued), never more than
    // once without ambiguity, and never handed to workers as tasks.
    for &k in &acked_poison {
        let payload = poison_payload(k);
        let parked_n = parked.get(&payload).copied().unwrap_or(0);
        let still_queued = remaining_poison.contains(&payload);
        if parked_n == 0 && !still_queued {
            violations.push(Violation::new(
                "poison-lost",
                format!("poison message {payload:?} is neither parked nor queued"),
            ));
        }
        if parked_n > 1 && !any_ambiguous {
            violations.push(Violation::new(
                "poison-double-parked",
                format!("poison message {payload:?} parked {parked_n} times with no ambiguity"),
            ));
        }
    }

    VerifyOutcome {
        violations,
        ops: history.records().len(),
        ambiguous_executed: history.ambiguous_executed(),
        ambiguous_lost: history.ambiguous_lost(),
        consumed_distinct: consumed_any.len(),
        consumed_total: consumed_any.values().sum(),
        poison_parked: poison_audit.len(),
        remaining_in_queue: remaining_items.len(),
        end_s: end.as_secs_f64(),
    }
}

// ---------------------------------------------------------------------------
// Plan generation: randomized schedules + hand-built boundary schedules.
// ---------------------------------------------------------------------------

/// Derive a randomized fault plan from `seed`. Every plan carries some
/// ack-loss probability — ambiguity is the point of the search — plus a
/// random mix of crashes, storms and drop/stall probabilities, all within
/// bounds that keep runs terminating briskly.
pub fn random_plan(seed: u64, servers: usize) -> FaultPlan {
    let mut rng = stream_rng(seed, 0xC4A05);
    let mut plan = FaultPlan {
        seed,
        timeout: Duration::from_secs(5),
        // Crashes drawn below ambiguously cut in-flight replicated acks.
        crash_cuts_acks: true,
        ..FaultPlan::default()
    };
    let queue_server = PartitionKey::Queue {
        queue: VERIFY_QUEUE.into(),
    }
    .server_index(servers);
    for _ in 0..rng.random_range(0..=1u32) {
        // Half the crashes hit the server everyone depends on.
        let server = if rng.random_range(0..2u32) == 0 {
            queue_server
        } else {
            rng.random_range(0..servers)
        };
        plan.crashes.push(ServerCrash {
            server,
            at: SimTime::from_millis(rng.random_range(500..20_000u64)),
            failover: Duration::from_millis(rng.random_range(1_000..6_000u64)),
        });
    }
    for _ in 0..rng.random_range(0..=2u32) {
        plan.busy_storms.push(BusyStorm {
            at: SimTime::from_millis(rng.random_range(1_000..40_000u64)),
            duration: Duration::from_millis(rng.random_range(500..3_000u64)),
            retry_after: Duration::from_millis(200),
        });
    }
    plan.timeout_prob = rng.random_range(0.0..0.01);
    plan.ack_loss_prob = rng.random_range(0.01..0.08);
    plan.replica_stall_prob = rng.random_range(0.0..0.05);
    plan
}

/// Hand-built schedules that poke at window edges: a crash landing on the
/// exact end instant of a storm, a blackout of the shared queue's
/// partition, and a pure ambiguity storm with no scheduled windows.
pub fn boundary_plans(servers: usize) -> Vec<FaultPlan> {
    let queue_server = PartitionKey::Queue {
        queue: VERIFY_QUEUE.into(),
    }
    .server_index(servers);
    let storm = BusyStorm {
        at: SimTime::from_secs(4),
        duration: Duration::from_secs(2),
        retry_after: Duration::from_millis(250),
    };
    // Crash opens on the half-open boundary instant where the storm ends:
    // a request admitted at exactly t=6s leaves the storm and enters the
    // crash window in the same tick.
    let edge_crash = ServerCrash {
        server: queue_server,
        at: SimTime::from_secs(6),
        failover: Duration::from_secs(3),
    };
    vec![
        FaultPlan {
            seed: 0xB0 | 1,
            busy_storms: vec![storm.clone()],
            crashes: vec![edge_crash],
            crash_cuts_acks: true,
            ack_loss_prob: 0.1,
            timeout: Duration::from_secs(5),
            ..FaultPlan::default()
        },
        FaultPlan {
            seed: 0xB0 | 2,
            blackouts: vec![PartitionBlackout {
                partition: PartitionKey::Queue {
                    queue: VERIFY_QUEUE.into(),
                },
                at: storm.at,
                duration: Duration::from_secs(4),
            }],
            busy_storms: vec![storm],
            ack_loss_prob: 0.05,
            timeout: Duration::from_secs(5),
            ..FaultPlan::default()
        },
        FaultPlan {
            seed: 0xB0 | 3,
            ack_loss_prob: 0.15,
            timeout_prob: 0.02,
            timeout: Duration::from_secs(5),
            ..FaultPlan::default()
        },
    ]
}

// ---------------------------------------------------------------------------
// Search and shrinking.
// ---------------------------------------------------------------------------

/// A violation found by [`chaos_search`], with its minimized plan.
#[derive(Clone, Debug)]
pub struct FailureCase {
    /// The plan that first exposed the violation.
    pub plan: FaultPlan,
    /// The greedily shrunk plan (still failing).
    pub shrunk: FaultPlan,
    /// Violations the shrunk plan reproduces.
    pub violations: Vec<Violation>,
}

/// Result of a chaos search.
#[derive(Clone, Debug)]
pub struct SearchReport {
    /// Verification runs executed (boundary plans + one per seed).
    pub runs: usize,
    /// How many of those were hand-built boundary schedules.
    pub boundary_runs: usize,
    /// First failure found, if any, already shrunk.
    pub failure: Option<FailureCase>,
}

/// Sweep boundary schedules plus one randomized plan per seed, checking
/// invariants for each; on the first violation, shrink the plan and
/// return the minimized reproducer.
pub fn chaos_search(cfg: &VerifyConfig, seeds: &[u64], threads: usize) -> SearchReport {
    let servers = ClusterParams::default().servers;
    let mut plans = boundary_plans(servers);
    let boundary_runs = plans.len();
    plans.extend(seeds.iter().map(|&s| random_plan(s, servers)));
    let runs = plans.len();
    let results = sweep_points(&plans, threads, |plan| run_verify(cfg, plan).violations);
    let failure = plans
        .iter()
        .zip(&results)
        .find(|(_, v)| !v.is_empty())
        .map(|(plan, _)| {
            let shrunk = shrink_plan(cfg, plan);
            let violations = run_verify(cfg, &shrunk).violations;
            FailureCase {
                plan: plan.clone(),
                shrunk,
                violations,
            }
        });
    SearchReport {
        runs,
        boundary_runs,
        failure,
    }
}

/// Number of active ingredients in a plan (shrinking's progress measure).
pub fn plan_events(p: &FaultPlan) -> usize {
    p.crashes.len()
        + p.blackouts.len()
        + p.busy_storms.len()
        + usize::from(p.timeout_prob > 0.0)
        + usize::from(p.ack_loss_prob > 0.0)
        + usize::from(p.replica_stall_prob > 0.0)
        + usize::from(p.crash_cuts_acks && !p.crashes.is_empty())
}

/// One-step simplifications of `p`: drop each scheduled event, zero each
/// probability. Every candidate is strictly smaller by [`plan_events`],
/// so greedy shrinking terminates.
fn shrink_candidates(p: &FaultPlan) -> Vec<FaultPlan> {
    let mut out = Vec::new();
    for i in 0..p.crashes.len() {
        let mut c = p.clone();
        c.crashes.remove(i);
        out.push(c);
    }
    for i in 0..p.blackouts.len() {
        let mut c = p.clone();
        c.blackouts.remove(i);
        out.push(c);
    }
    for i in 0..p.busy_storms.len() {
        let mut c = p.clone();
        c.busy_storms.remove(i);
        out.push(c);
    }
    if p.timeout_prob > 0.0 {
        let mut c = p.clone();
        c.timeout_prob = 0.0;
        out.push(c);
    }
    if p.replica_stall_prob > 0.0 {
        let mut c = p.clone();
        c.replica_stall_prob = 0.0;
        out.push(c);
    }
    if p.ack_loss_prob > 0.0 {
        let mut c = p.clone();
        c.ack_loss_prob = 0.0;
        out.push(c);
    }
    if p.crash_cuts_acks && !p.crashes.is_empty() {
        let mut c = p.clone();
        c.crash_cuts_acks = false;
        out.push(c);
    }
    out
}

/// Greedy delta-debugging over the plan's ingredients: repeatedly take
/// the first one-step simplification that still violates an invariant,
/// until none does. Deterministic — same failing plan, same minimum.
pub fn shrink_plan(cfg: &VerifyConfig, plan: &FaultPlan) -> FaultPlan {
    let mut best = plan.clone();
    'outer: loop {
        for candidate in shrink_candidates(&best) {
            if !run_verify(cfg, &candidate).violations.is_empty() {
                best = candidate;
                continue 'outer;
            }
        }
        return best;
    }
}

// ---------------------------------------------------------------------------
// Reproducer documents (schemas/repro.schema.json).
// ---------------------------------------------------------------------------

/// Version tag of the reproducer JSON layout.
pub const REPRO_VERSION: &str = "azurebench-repro/v1";

/// Serializable [`ServerCrash`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CrashSpec {
    /// Crashed server index.
    pub server: usize,
    /// Crash instant, ns of virtual time.
    pub at_ns: u64,
    /// Failover window length, ns.
    pub failover_ns: u64,
}

/// Serializable [`BusyStorm`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StormSpec {
    /// Window start, ns of virtual time.
    pub at_ns: u64,
    /// Window length, ns.
    pub duration_ns: u64,
    /// Retry hint attached to injected rejections, ns.
    pub retry_after_ns: u64,
}

/// Serializable queue-partition [`PartitionBlackout`] (the only blackout
/// shape the plan generators emit).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueueBlackoutSpec {
    /// Name of the blacked-out queue.
    pub queue: String,
    /// Window start, ns of virtual time.
    pub at_ns: u64,
    /// Window length, ns.
    pub duration_ns: u64,
}

/// Serializable mirror of [`FaultPlan`], with durations in integral ns so
/// round-trips are exact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanSpec {
    /// Fault-draw seed.
    pub seed: u64,
    /// Scheduled crashes.
    pub crashes: Vec<CrashSpec>,
    /// Whether crashes ambiguously cut in-flight replicated acks.
    pub crash_cuts_acks: bool,
    /// Scheduled queue-partition blackouts.
    pub queue_blackouts: Vec<QueueBlackoutSpec>,
    /// Scheduled throttle storms.
    pub busy_storms: Vec<StormSpec>,
    /// Request-drop probability.
    pub timeout_prob: f64,
    /// Client-observed wait for dropped requests / lost acks, ns.
    pub timeout_ns: u64,
    /// Lost-ack probability.
    pub ack_loss_prob: f64,
    /// Replica-stall probability.
    pub replica_stall_prob: f64,
    /// Stall extra latency, ns.
    pub replica_stall_ns: u64,
}

impl PlanSpec {
    /// Capture a plan. Non-queue blackouts (which no generator in this
    /// module produces) are not representable and are rejected loudly
    /// rather than silently dropped.
    pub fn from_plan(p: &FaultPlan) -> PlanSpec {
        PlanSpec {
            seed: p.seed,
            crash_cuts_acks: p.crash_cuts_acks,
            crashes: p
                .crashes
                .iter()
                .map(|c| CrashSpec {
                    server: c.server,
                    at_ns: c.at.as_nanos(),
                    failover_ns: c.failover.as_nanos() as u64,
                })
                .collect(),
            queue_blackouts: p
                .blackouts
                .iter()
                .map(|b| match &b.partition {
                    PartitionKey::Queue { queue } => QueueBlackoutSpec {
                        queue: queue.clone(),
                        at_ns: b.at.as_nanos(),
                        duration_ns: b.duration.as_nanos() as u64,
                    },
                    other => panic!("unrepresentable blackout partition {other:?}"),
                })
                .collect(),
            busy_storms: p
                .busy_storms
                .iter()
                .map(|s| StormSpec {
                    at_ns: s.at.as_nanos(),
                    duration_ns: s.duration.as_nanos() as u64,
                    retry_after_ns: s.retry_after.as_nanos() as u64,
                })
                .collect(),
            timeout_prob: p.timeout_prob,
            timeout_ns: p.timeout.as_nanos() as u64,
            ack_loss_prob: p.ack_loss_prob,
            replica_stall_prob: p.replica_stall_prob,
            replica_stall_ns: p.replica_stall.as_nanos() as u64,
        }
    }

    /// Rebuild the executable plan.
    pub fn to_plan(&self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            crash_cuts_acks: self.crash_cuts_acks,
            crashes: self
                .crashes
                .iter()
                .map(|c| ServerCrash {
                    server: c.server,
                    at: SimTime(c.at_ns),
                    failover: Duration::from_nanos(c.failover_ns),
                })
                .collect(),
            blackouts: self
                .queue_blackouts
                .iter()
                .map(|b| PartitionBlackout {
                    partition: PartitionKey::Queue {
                        queue: b.queue.clone(),
                    },
                    at: SimTime(b.at_ns),
                    duration: Duration::from_nanos(b.duration_ns),
                })
                .collect(),
            busy_storms: self
                .busy_storms
                .iter()
                .map(|s| BusyStorm {
                    at: SimTime(s.at_ns),
                    duration: Duration::from_nanos(s.duration_ns),
                    retry_after: Duration::from_nanos(s.retry_after_ns),
                })
                .collect(),
            timeout_prob: self.timeout_prob,
            timeout: Duration::from_nanos(self.timeout_ns),
            ack_loss_prob: self.ack_loss_prob,
            replica_stall_prob: self.replica_stall_prob,
            replica_stall: Duration::from_nanos(self.replica_stall_ns),
        }
    }
}

/// A committed reproducer: enough to replay one invariant violation
/// deterministically (`results/repro-*.json`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReproDoc {
    /// Layout version ([`REPRO_VERSION`]).
    pub version: String,
    /// Workload shape of the failing run.
    pub config: VerifyConfig,
    /// The (shrunk) fault plan.
    pub plan: PlanSpec,
    /// Violations this document reproduces.
    pub violations: Vec<Violation>,
}

impl ReproDoc {
    /// Package a failure case.
    pub fn new(cfg: &VerifyConfig, case: &FailureCase) -> ReproDoc {
        ReproDoc {
            version: REPRO_VERSION.to_owned(),
            config: *cfg,
            plan: PlanSpec::from_plan(&case.shrunk),
            violations: case.violations.clone(),
        }
    }

    /// Re-run the recorded configuration and plan.
    pub fn replay(&self) -> VerifyOutcome {
        run_verify(&self.config, &self.plan.to_plan())
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("repro docs always serialize")
    }

    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<ReproDoc, String> {
        serde_json::from_str(json).map_err(|e| format!("bad repro doc: {e:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(hardened: bool) -> VerifyConfig {
        VerifyConfig {
            seed: 2012,
            workers: 2,
            items: 10,
            increments: 4,
            poison: 1,
            hardened,
            backend: BackendKind::Was,
        }
    }

    #[test]
    fn inert_plan_run_is_clean_and_unambiguous() {
        let out = run_verify(&tiny(true), &FaultPlan::default());
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.ambiguous_executed, 0);
        assert_eq!(out.ambiguous_lost, 0);
        assert_eq!(out.consumed_distinct, 10);
        assert!(out.ops > 0, "history must record operations");
    }

    #[test]
    fn verify_runs_replay_identically() {
        let cfg = tiny(true);
        let plan = random_plan(7, ClusterParams::default().servers);
        let a = run_verify(&cfg, &plan);
        let b = run_verify(&cfg, &plan);
        assert_eq!(a, b, "same config + plan must replay bit-identically");
    }

    #[test]
    fn random_plans_always_carry_ambiguity() {
        for seed in 0..20 {
            let p = random_plan(seed, 64);
            assert!(p.ack_loss_prob > 0.0, "seed {seed}");
            assert!(!p.is_inert());
        }
    }

    #[test]
    fn plan_spec_roundtrips_exactly() {
        let servers = ClusterParams::default().servers;
        for plan in boundary_plans(servers)
            .into_iter()
            .chain((0..5).map(|s| random_plan(s, servers)))
        {
            let spec = PlanSpec::from_plan(&plan);
            assert_eq!(spec.to_plan(), plan);
        }
    }

    #[test]
    fn repro_doc_roundtrips_through_json() {
        let cfg = tiny(false);
        let case = FailureCase {
            plan: random_plan(3, 64),
            shrunk: random_plan(3, 64),
            violations: vec![Violation::new(
                "counter-double-apply",
                "row w0 holds 5".into(),
            )],
        };
        let doc = ReproDoc::new(&cfg, &case);
        let back = ReproDoc::from_json(&doc.to_json()).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.version, REPRO_VERSION);
    }

    #[test]
    fn shrink_candidates_strictly_reduce() {
        let plan = boundary_plans(64).remove(0);
        let n = plan_events(&plan);
        for c in shrink_candidates(&plan) {
            assert!(plan_events(&c) < n);
        }
    }
}
