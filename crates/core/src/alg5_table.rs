//! Algorithm 5: the Table storage benchmark (Figure 8).
//!
//! Each worker owns a separate partition (partition key = role id) of one
//! shared table and runs four phases over its 500 entities — insert (the
//! paper's `AddRow`), point query, wildcard-ETag update, delete — repeated
//! for entity sizes of 4, 8, 16, 32 and 64 KB.
//!
//! Expected shapes (paper §IV-C): times are almost flat up to ~4 workers
//! for all sizes; for 32 and 64 KB entities the times increase drastically
//! with more workers; update is the most expensive operation, query the
//! cheapest; and exceeding the per-partition 500 entities/s target yields
//! ServerBusy, absorbed by the retry-after-one-second policy.

use crate::config::BenchConfig;
use crate::payload::PayloadGen;
use crate::report::{Figure, Series};
use azsim_client::{Environment, TableClient, VirtualEnv};
use azsim_storage::{Entity, PropValue};
use std::collections::HashMap;

/// The four measured table operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TableOp {
    /// Insert (`AddRow`).
    Insert,
    /// Point query by key pair.
    Query,
    /// Wildcard-ETag update.
    Update,
    /// Delete.
    Delete,
}

impl TableOp {
    /// All ops in phase order.
    pub const ALL: [TableOp; 4] = [
        TableOp::Insert,
        TableOp::Query,
        TableOp::Update,
        TableOp::Delete,
    ];

    /// Label used in series names.
    pub fn label(self) -> &'static str {
        match self {
            TableOp::Insert => "insert",
            TableOp::Query => "query",
            TableOp::Update => "update",
            TableOp::Delete => "delete",
        }
    }
}

/// Result at one worker count: for each `(entity size, op)`, mean
/// per-worker phase seconds and mean per-op seconds.
pub type Alg5Result = HashMap<(usize, TableOp), (f64, f64)>;

fn entity(pk: &str, rk: usize, gen: &mut PayloadGen, size: usize) -> Entity {
    Entity::new(pk, rk.to_string()).with("data", PropValue::Binary(gen.bytes(size)))
}

/// Run Algorithm 5 at one worker count.
pub fn run_alg5(cfg: &BenchConfig, workers: usize) -> Alg5Result {
    let sizes = cfg.entity_sizes();
    let count = cfg.table_entities();
    let seed = cfg.seed;

    let report = crate::exec::run_cluster_workers(
        cfg,
        crate::exec::build_cluster(cfg),
        workers,
        move |ctx| {
            let sizes = sizes.clone();
            async move {
                let env = VirtualEnv::new(&ctx);
                let me = env.instance();
                let table = TableClient::new(&env, "AzureBenchTable");
                table.create_table().await.unwrap();
                let pk = format!("role-{me}");
                let mut gen = PayloadGen::new(seed, me as u64);
                let mut out: Vec<((usize, TableOp), f64)> = Vec::new();

                for &size in &sizes {
                    // ---- Insert ----
                    let t0 = env.now();
                    for rk in 0..count {
                        table.insert(entity(&pk, rk, &mut gen, size)).await.unwrap();
                    }
                    out.push((
                        (size, TableOp::Insert),
                        env.now().saturating_since(t0).as_secs_f64(),
                    ));

                    // ---- Query ----
                    let t0 = env.now();
                    for rk in 0..count {
                        let got = table.query(&pk, &rk.to_string()).await.unwrap();
                        assert!(got.is_some(), "query must hit");
                    }
                    out.push((
                        (size, TableOp::Query),
                        env.now().saturating_since(t0).as_secs_f64(),
                    ));

                    // ---- Update (wildcard ETag) ----
                    let t0 = env.now();
                    for rk in 0..count {
                        table.update(entity(&pk, rk, &mut gen, size)).await.unwrap();
                    }
                    out.push((
                        (size, TableOp::Update),
                        env.now().saturating_since(t0).as_secs_f64(),
                    ));

                    // ---- Delete ----
                    let t0 = env.now();
                    for rk in 0..count {
                        table.delete_entity(&pk, &rk.to_string()).await.unwrap();
                    }
                    out.push((
                        (size, TableOp::Delete),
                        env.now().saturating_since(t0).as_secs_f64(),
                    ));
                }
                out
            }
        },
    );

    let mut acc: HashMap<(usize, TableOp), Vec<f64>> = HashMap::new();
    for worker in report.results {
        for (key, secs) in worker {
            acc.entry(key).or_default().push(secs);
        }
    }
    acc.into_iter()
        .map(|(key, v)| {
            let mean_phase = v.iter().sum::<f64>() / v.len() as f64;
            (key, (mean_phase, mean_phase / count as f64))
        })
        .collect()
}

/// Sweep the worker ladder and produce Figure 8: one sub-figure per
/// operation, one series per entity size, y = mean per-worker phase time.
pub fn figure_8(cfg: &BenchConfig) -> Vec<Figure> {
    let sizes = cfg.entity_sizes();
    let mut figs: Vec<Figure> = TableOp::ALL
        .iter()
        .map(|op| {
            let mut f = Figure::new(
                format!("fig8-{}", op.label()),
                format!("Table storage: {}", op.label()),
                "workers",
                "seconds (mean per-worker phase time)",
            );
            for &s in &sizes {
                f.series.push(Series::new(format!("{}KB", s / 1024)));
            }
            f
        })
        .collect();

    let swept = crate::sweep::sweep(cfg, run_alg5);
    for (&w, result) in cfg.workers.iter().zip(swept) {
        for (oi, op) in TableOp::ALL.iter().enumerate() {
            for (si, &size) in sizes.iter().enumerate() {
                if let Some((phase, _)) = result.get(&(size, *op)) {
                    figs[oi].series[si].push(w as f64, *phase);
                }
            }
        }
    }
    figs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        // 10 entities per worker.
        BenchConfig::paper().with_scale(0.02).with_workers(vec![2])
    }

    #[test]
    fn alg5_measures_every_size_and_op() {
        let cfg = tiny();
        let r = run_alg5(&cfg, 2);
        assert_eq!(r.len(), cfg.entity_sizes().len() * 4);
        for ((size, op), (phase, per_op)) in &r {
            assert!(*phase > 0.0, "{size}/{op:?} zero phase");
            assert!(per_op <= phase);
        }
    }

    #[test]
    fn update_most_expensive_query_cheapest() {
        let cfg = tiny();
        let r = run_alg5(&cfg, 2);
        for &size in &cfg.entity_sizes() {
            let per_op = |op: TableOp| r[&(size, op)].1;
            assert!(
                per_op(TableOp::Query) < per_op(TableOp::Insert),
                "size {size}: query must be cheapest"
            );
            assert!(
                per_op(TableOp::Update) > per_op(TableOp::Insert),
                "size {size}: update must exceed insert"
            );
            assert!(
                per_op(TableOp::Update) > per_op(TableOp::Delete),
                "size {size}: update must be the most expensive"
            );
        }
    }

    #[test]
    fn big_entities_degrade_with_many_workers() {
        // 64 KB entities: per-worker phase time at 16 workers must be well
        // above the 1-worker time (shared table front-end saturates);
        // 4 KB entities stay comparatively flat.
        let cfg = BenchConfig::paper().with_scale(0.06);
        let r1 = run_alg5(&cfg, 1);
        let r16 = run_alg5(&cfg, 16);
        let big = 64 << 10;
        let small = 4 << 10;
        let degradation_big = r16[&(big, TableOp::Insert)].0 / r1[&(big, TableOp::Insert)].0;
        let degradation_small = r16[&(small, TableOp::Insert)].0 / r1[&(small, TableOp::Insert)].0;
        assert!(
            degradation_big > 2.0,
            "64KB at 16 workers must degrade: ratio {degradation_big}"
        );
        assert!(
            degradation_big > degradation_small * 1.5,
            "64KB (×{degradation_big:.2}) must degrade much more than 4KB (×{degradation_small:.2})"
        );
    }

    #[test]
    fn figure8_has_four_subfigures() {
        let cfg = BenchConfig::paper()
            .with_scale(0.01)
            .with_workers(vec![1, 2]);
        let figs = figure_8(&cfg);
        assert_eq!(figs.len(), 4);
        for f in &figs {
            assert_eq!(f.series.len(), cfg.entity_sizes().len());
            for s in &f.series {
                assert_eq!(s.points.len(), 2);
            }
        }
    }
}
