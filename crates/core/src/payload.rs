//! Deterministic random payload generation.
//!
//! The paper's workers call `randomdata(size)`; here each worker draws its
//! payloads from its own seeded stream so whole experiments are
//! reproducible. Data generation time is excluded from all measurements
//! (matching the paper, which ignores it).

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// A deterministic generator of random byte payloads.
pub struct PayloadGen {
    rng: SmallRng,
}

impl PayloadGen {
    /// A generator seeded from `(master, stream)`.
    pub fn new(master: u64, stream: u64) -> Self {
        PayloadGen {
            rng: SmallRng::seed_from_u64(azsim_core::rng::derive_seed(master, stream ^ 0xF00D)),
        }
    }

    /// Produce `size` random bytes.
    pub fn bytes(&mut self, size: usize) -> Bytes {
        let mut buf = vec![0u8; size];
        self.rng.fill_bytes(&mut buf);
        Bytes::from(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_stream() {
        let mut a = PayloadGen::new(1, 2);
        let mut b = PayloadGen::new(1, 2);
        let mut c = PayloadGen::new(1, 3);
        let xa = a.bytes(1024);
        let xb = b.bytes(1024);
        let xc = c.bytes(1024);
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn produces_requested_sizes() {
        let mut g = PayloadGen::new(7, 0);
        assert_eq!(g.bytes(0).len(), 0);
        assert_eq!(g.bytes(1).len(), 1);
        assert_eq!(g.bytes(1 << 20).len(), 1 << 20);
    }

    #[test]
    fn consecutive_payloads_differ() {
        let mut g = PayloadGen::new(7, 0);
        assert_ne!(g.bytes(256), g.bytes(256));
    }
}
