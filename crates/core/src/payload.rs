//! Deterministic random payload generation.
//!
//! The paper's workers call `randomdata(size)`; here each worker draws its
//! payloads from its own seeded stream so whole experiments are
//! reproducible. Data generation time is excluded from all measurements
//! (matching the paper, which ignores it).
//!
//! Payload *content* never influences the simulated timing model — only
//! sizes do — so the generator amortizes allocation: for each requested
//! size it materializes a small rotation of deterministic random blocks
//! once, then hands out cheap reference-counted [`Bytes`] clones of them
//! round-robin. Consecutive payloads of the same size still differ (the
//! rotation holds [`BLOCK_ROTATION`] distinct blocks), and two generators
//! with the same `(master, stream)` seed still produce byte-identical
//! sequences, but a million 32 KiB uploads cost four 32 KiB allocations
//! instead of a million.

use std::collections::HashMap;

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Number of distinct cached blocks per payload size. Two is enough to keep
/// consecutive payloads distinct; four keeps short repeat cycles out of any
/// content-sensitive consumer.
pub const BLOCK_ROTATION: usize = 4;

/// The cached rotation of payload blocks for one size.
struct Blocks {
    blocks: [Bytes; BLOCK_ROTATION],
    next: usize,
}

/// A deterministic generator of random byte payloads.
pub struct PayloadGen {
    rng: SmallRng,
    cache: HashMap<usize, Blocks>,
}

impl PayloadGen {
    /// A generator seeded from `(master, stream)`.
    pub fn new(master: u64, stream: u64) -> Self {
        PayloadGen {
            rng: SmallRng::seed_from_u64(azsim_core::rng::derive_seed(master, stream ^ 0xF00D)),
            cache: HashMap::new(),
        }
    }

    /// Produce `size` random bytes.
    ///
    /// The first [`BLOCK_ROTATION`] calls for a given size draw fresh random
    /// blocks from this generator's stream; every later call is an O(1)
    /// clone of a cached block, cycling through the rotation.
    pub fn bytes(&mut self, size: usize) -> Bytes {
        let rng = &mut self.rng;
        let entry = self.cache.entry(size).or_insert_with(|| Blocks {
            blocks: std::array::from_fn(|_| {
                let mut buf = vec![0u8; size];
                rng.fill_bytes(&mut buf);
                Bytes::from(buf)
            }),
            next: 0,
        });
        let b = entry.blocks[entry.next].clone();
        entry.next = (entry.next + 1) % BLOCK_ROTATION;
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_stream() {
        let mut a = PayloadGen::new(1, 2);
        let mut b = PayloadGen::new(1, 2);
        let mut c = PayloadGen::new(1, 3);
        let xa = a.bytes(1024);
        let xb = b.bytes(1024);
        let xc = c.bytes(1024);
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn produces_requested_sizes() {
        let mut g = PayloadGen::new(7, 0);
        assert_eq!(g.bytes(0).len(), 0);
        assert_eq!(g.bytes(1).len(), 1);
        assert_eq!(g.bytes(1 << 20).len(), 1 << 20);
    }

    #[test]
    fn consecutive_payloads_differ() {
        let mut g = PayloadGen::new(7, 0);
        assert_ne!(g.bytes(256), g.bytes(256));
    }

    #[test]
    fn payloads_rotate_through_cached_blocks() {
        let mut g = PayloadGen::new(7, 0);
        let first: Vec<Bytes> = (0..BLOCK_ROTATION).map(|_| g.bytes(512)).collect();
        for (i, a) in first.iter().enumerate() {
            for b in &first[i + 1..] {
                assert_ne!(a, b, "rotation blocks must be pairwise distinct");
            }
        }
        // The next lap reuses the same backing storage, not fresh copies.
        let again = g.bytes(512);
        assert_eq!(again, first[0]);
        assert_eq!(
            again.as_ptr(),
            first[0].as_ptr(),
            "must be a zero-copy clone"
        );
        // Caches are per-size: a different size starts its own rotation.
        assert_eq!(g.bytes(128).len(), 128);
        assert_eq!(g.bytes(512), first[1]);
    }
}
