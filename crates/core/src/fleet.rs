//! Multi-tenant fleet scenario: the partition-parallel workload.
//!
//! Every figure in the paper runs against **one** storage account, which is
//! fully coupled (shared account pipes and transaction bucket) and
//! therefore pins the whole simulation to one shard. This scenario models
//! what the paper's cloud actually hosts — many tenants, each with its own
//! account — and is the workload where the sharded executor's parallelism
//! is real: partition = tenant, lookahead = the front-end one-way leg, and
//! workers occasionally reach across to a neighbour tenant's account
//! (paying that leg each way) so the shards genuinely exchange messages
//! rather than free-running.
//!
//! The scenario is bit-deterministic across shard counts like everything
//! else: `figures fleet --shards 4` emits the same CSV as `--shards 1`
//! (checked by `tests/figures_sharded.rs`).

use crate::{BenchConfig, Figure, Series};
use azsim_client::{FleetEnv, QueueClient};
use azsim_core::shard::ShardedSimulation;
use azsim_core::SimTime;
use azsim_fabric::Fleet;

/// Outcome of one fleet run.
pub struct FleetResult {
    /// Tenant (account) count.
    pub tenants: u32,
    /// Workers homed on each tenant.
    pub workers_per_tenant: usize,
    /// Operations completed across all tenants.
    pub completed: u64,
    /// Operations a worker addressed to a foreign tenant.
    pub cross_ops: u64,
    /// Virtual completion time.
    pub end_time: SimTime,
    /// Completed operations per tenant, indexed by tenant id.
    pub per_tenant_completed: Vec<u64>,
    /// Events processed by each executor shard.
    pub shard_events: Vec<u64>,
    /// Fingerprint of the `(time, actor, seq)` observable history —
    /// identical at every shard count.
    pub history_hash: Option<u64>,
}

impl FleetResult {
    /// Completed operations per virtual second.
    pub fn throughput(&self) -> f64 {
        let secs = self.end_time.as_nanos() as f64 / 1e9;
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }
}

/// Run `tenants × workers_per_tenant` workers: each worker drives a queue
/// producer/consumer loop on its home tenant and sends every fourth message
/// to the next tenant over, exercising the cross-partition (cross-shard)
/// path. The executor shard count comes from `cfg.shards`.
pub fn run_fleet(cfg: &BenchConfig, tenants: u32, workers_per_tenant: usize) -> FleetResult {
    let mut params = cfg.params.clone();
    params.seed = cfg.seed;
    let fleet = Fleet::new(params, tenants);
    let plan = fleet.plan(workers_per_tenant, cfg.shards);
    let ops = cfg.scaled(120).max(8);

    let report = ShardedSimulation::new(fleet, cfg.seed, plan)
        .record_history()
        .run_workers(move |ctx| async move {
            let me = ctx.id().0;
            let home = me as u32 % tenants;
            let neighbour = (home + 1) % tenants;
            let env = FleetEnv::new(&ctx, home);
            let own = QueueClient::new(&env, format!("fleet-{me}"));
            own.create().await.unwrap();
            let far_env = env.for_tenant(neighbour);
            let far = QueueClient::new(&far_env, format!("fleet-{me}"));
            if neighbour != home {
                far.create().await.unwrap();
            }
            let payload = bytes::Bytes::from(vec![0x5au8; 4 << 10]);
            let mut cross = 0u64;
            for i in 0..ops {
                if tenants > 1 && i % 4 == 3 {
                    far.put_message(payload.clone()).await.unwrap();
                    cross += 1;
                } else {
                    own.put_message(payload.clone()).await.unwrap();
                }
                if i % 2 == 1 {
                    // Drain our own queue at half rate to keep state bounded.
                    let _ = own.get_message().await.unwrap();
                }
            }
            cross
        });

    let per_tenant_completed: Vec<u64> = report
        .model
        .iter()
        .map(|(_, c)| c.metrics().total_completed())
        .collect();
    FleetResult {
        tenants,
        workers_per_tenant,
        completed: report.model.total_completed(),
        cross_ops: report.results.iter().sum(),
        end_time: report.end_time,
        per_tenant_completed,
        shard_events: report.shard_events,
        history_hash: report.history_hash,
    }
}

/// Tenant ladder swept by the `fleet` figure target.
pub const TENANT_LADDER: [u32; 4] = [1, 2, 4, 8];

/// Shard ladder swept by the fleet *scaling* figure.
pub const SHARD_LADDER: [u32; 4] = [1, 2, 4, 8];

/// The `fleet` target's figures: the tenant-ladder throughput figure, plus
/// the shard-ladder scaling figure.
pub fn figure_fleet(cfg: &BenchConfig) -> Vec<Figure> {
    let workers_per_tenant = 4;
    let mut throughput = Series::new("ops-per-vsec");
    let mut cross = Series::new("cross-tenant-ops");
    for &tenants in &TENANT_LADDER {
        let r = run_fleet(cfg, tenants, workers_per_tenant);
        throughput.push(tenants as f64, r.throughput());
        cross.push(tenants as f64, r.cross_ops as f64);
    }
    let mut fig = Figure::new(
        "fleet",
        format!("Multi-tenant fleet throughput ({workers_per_tenant} workers/tenant)"),
        "tenants",
        "ops/s (virtual)",
    );
    fig.series.push(throughput);
    fig.series.push(cross);
    vec![fig, figure_fleet_scaling(cfg)]
}

/// The fleet scaling figure: the same fleet workload at a fixed tenant and
/// worker count, swept over the executor shard ladder (ignoring
/// `cfg.shards`, so the emitted CSV is identical no matter which executor
/// the rest of the run used). Every series is deterministic and therefore
/// committable as a golden: `ops-per-vsec` is the virtual throughput,
/// bit-identical at every shard count — the executor's determinism
/// guarantee made visible as a flat line; `events-max-shard` is the
/// busiest shard's event count, which falls as shards are added and shows
/// the striped plan actually spreading load; `history-stable` is 1 when
/// the `(time, actor, seq)` observable-history fingerprint matches the
/// serial reference. Wall-clock scaling is measured by the `bench` target
/// (`BENCH_engine.json`), never committed in goldens.
pub fn figure_fleet_scaling(cfg: &BenchConfig) -> Figure {
    let (tenants, workers_per_tenant) = (8u32, 4usize);
    let mut throughput = Series::new("ops-per-vsec");
    let mut max_shard = Series::new("events-max-shard");
    let mut stable = Series::new("history-stable");
    let mut reference: Option<Option<u64>> = None;
    for &shards in &SHARD_LADDER {
        let r = run_fleet(
            &cfg.clone().with_shards(shards),
            tenants,
            workers_per_tenant,
        );
        let hash = r.history_hash;
        let ok = match &reference {
            None => {
                reference = Some(hash);
                true
            }
            Some(base) => *base == hash,
        };
        throughput.push(shards as f64, r.throughput());
        max_shard.push(
            shards as f64,
            *r.shard_events.iter().max().unwrap_or(&0) as f64,
        );
        stable.push(shards as f64, if ok { 1.0 } else { 0.0 });
    }
    let mut fig = Figure::new(
        "fleet-scaling",
        format!(
            "Fleet shard scaling ({tenants} tenants x {workers_per_tenant} workers, \
             deterministic series)"
        ),
        "shards",
        "ops/s (virtual)",
    );
    fig.series.push(throughput);
    fig.series.push(max_shard);
    fig.series.push(stable);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig::quick().with_scale(0.02)
    }

    #[test]
    fn fleet_run_is_identical_at_every_shard_count() {
        let serial = run_fleet(&tiny(), 4, 2);
        assert!(serial.completed > 0);
        assert!(serial.cross_ops > 0, "workload must cross tenants");
        for shards in [2u32, 4] {
            let shd = run_fleet(&tiny().with_shards(shards), 4, 2);
            assert_eq!(serial.history_hash, shd.history_hash);
            assert_eq!(serial.end_time, shd.end_time);
            assert_eq!(serial.completed, shd.completed);
            assert_eq!(serial.per_tenant_completed, shd.per_tenant_completed);
            assert_eq!(serial.cross_ops, shd.cross_ops);
            assert_eq!(shd.shard_events.len(), shards as usize);
            assert_eq!(
                shd.shard_events.iter().sum::<u64>(),
                serial.shard_events.iter().sum::<u64>()
            );
        }
    }

    #[test]
    fn single_tenant_fleet_has_no_cross_ops() {
        let r = run_fleet(&tiny(), 1, 2);
        assert_eq!(r.cross_ops, 0);
        assert!(r.completed > 0);
    }

    #[test]
    fn scaling_figure_is_flat_stable_and_spreads_load() {
        let fig = figure_fleet_scaling(&tiny());
        assert_eq!(fig.id, "fleet-scaling");
        let [vops, max_shard, stable] = &fig.series[..] else {
            panic!("expected 3 series, got {}", fig.series.len());
        };
        assert_eq!(vops.points.len(), SHARD_LADDER.len());
        // Virtual throughput is bit-identical at every shard count.
        let first = vops.points[0].1;
        assert!(first > 0.0);
        assert!(vops.points.iter().all(|&(_, y)| y == first));
        // The history fingerprint matched the serial reference everywhere.
        assert!(stable.points.iter().all(|&(_, y)| y == 1.0));
        // Adding shards strictly sheds load off the busiest shard (until
        // the tenant count stops dividing further).
        let loads: Vec<f64> = max_shard.points.iter().map(|&(_, y)| y).collect();
        assert!(
            loads.windows(2).all(|w| w[1] <= w[0]),
            "busiest-shard load must not grow with shards: {loads:?}"
        );
        assert!(loads[loads.len() - 1] < loads[0]);
    }

    #[test]
    fn scaling_figure_ignores_the_ambient_shard_count() {
        let a = figure_fleet_scaling(&tiny());
        let b = figure_fleet_scaling(&tiny().with_shards(4));
        assert_eq!(a.to_csv(), b.to_csv());
    }
}
