//! Latency-distribution reporting.
//!
//! The paper reports per-operation *means*; with the fabric's tracer we
//! can additionally report full latency distributions (p50/p95/p99) per
//! operation class — the shape modern storage benchmarks (YCSB, CosBench)
//! report. [`profile_mixed`] drives a representative mixed workload with
//! tracing enabled and summarizes it.

use crate::config::BenchConfig;
use crate::payload::PayloadGen;
use azsim_client::{BlobClient, Environment, QueueClient, TableClient, VirtualEnv};
use azsim_core::stats::Samples;
use azsim_core::Simulation;
use azsim_fabric::{Cluster, TraceOutcome, Tracer};
use azsim_storage::{Entity, OpClass, PropValue};
use std::collections::HashMap;

/// Per-class latency distributions harvested from a trace.
#[derive(Debug, Default)]
pub struct LatencyReport {
    per_class: HashMap<OpClass, Samples>,
    throttled: u64,
    failed: u64,
}

impl LatencyReport {
    /// Build a report from a trace buffer (successful ops only; throttles
    /// and failures are counted separately).
    pub fn from_trace(tracer: &Tracer) -> Self {
        let mut report = LatencyReport::default();
        for r in tracer.records() {
            match r.outcome {
                TraceOutcome::Ok => report
                    .per_class
                    .entry(r.class)
                    .or_default()
                    .record(r.latency().as_secs_f64()),
                TraceOutcome::Throttled => report.throttled += 1,
                TraceOutcome::Failed | TraceOutcome::Faulted | TraceOutcome::TimedOut => {
                    report.failed += 1
                }
            }
        }
        report
    }

    /// Distribution for one class, if observed.
    pub fn samples_mut(&mut self, class: OpClass) -> Option<&mut Samples> {
        self.per_class.get_mut(&class)
    }

    /// Number of throttled operations in the trace.
    pub fn throttled(&self) -> u64 {
        self.throttled
    }

    /// Number of failed operations in the trace.
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Render an aligned per-class table (count, mean, p50, p95, p99, max),
    /// classes in label order, latencies in milliseconds.
    pub fn render(&mut self) -> String {
        let mut out = format!(
            "{:<24} | {:>7} | {:>9} | {:>9} | {:>9} | {:>9} | {:>9}\n",
            "op", "count", "mean ms", "p50 ms", "p95 ms", "p99 ms", "max ms"
        );
        let mut classes: Vec<OpClass> = self.per_class.keys().copied().collect();
        classes.sort_by_key(|c| c.label());
        for class in classes {
            let s = self.per_class.get_mut(&class).expect("key just listed");
            out.push_str(&format!(
                "{:<24} | {:>7} | {:>9.3} | {:>9.3} | {:>9.3} | {:>9.3} | {:>9.3}\n",
                class.label(),
                s.len(),
                s.mean() * 1e3,
                s.quantile(0.50) * 1e3,
                s.quantile(0.95) * 1e3,
                s.quantile(0.99) * 1e3,
                s.quantile(1.0) * 1e3,
            ));
        }
        if self.throttled > 0 || self.failed > 0 {
            out.push_str(&format!(
                "({} throttled, {} failed ops excluded)\n",
                self.throttled, self.failed
            ));
        }
        out
    }
}

/// Drive a mixed blob/queue/table workload with tracing enabled and
/// return its latency distributions. Deterministic under `cfg.seed`.
pub fn profile_mixed(cfg: &BenchConfig, workers: usize, ops_per_worker: usize) -> LatencyReport {
    let seed = cfg.seed;
    let mut cluster = Cluster::new(cfg.params.clone());
    cluster.enable_tracing(workers * ops_per_worker * 8 + 1024);
    let sim = Simulation::new(cluster, seed);
    let report = sim.run_workers(workers, move |ctx| {
        let env = VirtualEnv::new(ctx);
        let me = env.instance();
        let blobs = BlobClient::new(&env, "mix");
        blobs.create_container().unwrap();
        let queue = QueueClient::new(&env, format!("mix-{me}"));
        queue.create().unwrap();
        let table = TableClient::new(&env, "mix");
        table.create_table().unwrap();
        let mut gen = PayloadGen::new(seed, me as u64);

        for i in 0..ops_per_worker {
            // One representative op of each service per iteration.
            queue.put_message(gen.bytes(8 << 10)).unwrap();
            if let Some(m) = queue.get_message().unwrap() {
                queue.delete_message(&m).unwrap();
            }
            blobs
                .upload(&format!("b-{me}-{i}"), gen.bytes(64 << 10))
                .unwrap();
            let _ = blobs.download(&format!("b-{me}-{i}")).unwrap();
            table
                .insert(
                    Entity::new(format!("p{me}"), i.to_string())
                        .with("v", PropValue::Binary(gen.bytes(4 << 10))),
                )
                .unwrap();
            let _ = table.query(&format!("p{me}"), &i.to_string()).unwrap();
        }
    });
    LatencyReport::from_trace(report.model.tracer().expect("tracing enabled"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_profile_covers_all_three_services() {
        let cfg = BenchConfig::paper();
        let mut r = profile_mixed(&cfg, 4, 10);
        for class in [
            OpClass::QueuePut,
            OpClass::QueueGet,
            OpClass::BlobUploadSingle,
            OpClass::BlobDownload,
            OpClass::TableInsert,
            OpClass::TableQuery,
        ] {
            let s = r
                .samples_mut(class)
                .unwrap_or_else(|| panic!("{class:?} missing"));
            assert_eq!(s.len(), 40, "{class:?}");
            assert!(s.mean() > 0.0);
        }
        assert_eq!(r.failed(), 0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let cfg = BenchConfig::paper();
        let mut r = profile_mixed(&cfg, 4, 10);
        let s = r.samples_mut(OpClass::QueueGet).unwrap();
        let (p50, p95, p99, max) = (
            s.quantile(0.5),
            s.quantile(0.95),
            s.quantile(0.99),
            s.quantile(1.0),
        );
        assert!(p50 <= p95 && p95 <= p99 && p99 <= max);
        assert!(p50 > 0.0);
    }

    #[test]
    fn render_contains_header_and_classes() {
        let cfg = BenchConfig::paper();
        let mut r = profile_mixed(&cfg, 2, 5);
        let table = r.render();
        assert!(table.contains("p99 ms"));
        assert!(table.contains("queue.put"));
        assert!(table.contains("table.query"));
    }

    #[test]
    fn report_is_deterministic() {
        let cfg = BenchConfig::paper();
        let mut a = profile_mixed(&cfg, 3, 8);
        let mut b = profile_mixed(&cfg, 3, 8);
        assert_eq!(a.render(), b.render());
    }
}
