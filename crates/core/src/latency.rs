//! Latency-distribution reporting.
//!
//! The paper reports per-operation *means*; with the fabric's tracer we
//! can additionally report full latency distributions (p50/p95/p99) per
//! operation class — the shape modern storage benchmarks (YCSB, CosBench)
//! report. [`profile_mixed`] drives a representative mixed workload with
//! tracing enabled and summarizes it. Distributions are held in
//! [`Samples`]' HDR-style histograms, so the report is O(1) memory in the
//! number of traced operations.

use crate::config::BenchConfig;
use crate::payload::PayloadGen;
use azsim_client::{BlobClient, Environment, QueueClient, TableClient, VirtualEnv};
use azsim_core::stats::Samples;
use azsim_core::Simulation;
use azsim_fabric::{TraceOutcome, Tracer};
use azsim_storage::{Entity, OpClass, PropValue};
use std::collections::HashMap;

/// Per-class latency distributions harvested from a trace.
#[derive(Debug, Default)]
pub struct LatencyReport {
    per_class: HashMap<OpClass, Samples>,
    throttled: u64,
    failed: u64,
    faulted: u64,
    timed_out: u64,
}

impl LatencyReport {
    /// Build a report from a trace buffer (successful ops only; throttles
    /// and the three failure kinds are counted separately, so
    /// fault-injection runs can tell timeouts from server faults from
    /// semantic errors).
    pub fn from_trace(tracer: &Tracer) -> Self {
        let mut report = LatencyReport::default();
        for r in tracer.records() {
            match r.outcome {
                TraceOutcome::Ok => report
                    .per_class
                    .entry(r.class)
                    .or_default()
                    .record(r.latency().as_secs_f64()),
                TraceOutcome::Throttled => report.throttled += 1,
                TraceOutcome::Failed => report.failed += 1,
                TraceOutcome::Faulted => report.faulted += 1,
                TraceOutcome::TimedOut => report.timed_out += 1,
            }
        }
        report
    }

    /// Distribution for one class, if observed.
    pub fn samples(&self, class: OpClass) -> Option<&Samples> {
        self.per_class.get(&class)
    }

    /// Number of throttled operations in the trace.
    pub fn throttled(&self) -> u64 {
        self.throttled
    }

    /// Number of semantically failed operations in the trace.
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Number of operations rejected by injected server faults.
    pub fn faulted(&self) -> u64 {
        self.faulted
    }

    /// Number of operations dropped by fault injection (client timeouts).
    pub fn timed_out(&self) -> u64 {
        self.timed_out
    }

    /// Render an aligned per-class table (count, mean, p50, p95, p99, max),
    /// classes in label order, latencies in milliseconds.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<24} | {:>7} | {:>9} | {:>9} | {:>9} | {:>9} | {:>9}\n",
            "op", "count", "mean ms", "p50 ms", "p95 ms", "p99 ms", "max ms"
        );
        let mut classes: Vec<OpClass> = self.per_class.keys().copied().collect();
        classes.sort_by_key(|c| c.label());
        for class in classes {
            let s = &self.per_class[&class];
            out.push_str(&format!(
                "{:<24} | {:>7} | {:>9.3} | {:>9.3} | {:>9.3} | {:>9.3} | {:>9.3}\n",
                class.label(),
                s.len(),
                s.mean() * 1e3,
                s.quantile(0.50) * 1e3,
                s.quantile(0.95) * 1e3,
                s.quantile(0.99) * 1e3,
                s.quantile(1.0) * 1e3,
            ));
        }
        let excluded = self.throttled + self.failed + self.faulted + self.timed_out;
        if excluded > 0 {
            out.push_str(&format!(
                "({} throttled, {} failed, {} faulted, {} timed-out ops excluded)\n",
                self.throttled, self.failed, self.faulted, self.timed_out
            ));
        }
        out
    }
}

/// Drive a mixed blob/queue/table workload with tracing enabled and
/// return its latency distributions. Deterministic under `cfg.seed`.
pub fn profile_mixed(cfg: &BenchConfig, workers: usize, ops_per_worker: usize) -> LatencyReport {
    let seed = cfg.seed;
    let mut cluster = crate::exec::build_cluster(cfg);
    cluster.enable_tracing(workers * ops_per_worker * 8 + 1024);
    let sim = Simulation::new(cluster, seed);
    let report = sim.run_workers(workers, move |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        let me = env.instance();
        let blobs = BlobClient::new(&env, "mix");
        blobs.create_container().await.unwrap();
        let queue = QueueClient::new(&env, format!("mix-{me}"));
        queue.create().await.unwrap();
        let table = TableClient::new(&env, "mix");
        table.create_table().await.unwrap();
        let mut gen = PayloadGen::new(seed, me as u64);

        for i in 0..ops_per_worker {
            // One representative op of each service per iteration.
            queue.put_message(gen.bytes(8 << 10)).await.unwrap();
            if let Some(m) = queue.get_message().await.unwrap() {
                queue.delete_message(&m).await.unwrap();
            }
            blobs
                .upload(&format!("b-{me}-{i}"), gen.bytes(64 << 10))
                .await
                .unwrap();
            let _ = blobs.download(&format!("b-{me}-{i}")).await.unwrap();
            table
                .insert(
                    Entity::new(format!("p{me}"), i.to_string())
                        .with("v", PropValue::Binary(gen.bytes(4 << 10))),
                )
                .await
                .unwrap();
            let _ = table
                .query(&format!("p{me}"), &i.to_string())
                .await
                .unwrap();
        }
    });
    LatencyReport::from_trace(report.model.tracer().expect("tracing enabled"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use azsim_core::SimTime;
    use azsim_fabric::{PhaseBreadcrumb, TraceRecord};

    #[test]
    fn mixed_profile_covers_all_three_services() {
        let cfg = BenchConfig::paper();
        let r = profile_mixed(&cfg, 4, 10);
        for class in [
            OpClass::QueuePut,
            OpClass::QueueGet,
            OpClass::BlobUploadSingle,
            OpClass::BlobDownload,
            OpClass::TableInsert,
            OpClass::TableQuery,
        ] {
            let s = r
                .samples(class)
                .unwrap_or_else(|| panic!("{class:?} missing"));
            assert_eq!(s.len(), 40, "{class:?}");
            assert!(s.mean() > 0.0);
        }
        assert_eq!(r.failed(), 0);
        assert_eq!(r.faulted(), 0);
        assert_eq!(r.timed_out(), 0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let cfg = BenchConfig::paper();
        let r = profile_mixed(&cfg, 4, 10);
        let s = r.samples(OpClass::QueueGet).unwrap();
        let (p50, p95, p99, max) = (
            s.quantile(0.5),
            s.quantile(0.95),
            s.quantile(0.99),
            s.quantile(1.0),
        );
        assert!(p50 <= p95 && p95 <= p99 && p99 <= max);
        assert!(p50 > 0.0);
    }

    #[test]
    fn render_contains_header_and_classes() {
        let cfg = BenchConfig::paper();
        let r = profile_mixed(&cfg, 2, 5);
        let table = r.render();
        assert!(table.contains("p99 ms"));
        assert!(table.contains("queue.put"));
        assert!(table.contains("table.query"));
    }

    #[test]
    fn report_is_deterministic() {
        let cfg = BenchConfig::paper();
        let a = profile_mixed(&cfg, 3, 8);
        let b = profile_mixed(&cfg, 3, 8);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn failure_kinds_are_counted_separately() {
        // Regression: Failed | Faulted | TimedOut used to collapse into one
        // `failed` counter, hiding what fault injection actually did.
        let mut tracer = Tracer::with_capacity(16);
        let rec = |outcome| TraceRecord {
            issued: SimTime(0),
            completed: SimTime(1_000_000),
            actor: 0,
            class: OpClass::QueuePut,
            outcome,
            bytes_up: 8,
            bytes_down: 0,
            phases: PhaseBreadcrumb::new(),
        };
        tracer.record(rec(TraceOutcome::Ok));
        tracer.record(rec(TraceOutcome::Throttled));
        tracer.record(rec(TraceOutcome::Failed));
        tracer.record(rec(TraceOutcome::Failed));
        tracer.record(rec(TraceOutcome::Faulted));
        tracer.record(rec(TraceOutcome::Faulted));
        tracer.record(rec(TraceOutcome::Faulted));
        tracer.record(rec(TraceOutcome::TimedOut));

        let r = LatencyReport::from_trace(&tracer);
        assert_eq!(r.throttled(), 1);
        assert_eq!(r.failed(), 2);
        assert_eq!(r.faulted(), 3);
        assert_eq!(r.timed_out(), 1);
        assert_eq!(r.samples(OpClass::QueuePut).unwrap().len(), 1);
        let footer = r.render();
        assert!(footer.contains("1 throttled, 2 failed, 3 faulted, 1 timed-out"));
    }
}
