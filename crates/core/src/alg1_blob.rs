//! Algorithm 1: the Blob storage benchmark (Figures 4 and 5).
//!
//! Per repetition, the workers collectively upload one page blob and one
//! block blob of `blob_chunks × 1 MB` each (chunks split evenly across
//! workers, everyone writing into the *same* shared blobs), synchronize via
//! the queue barrier of Algorithm 2, then each worker downloads:
//!
//! * `blob_chunks` random 1 MB pages from the page blob (random access),
//! * every block of the block blob sequentially (block blobs have no
//!   random-access API),
//! * the entire page blob and the entire block blob via the streaming path.
//!
//! The paper's pseudocode has every worker call `PutBlockList` with its own
//! partial block list, which on the real service would replace the blob
//! with that worker's blocks alone; we commit the full list once (worker 0)
//! after a barrier — the behaviour the measurement clearly intends.
//! Barrier time is excluded from all figures, as in the paper.

use crate::config::BenchConfig;
use crate::payload::PayloadGen;
use crate::report::{Figure, Series};
use azsim_client::{BlobClient, Environment, VirtualEnv};
use azsim_core::SimTime;
use azsim_framework::QueueBarrier;
use std::time::Duration;

/// The measured phases of Algorithm 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BlobPhase {
    /// `PutPage` uploads of this worker's share of the page blob.
    PageUpload,
    /// `PutBlock` staging (plus the single commit) of the block blob.
    BlockUpload,
    /// 1 MB `GetPage` reads at random offsets.
    PageRandomRead,
    /// Sequential `GetBlock` reads.
    BlockSeqRead,
    /// Whole-page-blob streaming download.
    PageFullDownload,
    /// Whole-block-blob streaming download.
    BlockFullDownload,
}

impl BlobPhase {
    /// All phases in execution order.
    pub const ALL: [BlobPhase; 6] = [
        BlobPhase::PageUpload,
        BlobPhase::BlockUpload,
        BlobPhase::PageRandomRead,
        BlobPhase::BlockSeqRead,
        BlobPhase::PageFullDownload,
        BlobPhase::BlockFullDownload,
    ];

    /// Short label used in series names.
    pub fn label(self) -> &'static str {
        match self {
            BlobPhase::PageUpload => "page-upload",
            BlobPhase::BlockUpload => "block-upload",
            BlobPhase::PageRandomRead => "page-random-read",
            BlobPhase::BlockSeqRead => "block-seq-read",
            BlobPhase::PageFullDownload => "page-full-download",
            BlobPhase::BlockFullDownload => "block-full-download",
        }
    }
}

/// One worker's measurement of one phase in one repetition.
#[derive(Clone, Copy, Debug)]
pub struct PhaseSample {
    /// Which phase.
    pub phase: BlobPhase,
    /// Virtual start of the phase on this worker.
    pub start: SimTime,
    /// Virtual end of the phase on this worker.
    pub end: SimTime,
    /// Payload bytes this worker moved during the phase.
    pub bytes: u64,
}

/// Aggregate of one phase at one worker count.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseAggregate {
    /// Mean per-worker phase duration in seconds.
    pub mean_worker_seconds: f64,
    /// Aggregate throughput in MB/s: total bytes over the phase's global
    /// window (min start → max end), averaged over repetitions.
    pub throughput_mb_s: f64,
}

/// Run Algorithm 1 at one worker count; returns per-phase aggregates.
pub fn run_alg1(cfg: &BenchConfig, workers: usize) -> Vec<(BlobPhase, PhaseAggregate)> {
    let chunks = cfg.blob_chunks();
    let chunk_bytes = cfg.chunk_bytes();
    let repeats = cfg.blob_repeats();
    let seed = cfg.seed;

    let report = crate::exec::run_cluster_workers(
        cfg,
        crate::exec::build_cluster(cfg),
        workers,
        move |ctx| async move {
            let env = VirtualEnv::new(&ctx);
            let me = env.instance();
            let blobs = BlobClient::new(&env, "azurebench");
            blobs.create_container().await.unwrap();
            let mut barrier = QueueBarrier::new(&env, "alg1-sync", workers);
            barrier.init().await.unwrap();
            let mut gen = PayloadGen::new(seed, me as u64);
            let mut samples: Vec<PhaseSample> = Vec::new();

            // This worker's contiguous share of chunk indices.
            let per = chunks / workers;
            let extra = chunks % workers;
            let lo = me * per + me.min(extra);
            let hi = lo + per + usize::from(me < extra);

            let record = |samples: &mut Vec<PhaseSample>,
                          phase,
                          start: SimTime,
                          end: SimTime,
                          bytes: u64| {
                samples.push(PhaseSample {
                    phase,
                    start,
                    end,
                    bytes,
                });
            };

            for repeat in 0..repeats {
                let page_blob = format!("AzureBenchPageBlob-{repeat}");
                let block_blob = format!("AzureBenchBlockBlob-{repeat}");
                if me == 0 {
                    blobs
                        .create_page_blob(&page_blob, (chunks * chunk_bytes) as u64)
                        .await
                        .unwrap();
                }
                barrier.wait().await.unwrap();

                // ---- Page blob upload ----
                let t0 = env.now();
                for chunk in lo..hi {
                    let content = gen.bytes(chunk_bytes);
                    blobs
                        .put_page(&page_blob, (chunk * chunk_bytes) as u64, content)
                        .await
                        .unwrap();
                }
                record(
                    &mut samples,
                    BlobPhase::PageUpload,
                    t0,
                    env.now(),
                    ((hi - lo) * chunk_bytes) as u64,
                );

                // ---- Block blob upload (stage own chunks, commit once) ----
                let t0 = env.now();
                for chunk in lo..hi {
                    let content = gen.bytes(chunk_bytes);
                    blobs
                        .put_block(&block_blob, format!("{chunk:06}"), content)
                        .await
                        .unwrap();
                }
                let staged_end = env.now();
                record(
                    &mut samples,
                    BlobPhase::BlockUpload,
                    t0,
                    staged_end,
                    ((hi - lo) * chunk_bytes) as u64,
                );
                barrier.wait().await.unwrap();
                if me == 0 {
                    let ids: Vec<String> = (0..chunks).map(|c| format!("{c:06}")).collect();
                    blobs.put_block_list(&block_blob, ids).await.unwrap();
                }
                barrier.wait().await.unwrap();

                // ---- Random page reads (every worker reads `chunks` pages) ----
                let t0 = env.now();
                for _ in 0..chunks {
                    let chunk = ctx.with_rng(|r| rand::Rng::random_range(r, 0..chunks));
                    let data = blobs
                        .get_page(&page_blob, (chunk * chunk_bytes) as u64, chunk_bytes as u64)
                        .await
                        .unwrap();
                    assert_eq!(data.len(), chunk_bytes);
                }
                record(
                    &mut samples,
                    BlobPhase::PageRandomRead,
                    t0,
                    env.now(),
                    (chunks * chunk_bytes) as u64,
                );

                // ---- Sequential block reads ----
                let t0 = env.now();
                for block in 0..chunks {
                    let data = blobs.get_block(&block_blob, block).await.unwrap();
                    assert_eq!(data.len(), chunk_bytes);
                }
                record(
                    &mut samples,
                    BlobPhase::BlockSeqRead,
                    t0,
                    env.now(),
                    (chunks * chunk_bytes) as u64,
                );
                barrier.wait().await.unwrap();

                // ---- Whole-blob downloads ----
                let t0 = env.now();
                let data = blobs.download(&page_blob).await.unwrap();
                record(
                    &mut samples,
                    BlobPhase::PageFullDownload,
                    t0,
                    env.now(),
                    data.len() as u64,
                );
                let t0 = env.now();
                let data = blobs.download(&block_blob).await.unwrap();
                record(
                    &mut samples,
                    BlobPhase::BlockFullDownload,
                    t0,
                    env.now(),
                    data.len() as u64,
                );
                barrier.wait().await.unwrap();

                if me == 0 {
                    blobs.delete(&page_blob).await.unwrap();
                    blobs.delete(&block_blob).await.unwrap();
                }
                barrier.wait().await.unwrap();
            }
            samples
        },
    );

    aggregate(report.results, repeats)
}

/// Fold per-worker samples into per-phase aggregates.
fn aggregate(
    per_worker: Vec<Vec<PhaseSample>>,
    repeats: usize,
) -> Vec<(BlobPhase, PhaseAggregate)> {
    BlobPhase::ALL
        .iter()
        .map(|&phase| {
            let mut worker_secs = Vec::new();
            let mut tput_sum = 0.0;
            let mut tput_n = 0;
            for rep in 0..repeats {
                // The rep-th sample of this phase on each worker.
                let samples: Vec<&PhaseSample> = per_worker
                    .iter()
                    .filter_map(|w| w.iter().filter(|s| s.phase == phase).nth(rep))
                    .collect();
                if samples.is_empty() {
                    continue;
                }
                let start = samples.iter().map(|s| s.start).min().unwrap();
                let end = samples.iter().map(|s| s.end).max().unwrap();
                let bytes: u64 = samples.iter().map(|s| s.bytes).sum();
                let window = end.saturating_since(start).as_secs_f64();
                if window > 0.0 {
                    tput_sum += bytes as f64 / (1 << 20) as f64 / window;
                    tput_n += 1;
                }
                for s in &samples {
                    worker_secs.push(s.end.saturating_since(s.start).as_secs_f64());
                }
            }
            let agg = PhaseAggregate {
                mean_worker_seconds: if worker_secs.is_empty() {
                    0.0
                } else {
                    worker_secs.iter().sum::<f64>() / worker_secs.len() as f64
                },
                throughput_mb_s: if tput_n == 0 {
                    0.0
                } else {
                    tput_sum / tput_n as f64
                },
            };
            (phase, agg)
        })
        .collect()
}

/// Sweep the worker ladder and produce Figure 4 (whole-blob up/downloads:
/// throughput and time) and Figure 5 (chunked downloads: throughput and
/// time) — four [`Figure`]s in paper order: 4a, 4b, 5a, 5b.
pub fn figures_4_and_5(cfg: &BenchConfig) -> Vec<Figure> {
    let mut fig4a = Figure::new(
        "fig4a",
        "Blob storage throughput (upload + full download)",
        "workers",
        "MB/s (aggregate)",
    );
    let mut fig4b = Figure::new(
        "fig4b",
        "Blob storage time (upload + full download)",
        "workers",
        "seconds (mean per worker)",
    );
    let mut fig5a = Figure::new(
        "fig5a",
        "Blob download one page/block at a time: throughput",
        "workers",
        "MB/s (aggregate)",
    );
    let mut fig5b = Figure::new(
        "fig5b",
        "Blob download one page/block at a time: time",
        "workers",
        "seconds (mean per worker)",
    );
    let fig4_phases = [
        BlobPhase::PageUpload,
        BlobPhase::BlockUpload,
        BlobPhase::PageFullDownload,
        BlobPhase::BlockFullDownload,
    ];
    let fig5_phases = [BlobPhase::PageRandomRead, BlobPhase::BlockSeqRead];
    for p in fig4_phases {
        fig4a.series.push(Series::new(p.label()));
        fig4b.series.push(Series::new(p.label()));
    }
    for p in fig5_phases {
        fig5a.series.push(Series::new(p.label()));
        fig5b.series.push(Series::new(p.label()));
    }

    let swept = crate::sweep::sweep(cfg, run_alg1);
    for (&w, aggs) in cfg.workers.iter().zip(swept) {
        for (phase, agg) in aggs {
            let x = w as f64;
            if let Some(i) = fig4_phases.iter().position(|&p| p == phase) {
                fig4a.series[i].push(x, agg.throughput_mb_s);
                fig4b.series[i].push(x, agg.mean_worker_seconds);
            }
            if let Some(i) = fig5_phases.iter().position(|&p| p == phase) {
                fig5a.series[i].push(x, agg.throughput_mb_s);
                fig5b.series[i].push(x, agg.mean_worker_seconds);
            }
        }
    }
    vec![fig4a, fig4b, fig5a, fig5b]
}

/// Convenience: total duration of Duration-like phase windows (used by
/// tests asserting the paper's qualitative shapes).
pub fn phase(aggs: &[(BlobPhase, PhaseAggregate)], p: BlobPhase) -> PhaseAggregate {
    aggs.iter()
        .find(|(q, _)| *q == p)
        .map(|(_, a)| *a)
        .unwrap_or_default()
}

/// The virtual duration of a full Algorithm 1 run (for sanity tests).
pub fn run_alg1_wall(cfg: &BenchConfig, workers: usize) -> Duration {
    let chunks = cfg.blob_chunks();
    let _ = chunks;
    let aggs = run_alg1(cfg, workers);
    Duration::from_secs_f64(aggs.iter().map(|(_, a)| a.mean_worker_seconds).sum::<f64>())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig::paper().with_scale(0.04).with_workers(vec![2])
        // 4 chunks, 1 repeat
    }

    #[test]
    fn alg1_produces_samples_for_every_phase() {
        let cfg = tiny();
        let aggs = run_alg1(&cfg, 2);
        assert_eq!(aggs.len(), BlobPhase::ALL.len());
        for (p, a) in &aggs {
            assert!(a.mean_worker_seconds > 0.0, "phase {p:?} has zero duration");
            assert!(a.throughput_mb_s > 0.0, "phase {p:?} has zero throughput");
        }
    }

    #[test]
    fn uploads_split_chunks_across_workers() {
        // 4 chunks over 3 workers: shares 2/1/1; upload bytes must sum to
        // the blob size, downloads are full-size per worker.
        let cfg = BenchConfig::paper().with_scale(0.04).with_workers(vec![3]);
        let aggs = run_alg1(&cfg, 3);
        let up = phase(&aggs, BlobPhase::PageUpload);
        let down = phase(&aggs, BlobPhase::PageFullDownload);
        // Mean upload share < full blob download time at equal bandwidth
        // would not strictly hold, but both must at least be measured.
        assert!(up.mean_worker_seconds > 0.0 && down.mean_worker_seconds > 0.0);
    }

    #[test]
    fn page_upload_outpaces_block_upload() {
        let cfg = tiny();
        let aggs = run_alg1(&cfg, 2);
        let page = phase(&aggs, BlobPhase::PageUpload);
        let block = phase(&aggs, BlobPhase::BlockUpload);
        assert!(
            page.throughput_mb_s > block.throughput_mb_s,
            "page {:.1} MB/s must beat block {:.1} MB/s",
            page.throughput_mb_s,
            block.throughput_mb_s
        );
    }

    #[test]
    fn sequential_blocks_beat_random_pages() {
        let cfg = tiny();
        let aggs = run_alg1(&cfg, 2);
        let blocks = phase(&aggs, BlobPhase::BlockSeqRead);
        let pages = phase(&aggs, BlobPhase::PageRandomRead);
        assert!(
            blocks.throughput_mb_s > pages.throughput_mb_s,
            "sequential {:.1} must beat random {:.1}",
            blocks.throughput_mb_s,
            pages.throughput_mb_s
        );
    }

    #[test]
    fn figures_have_full_ladders() {
        let cfg = BenchConfig::paper()
            .with_scale(0.04)
            .with_workers(vec![1, 2]);
        let figs = figures_4_and_5(&cfg);
        assert_eq!(figs.len(), 4);
        for f in &figs {
            for s in &f.series {
                assert_eq!(s.points.len(), 2, "{}/{} missing points", f.id, s.name);
            }
        }
    }
}
