//! A tiny JSON-Schema-subset validator shared by the `export_check` bin
//! and the in-tree schema tests.
//!
//! Supports exactly the keywords the checked-in `schemas/*.schema.json`
//! files use — `type` (with the JSON-Schema rule that every integer is
//! also a number), `const` (strings), `required`, `properties` and
//! `items` — and nothing more. Non-object schema nodes accept anything,
//! matching JSON Schema's boolean-schema semantics.

use serde::value::{find, Value};

/// The JSON type name of a value, distinguishing `integer` from
/// `number` by the presence of a fraction or exponent in the raw text.
pub fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::Num(n) => {
            if n.contains(['.', 'e', 'E']) {
                "number"
            } else {
                "integer"
            }
        }
        Value::Str(_) => "string",
        Value::Arr(_) => "array",
        Value::Obj(_) => "object",
    }
}

/// Walk `doc` against `schema`, appending one message per violation.
/// `path` seeds the JSON-path prefix of the messages (use `"$"`).
pub fn validate(doc: &Value, schema: &Value, path: &str, errors: &mut Vec<String>) {
    let Some(schema) = schema.as_object() else {
        return; // non-object schema nodes (e.g. booleans) accept anything
    };

    if let Some(Value::Str(want)) = find(schema, "type") {
        let got = type_name(doc);
        // JSON Schema: every integer is also a number.
        let ok = got == want || (want == "number" && got == "integer");
        if !ok {
            errors.push(format!("{path}: expected {want}, got {got}"));
            return;
        }
    }

    if let Some(Value::Str(want)) = find(schema, "const") {
        if doc.as_str() != Some(want) {
            errors.push(format!("{path}: expected constant {want:?}, got {doc:?}"));
        }
    }

    if let Some(Value::Arr(required)) = find(schema, "required") {
        if let Some(members) = doc.as_object() {
            for req in required {
                if let Some(key) = req.as_str() {
                    if find(members, key).is_none() {
                        errors.push(format!("{path}: missing required key {key:?}"));
                    }
                }
            }
        }
    }

    if let (Some(Value::Obj(props)), Some(members)) = (find(schema, "properties"), doc.as_object())
    {
        for (key, sub) in props {
            if let Some(child) = find(members, key) {
                validate(child, sub, &format!("{path}.{key}"), errors);
            }
        }
    }

    if let (Some(item_schema), Some(elems)) = (find(schema, "items"), doc.as_array()) {
        for (i, elem) in elems.iter().enumerate() {
            validate(elem, item_schema, &format!("{path}[{i}]"), errors);
        }
    }
}

/// Validate `doc` against the schema file at `schema_path`, returning
/// every violation. Panics on unreadable or invalid schema files — the
/// schemas are checked-in artifacts, not user input.
pub fn validate_against_file(doc: &Value, schema_path: &str) -> Vec<String> {
    let bytes = std::fs::read(schema_path)
        .unwrap_or_else(|e| panic!("cannot read schema {schema_path}: {e}"));
    let schema = serde::value::parse(&bytes)
        .unwrap_or_else(|e| panic!("schema {schema_path} is not valid JSON: {e}"));
    let mut errors = Vec::new();
    validate(doc, &schema, "$", &mut errors);
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::value::parse;

    #[test]
    fn type_mismatches_and_missing_keys_are_reported_with_paths() {
        let schema = parse(
            br#"{"type": "object", "required": ["a", "b"],
                 "properties": {"a": {"type": "integer"},
                                "c": {"type": "array", "items": {"type": "string"}}}}"#,
        )
        .unwrap();
        let doc = parse(br#"{"a": 1.5, "c": ["x", 3]}"#).unwrap();
        let mut errors = Vec::new();
        validate(&doc, &schema, "$", &mut errors);
        assert!(errors
            .iter()
            .any(|e| e == "$.a: expected integer, got number"));
        assert!(errors
            .iter()
            .any(|e| e.contains("missing required key \"b\"")));
        assert!(errors.iter().any(|e| e.contains("$.c[1]")));
    }

    #[test]
    fn integers_satisfy_number_and_const_pins_strings() {
        let schema = parse(
            br#"{"type": "object",
                 "properties": {"v": {"type": "number"},
                                "s": {"type": "string", "const": "tag/v1"}}}"#,
        )
        .unwrap();
        let mut errors = Vec::new();
        validate(
            &parse(br#"{"v": 3, "s": "tag/v1"}"#).unwrap(),
            &schema,
            "$",
            &mut errors,
        );
        assert!(errors.is_empty(), "{errors:?}");
        validate(
            &parse(br#"{"v": 3, "s": "tag/v2"}"#).unwrap(),
            &schema,
            "$",
            &mut errors,
        );
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].contains("expected constant"));
    }
}
