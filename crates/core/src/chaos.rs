//! Chaos scenario: goodput and latency degradation under injected faults.
//!
//! This scenario is not a figure from the paper — it exercises what the
//! paper's bag-of-tasks pattern (Section IV-C) *implies*: workers drain a
//! shared task queue, the built-in visibility-timeout mechanism plus the
//! client resilience layer tolerate server crashes, throttle storms and
//! dropped requests, and **no task is ever lost** — the system only
//! degrades in goodput and latency.
//!
//! A fault-intensity knob in `[0, 1]` scales a fixed [`FaultPlan`]
//! template ([`chaos_plan`]): a crash of the server holding the shared
//! task queue, periodic cluster-wide `ServerBusy` storms, and
//! intensity-proportional request-drop / replica-stall probabilities. At
//! intensity `0` the plan is inert and the run is identical to a
//! fault-free baseline.
//!
//! Everything is seeded: the same config and intensity reproduce the same
//! metrics bit-for-bit, which is what makes goodput-vs-intensity curves
//! meaningful.

use crate::config::BenchConfig;
use crate::report::{Figure, Series};
use azsim_client::{Environment, ResilienceStats, ResilientPolicy, VirtualEnv};
use azsim_core::SimTime;
use azsim_fabric::{BusyStorm, FaultPlan, ServerCrash};
use azsim_framework::TaskQueue;
use azsim_storage::PartitionKey;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::rc::Rc;
use std::time::Duration;

/// Name of the shared task queue (its partition server is the crash
/// target in [`chaos_plan`]).
pub const CHAOS_QUEUE: &str = "chaos-tasks";

/// Simulated per-task processing time.
const TASK_WORK: Duration = Duration::from_millis(20);

/// One work item in the bag.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChaosTask {
    /// Task id, unique within the run.
    pub id: u32,
}

/// Metrics of one chaos run.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosResult {
    /// The fault-intensity knob this run used.
    pub intensity: f64,
    /// Tasks submitted.
    pub tasks: u32,
    /// Distinct task ids completed at least once.
    pub distinct_done: usize,
    /// Tasks submitted but never completed (must be zero).
    pub lost: u32,
    /// Total completions (> `distinct_done` means visibility-timeout
    /// redeliveries caused duplicate processing — allowed, at-least-once).
    pub completions: u64,
    /// Virtual time until the last worker finished, in seconds.
    pub makespan_s: f64,
    /// Distinct tasks per second of makespan.
    pub goodput_tps: f64,
    /// Mean claim-to-complete latency per completion, in seconds.
    pub mean_task_latency_s: f64,
    /// Client-side resilience work, summed over workers.
    pub stats: ResilienceStats,
    /// Faults the cluster injected (storm rejections, crash/blackout
    /// faults, drops, stalls).
    pub injected_faults: u64,
    /// Tasks parked on the poison queue (must stay zero — chaos tasks are
    /// well-formed and processable).
    pub dead_lettered: u64,
}

/// The scenario's fault-plan template, scaled by `intensity` in `[0, 1]`.
/// Intensity `0` yields an inert plan.
pub fn chaos_plan(cfg: &BenchConfig, intensity: f64) -> FaultPlan {
    assert!(
        (0.0..=1.0).contains(&intensity),
        "fault intensity must be in [0, 1]"
    );
    let mut plan = FaultPlan {
        seed: cfg.seed,
        ..FaultPlan::default()
    };
    if intensity <= 0.0 {
        return plan;
    }
    // Crash the server that owns the shared task queue early in the run:
    // the partition everyone depends on fails over mid-drain.
    let server = PartitionKey::Queue {
        queue: CHAOS_QUEUE.into(),
    }
    .server_index(cfg.params.servers);
    plan.crashes.push(ServerCrash {
        server,
        at: SimTime::from_secs(2),
        failover: Duration::from_secs_f64(4.0 * intensity),
    });
    // Periodic cluster-wide throttle storms.
    for k in 0..4u64 {
        plan.busy_storms.push(BusyStorm {
            at: SimTime::from_secs(8 + 10 * k),
            duration: Duration::from_secs_f64(3.0 * intensity),
            retry_after: Duration::from_millis(500),
        });
    }
    plan.timeout_prob = 0.01 * intensity;
    plan.timeout = Duration::from_secs(5);
    plan.replica_stall_prob = 0.05 * intensity;
    plan
}

/// Run the chaos scenario once: `workers` drain a bag of scaled-`1000`
/// tasks from a shared queue while [`chaos_plan`] faults are injected.
pub fn run_chaos(cfg: &BenchConfig, workers: usize, intensity: f64) -> ChaosResult {
    let n_tasks = cfg.scaled(1000) as u32;
    let seed = cfg.seed;

    let mut cluster = crate::exec::build_cluster(cfg);
    let plan = chaos_plan(cfg, intensity);
    if !plan.is_inert() {
        cluster.set_fault_plan(plan);
    }

    let report = crate::exec::run_cluster_workers(cfg, cluster, workers, move |ctx| async move {
        let env = VirtualEnv::new(&ctx);
        let me = env.instance();
        // One shared resilience policy per worker: jitter stream, breaker
        // map and stats span all of this worker's clients.
        let policy = Rc::new(
            ResilientPolicy::new(seed ^ me as u64)
                .with_max_attempts(10)
                .with_deadline(Duration::from_secs(120)),
        );
        let tq: TaskQueue<'_, _, ChaosTask> = TaskQueue::new(&env, CHAOS_QUEUE)
            .with_visibility(Duration::from_secs(60))
            .with_max_attempts(6)
            .with_policy(policy.clone());
        tq.init().await.unwrap();

        if me == 0 {
            for id in 0..n_tasks {
                // Submissions must survive storms: the policy absorbs
                // transient errors; if it still gives up, wait and re-send.
                while tq.submit(&ChaosTask { id }).await.is_err() {
                    env.sleep(Duration::from_secs(1)).await;
                }
            }
        }

        let mut done: Vec<(u32, f64)> = Vec::new();
        let mut idle = 0;
        while idle < 5 {
            let t0 = env.now();
            match tq.claim().await {
                Ok(Some(claimed)) => {
                    idle = 0;
                    env.sleep(TASK_WORK).await;
                    // A failed complete means our claim was superseded
                    // (visibility expired mid-fault); the task is someone
                    // else's now, so don't count it.
                    if tq.complete(&claimed).await.is_ok() {
                        let latency = env.now().saturating_since(t0).as_secs_f64();
                        done.push((claimed.task.id, latency));
                    }
                }
                Ok(None) => {
                    idle += 1;
                    env.sleep(Duration::from_secs(1)).await;
                }
                Err(_) => {
                    // Breaker open or retries exhausted: the partition is
                    // mid-failover. Back off and try again; fault windows
                    // are finite.
                    env.sleep(Duration::from_secs(1)).await;
                }
            }
        }
        (
            done,
            policy.stats(),
            tq.dead_lettered(),
            env.now().as_secs_f64(),
        )
    });

    let injected_faults = report.model.fault_metrics().total();
    let mut distinct = HashSet::new();
    let mut completions = 0u64;
    let mut latency_sum = 0.0;
    let mut stats = ResilienceStats::default();
    let mut dead_lettered = 0u64;
    let mut makespan_s: f64 = 0.0;
    for (done, worker_stats, dl, end_s) in report.results {
        for (id, latency) in done {
            distinct.insert(id);
            completions += 1;
            latency_sum += latency;
        }
        stats.attempts += worker_stats.attempts;
        stats.retries += worker_stats.retries;
        stats.giveups += worker_stats.giveups;
        stats.fast_failures += worker_stats.fast_failures;
        stats.breaker_opens += worker_stats.breaker_opens;
        stats.deadline_expired += worker_stats.deadline_expired;
        dead_lettered += dl;
        makespan_s = makespan_s.max(end_s);
    }

    ChaosResult {
        intensity,
        tasks: n_tasks,
        distinct_done: distinct.len(),
        lost: n_tasks - distinct.len() as u32,
        completions,
        makespan_s,
        goodput_tps: distinct.len() as f64 / makespan_s.max(f64::EPSILON),
        mean_task_latency_s: latency_sum / (completions.max(1)) as f64,
        stats,
        injected_faults,
        dead_lettered,
    }
}

/// Sweep fault intensities and produce the chaos figures: goodput,
/// mean task latency, and resilience/injection counters vs intensity.
pub fn figure_chaos(cfg: &BenchConfig, workers: usize, intensities: &[f64]) -> Vec<Figure> {
    let mut goodput = Figure::new(
        "chaos-goodput",
        "Chaos: goodput vs fault intensity",
        "fault intensity",
        "distinct tasks per second",
    );
    goodput.series.push(Series::new("goodput"));

    let mut latency = Figure::new(
        "chaos-latency",
        "Chaos: task latency vs fault intensity",
        "fault intensity",
        "mean claim-to-complete ms",
    );
    latency.series.push(Series::new("latency"));

    let mut work = Figure::new(
        "chaos-work",
        "Chaos: resilience work vs fault intensity",
        "fault intensity",
        "count",
    );
    work.series.push(Series::new("retries"));
    work.series.push(Series::new("injected faults"));
    work.series.push(Series::new("duplicate completions"));

    let swept = crate::sweep::sweep_points(intensities, cfg.sweep_threads, |&intensity| {
        run_chaos(cfg, workers, intensity)
    });
    for (&intensity, r) in intensities.iter().zip(swept) {
        assert_eq!(r.lost, 0, "chaos run lost tasks at intensity {intensity}");
        goodput.series[0].push(intensity, r.goodput_tps);
        latency.series[0].push(intensity, r.mean_task_latency_s * 1e3);
        work.series[0].push(intensity, r.stats.retries as f64);
        work.series[1].push(intensity, r.injected_faults as f64);
        work.series[2].push(intensity, (r.completions - r.distinct_done as u64) as f64);
    }
    vec![goodput, latency, work]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        // 20 tasks, small cluster, 4 workers used by callers.
        BenchConfig::paper().with_scale(0.02)
    }

    #[test]
    fn baseline_runs_clean_without_faults() {
        let r = run_chaos(&tiny(), 4, 0.0);
        assert_eq!(r.lost, 0);
        assert_eq!(r.distinct_done as u32, r.tasks);
        assert_eq!(r.injected_faults, 0);
        assert_eq!(r.dead_lettered, 0);
        assert!(r.goodput_tps > 0.0);
    }

    #[test]
    fn full_intensity_degrades_but_loses_nothing() {
        let cfg = tiny();
        let calm = run_chaos(&cfg, 4, 0.0);
        let storm = run_chaos(&cfg, 4, 1.0);
        assert_eq!(storm.lost, 0, "faults must never lose tasks");
        assert!(storm.injected_faults > 0, "plan must actually inject");
        assert!(
            storm.makespan_s > calm.makespan_s,
            "faults must slow the run: {} !> {}",
            storm.makespan_s,
            calm.makespan_s
        );
        assert!(storm.stats.retries > 0, "the resilience layer must work");
    }

    #[test]
    fn chaos_replay_is_deterministic() {
        let cfg = tiny();
        let a = run_chaos(&cfg, 3, 0.7);
        let b = run_chaos(&cfg, 3, 0.7);
        assert_eq!(a, b, "same seed + same plan must replay identically");
    }

    #[test]
    fn figure_sweep_covers_the_ladder() {
        let figs = figure_chaos(&tiny(), 2, &[0.0, 1.0]);
        assert_eq!(figs.len(), 3);
        for f in &figs {
            for s in &f.series {
                assert_eq!(s.points.len(), 2);
            }
        }
        // Goodput at full intensity must not exceed the calm baseline.
        let g = &figs[0].series[0];
        assert!(g.points[1].1 <= g.points[0].1);
    }
}
