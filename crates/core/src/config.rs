//! Benchmark configuration: worker ladders and workload scaling.

use azsim_fabric::{BackendKind, ClusterParams};

/// Configuration shared by every benchmark in the suite.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Master seed (drives data generation and the cluster's randomness).
    pub seed: u64,
    /// Worker-role instance counts to sweep (the paper scales to ~100).
    pub workers: Vec<usize>,
    /// Workload scale: `1.0` reproduces the paper's volumes (100 MB blobs,
    /// 20 000 messages, 500 entities); smaller values shrink everything
    /// proportionally for tests and Criterion benches.
    pub scale: f64,
    /// Cluster model parameters.
    pub params: ClusterParams,
    /// OS threads for sweeping independent ladder points in parallel
    /// (`0` = one per available core, `1` = serial). Does not affect
    /// results: every point is its own simulation with its own seed, and
    /// the sweep engine collects in ladder order.
    pub sweep_threads: usize,
    /// Executor shards per simulation (`1` = the serial coroutine
    /// executor). Does not affect results either: the sharded executor
    /// reproduces the serial `(time, actor, seq)` event history bit for
    /// bit at every shard count, so the emitted figures are identical —
    /// only wall-clock time changes.
    pub shards: u32,
}

impl BenchConfig {
    /// The paper's full-scale configuration.
    pub fn paper() -> Self {
        BenchConfig {
            seed: 2012,
            workers: vec![1, 2, 4, 8, 16, 32, 48, 64, 80, 96],
            scale: 1.0,
            params: ClusterParams::default(),
            sweep_threads: 0,
            shards: 1,
        }
    }

    /// A heavily scaled-down configuration for fast test/bench runs.
    pub fn quick() -> Self {
        BenchConfig {
            seed: 2012,
            workers: vec![1, 4, 16],
            scale: 0.05,
            params: ClusterParams::default(),
            sweep_threads: 0,
            shards: 1,
        }
    }

    /// Override the scale.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// Override the worker ladder.
    pub fn with_workers(mut self, workers: Vec<usize>) -> Self {
        assert!(!workers.is_empty() && workers.iter().all(|&w| w > 0));
        self.workers = workers;
        self
    }

    /// Override the sweep thread count (`0` = auto, `1` = serial).
    pub fn with_sweep_threads(mut self, threads: usize) -> Self {
        self.sweep_threads = threads;
        self
    }

    /// Override the executor shard count (`1` = serial).
    pub fn with_shards(mut self, shards: u32) -> Self {
        assert!(shards >= 1, "need at least one shard");
        self.shards = shards;
        self
    }

    /// Select the storage backend the cluster simulates. The default
    /// (`was`) keeps the paper's golden CSVs; peers swap the declared
    /// cap/throttle/consistency profile while everything else in the
    /// parameter set stays untouched.
    pub fn with_backend(mut self, kind: BackendKind) -> Self {
        self.params.backend = kind.profile();
        self
    }

    /// The backend this configuration runs against.
    pub fn backend(&self) -> BackendKind {
        self.params.backend.kind
    }

    /// Scale an integral workload quantity, never below 1.
    pub fn scaled(&self, full: usize) -> usize {
        ((full as f64 * self.scale).round() as usize).max(1)
    }

    // ---- Algorithm 1 (blob) ----

    /// Number of 1 MB chunks per blob (paper: 100, i.e. a 100 MB blob).
    pub fn blob_chunks(&self) -> usize {
        self.scaled(100)
    }

    /// Chunk size in bytes (paper: 1 MB; not scaled — the chunk size is a
    /// benchmark parameter, not a volume).
    pub fn chunk_bytes(&self) -> usize {
        1 << 20
    }

    /// Upload/download repetitions (paper: 10).
    pub fn blob_repeats(&self) -> usize {
        self.scaled(10).min(10)
    }

    // ---- Algorithm 3 / 4 (queue) ----

    /// Total messages across all workers (paper: 20 000).
    pub fn queue_messages_total(&self) -> usize {
        self.scaled(20_000)
    }

    /// Message sizes swept by Algorithm 3, in bytes (paper: 4–64 KB, with
    /// 64 KB truncating to the 48 KB usable payload).
    pub fn message_sizes(&self) -> Vec<usize> {
        vec![4 << 10, 8 << 10, 16 << 10, 32 << 10, 48 << 10]
    }

    /// Message size used by the shared-queue benchmark (paper: 32 KB).
    pub fn shared_queue_message_size(&self) -> usize {
        32 << 10
    }

    /// Think times swept by Algorithm 4, in whole seconds (paper: 1–5 s).
    pub fn think_times_secs(&self) -> Vec<u64> {
        vec![1, 2, 3, 4, 5]
    }

    // ---- Algorithm 5 (table) ----

    /// Entities per worker (paper: 500, after backing off from 1 000 which
    /// tripped the 500 tx/s partition target).
    pub fn table_entities(&self) -> usize {
        self.scaled(500)
    }

    /// Entity sizes swept by Algorithm 5 (paper: 4–64 KB).
    pub fn entity_sizes(&self) -> Vec<usize> {
        vec![4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10]
    }
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_paper_volumes() {
        let c = BenchConfig::paper();
        assert_eq!(c.blob_chunks(), 100);
        assert_eq!(c.chunk_bytes(), 1 << 20);
        assert_eq!(c.blob_repeats(), 10);
        assert_eq!(c.queue_messages_total(), 20_000);
        assert_eq!(c.table_entities(), 500);
        assert_eq!(c.message_sizes().len(), 5);
        assert_eq!(c.entity_sizes().len(), 5);
        assert!(c.workers.contains(&96));
    }

    #[test]
    fn message_sizes_respect_usable_payload() {
        use azsim_storage::limits::MAX_MESSAGE_PAYLOAD;
        for s in BenchConfig::paper().message_sizes() {
            assert!(s as u64 <= MAX_MESSAGE_PAYLOAD);
        }
    }

    #[test]
    fn scaling_shrinks_but_never_to_zero() {
        let c = BenchConfig::paper().with_scale(0.001);
        assert_eq!(c.blob_chunks(), 1);
        assert_eq!(c.queue_messages_total(), 20);
        assert_eq!(c.table_entities(), 1);
        assert_eq!(c.blob_repeats(), 1);
    }

    #[test]
    fn quick_config_is_small() {
        let c = BenchConfig::quick();
        assert!(c.queue_messages_total() <= 1_000);
        assert!(c.workers.len() <= 4);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        let _ = BenchConfig::paper().with_scale(0.0);
    }

    #[test]
    fn backend_selection_swaps_only_the_profile() {
        let base = BenchConfig::paper();
        assert_eq!(base.backend(), BackendKind::Was);
        let s3 = BenchConfig::paper().with_backend(BackendKind::S3);
        assert_eq!(s3.backend(), BackendKind::S3);
        assert_eq!(s3.params.servers, base.params.servers);
        assert_eq!(s3.params.account_tx_rate, base.params.account_tx_rate);
    }
}
