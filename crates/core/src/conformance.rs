//! Cross-backend conformance: declared semantics, actually enforced.
//!
//! The storage fabric simulates several backends behind one
//! [`BackendProfile`](azsim_fabric::BackendProfile): WAS (the paper's
//! reference), an S3-style peer, a GCS-style peer and a `file://`
//! no-throttle model. Each profile *declares* its semantics — cap scope,
//! throttle shape, listing consistency, per-object update limits — as
//! data. This module is the harness that holds every backend to its own
//! declaration, two ways:
//!
//! 1. **Declared-semantics checks** ([`check_backend`]): a table-driven
//!    suite ([`CHECKS`]) runs the *same* operation sequences against every
//!    backend and asserts what the profile promises:
//!    * throttle rejections carry the declared error variant and escalate
//!      along the declared curve (`SlowDown` doubling for S3, exponential
//!      `ServerBusy` pushback for GCS, hint-floored `ServerBusy` for WAS,
//!      nothing at all for `file://`);
//!    * the cap *scope* matches (partition-scoped for WAS — a fresh queue
//!      is admitted while a hot one is throttled; account-scoped for
//!      S3/GCS — the fresh queue is rejected just the same);
//!    * per-object update limits apply exactly when declared, per object;
//!    * list-after-write visibility lag is bounded by the declared window,
//!      never loses a write, and is monotonic once visible;
//!    * the `figures verify` safety invariants (no acked write lost,
//!      idempotent RMW, poison accounting, read-your-writes at the
//!      declared consistency level) hold under an inert plan.
//!
//! 2. **Differential oracle** ([`history_fingerprint`],
//!    [`divergent_pairs`]): every backend runs one shared divergence
//!    script — a same-instant put burst, a cold-queue scope probe, rapid
//!    same-row updates, fresh-blob listings — and the full observable
//!    history (outcomes, retry hints, completion times, listing contents)
//!    is folded into a fingerprint. Backends whose declarations differ
//!    **must** produce different fingerprints; two runs of the same
//!    backend must produce the same one. A refactor that quietly collapses
//!    two backends into identical behaviour fails here even if every
//!    individual semantics check still passes.
//!
//! Everything is deterministic: fixed virtual times, fixed seeds, and a
//! fixed (FNV-1a) fold, so `tests/conformance_backends.rs` can assert
//! exact divergence sets.

use crate::verify::{run_verify, VerifyConfig};
use azsim_core::SimTime;
use azsim_fabric::{BackendKind, Cluster, ClusterParams, FaultPlan, ThrottleShape};
use azsim_storage::{Entity, EtagCondition, PropValue, StorageError, StorageOk, StorageRequest};
use bytes::Bytes;
use std::time::Duration;

/// One failed conformance check.
#[derive(Clone, Debug)]
pub struct ConformanceFailure {
    /// The backend that broke its declaration.
    pub backend: BackendKind,
    /// Name of the check that failed (see [`CHECKS`]).
    pub check: &'static str,
    /// What the backend did instead.
    pub detail: String,
}

impl std::fmt::Display for ConformanceFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.backend, self.check, self.detail)
    }
}

/// One named conformance check: runs against a backend, `Err` carries
/// what the backend did instead of its declaration.
pub type Check = (&'static str, fn(BackendKind) -> Result<(), String>);

/// The table-driven suite: every check runs against every backend.
pub const CHECKS: &[Check] = &[
    ("throttle-shape-and-scope", check_throttle),
    ("object-update-limit", check_object_update),
    ("list-after-write-visibility", check_visibility),
    ("verify-invariants", check_verify_invariants),
];

/// Run the whole suite against one backend.
pub fn check_backend(kind: BackendKind) -> Vec<ConformanceFailure> {
    CHECKS
        .iter()
        .filter_map(|&(check, f)| {
            f(kind).err().map(|detail| ConformanceFailure {
                backend: kind,
                check,
                detail,
            })
        })
        .collect()
}

/// Run the whole suite against every backend.
pub fn check_all() -> Vec<ConformanceFailure> {
    BackendKind::ALL
        .iter()
        .flat_map(|&k| check_backend(k))
        .collect()
}

// ---------------------------------------------------------------------------
// Shared plumbing.
// ---------------------------------------------------------------------------

fn cluster(kind: BackendKind) -> Cluster {
    Cluster::new(ClusterParams::for_backend(kind.profile()))
}

fn at(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

fn put_msg(queue: &str) -> StorageRequest {
    StorageRequest::PutMessage {
        queue: queue.into(),
        data: Bytes::from_static(&[7u8; 64]),
        ttl: None,
    }
}

fn must<T>(r: Result<T, StorageError>, what: &str) -> Result<T, String> {
    r.map_err(|e| format!("{what} unexpectedly failed: {e}"))
}

// ---------------------------------------------------------------------------
// Check 1 — throttle shape and scope.
// ---------------------------------------------------------------------------

/// Saturate one queue with a same-instant burst, then hold the observed
/// rejections against the profile's declared [`ThrottleShape`] and cap
/// scope.
fn check_throttle(kind: BackendKind) -> Result<(), String> {
    let p = kind.profile();
    let mut c = cluster(kind);
    for q in ["hot", "fresh"] {
        must(
            c.submit(at(0), 0, &StorageRequest::CreateQueue { queue: q.into() })
                .1,
            "create queue",
        )?;
    }

    // Same-instant burst: once the binding bucket is empty, every further
    // submission is a *consecutive* rejection, so curve backends escalate
    // deterministically.
    let t = at(1_000);
    let mut hints: Vec<Duration> = Vec::new();
    let mut slowdowns = 0usize;
    for i in 0..800usize {
        match c.submit(t, i, &put_msg("hot")).1 {
            Ok(_) => {}
            Err(StorageError::SlowDown { retry_after }) => {
                slowdowns += 1;
                hints.push(retry_after);
            }
            Err(StorageError::ServerBusy { retry_after }) => hints.push(retry_after),
            Err(other) => return Err(format!("unexpected rejection variant: {other}")),
        }
        if hints.len() >= 6 {
            break;
        }
    }

    if !p.account_cap && !p.per_partition_caps {
        // `file://` declares no transaction caps anywhere: an 800-put
        // same-instant burst must sail through untouched.
        return if hints.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "backend declares no caps but rejected {} of the burst",
                hints.len()
            ))
        };
    }

    match p.throttle {
        ThrottleShape::RetryAfterHint => {
            if hints.is_empty() {
                return Err("declared caps never engaged in an 800-put burst".into());
            }
            if slowdowns > 0 {
                return Err(format!(
                    "{slowdowns} SlowDown rejections from a backend declaring plain retry hints"
                ));
            }
            let floor = ClusterParams::default().throttle_retry_hint;
            if let Some(h) = hints.iter().find(|&&h| h < floor) {
                return Err(format!(
                    "retry hint {h:?} below the declared floor {floor:?}"
                ));
            }
        }
        ThrottleShape::SlowDownCurve { base, factor, cap } => {
            if slowdowns != hints.len() || hints.is_empty() {
                return Err(format!(
                    "expected every rejection to be SlowDown, got {slowdowns}/{}",
                    hints.len()
                ));
            }
            expect_curve(&hints, base, factor, cap)?;
        }
        ThrottleShape::ExponentialPushback { base, factor, cap } => {
            if slowdowns > 0 || hints.is_empty() {
                return Err(format!(
                    "expected ServerBusy pushback rejections, got {slowdowns} SlowDown / {} total",
                    hints.len()
                ));
            }
            expect_curve(&hints, base, factor, cap)?;
        }
    }

    // Scope probe: with the hot queue saturated, is a *cold* queue still
    // admitted at the same instant?
    let fresh = c.submit(t, 9_999, &put_msg("fresh")).1;
    if p.per_partition_caps {
        if let Err(e) = fresh {
            return Err(format!(
                "partition-scoped backend rejected a cold queue ({e}) while the hot one throttled"
            ));
        }
    } else if fresh.is_ok() {
        return Err(
            "account-scoped backend admitted a cold queue while the account was saturated".into(),
        );
    }
    Ok(())
}

/// Consecutive rejections must follow `base * factor^k`, capped.
fn expect_curve(
    hints: &[Duration],
    base: Duration,
    factor: u32,
    cap: Duration,
) -> Result<(), String> {
    for (k, &h) in hints.iter().enumerate() {
        let expected = base
            .saturating_mul(factor.saturating_pow(k.min(30) as u32))
            .min(cap);
        if h != expected {
            return Err(format!(
                "rejection #{k} hinted {h:?}, declared curve says {expected:?}"
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Check 2 — per-object update limits.
// ---------------------------------------------------------------------------

/// Rapid same-row updates: limited (per object, with declared pushback)
/// exactly when the profile declares an update rate; unlimited otherwise.
fn check_object_update(kind: BackendKind) -> Result<(), String> {
    let p = kind.profile();
    let mut c = cluster(kind);
    must(
        c.submit(at(0), 0, &StorageRequest::CreateTable { table: "t".into() })
            .1,
        "create table",
    )?;
    let entity = |rk: &str, v: i64| Entity::new("p", rk).with("v", PropValue::I64(v));
    for rk in ["r1", "r2"] {
        must(
            c.submit(
                at(100),
                0,
                &StorageRequest::InsertEntity {
                    table: "t".into(),
                    entity: entity(rk, 0),
                },
            )
            .1,
            "insert entity",
        )?;
    }
    let update = |rk: &str, v: i64| StorageRequest::UpdateEntity {
        table: "t".into(),
        entity: entity(rk, v),
        condition: EtagCondition::Any,
    };

    must(c.submit(at(5_000), 0, &update("r1", 1)).1, "first update")?;
    let second = c.submit(at(5_000), 0, &update("r1", 2)).1;
    match p.object_update_rate {
        None => {
            if let Err(e) = second {
                return Err(format!(
                    "backend declares no per-object update limit but rejected a rapid update: {e}"
                ));
            }
        }
        Some(_) => {
            match second {
                Err(StorageError::ServerBusy { .. }) => {}
                other => {
                    return Err(format!(
                        "declared per-object limit did not engage on a rapid update: {other:?}"
                    ))
                }
            }
            // The limit is per *object*: a sibling row is untouched.
            must(
                c.submit(at(5_000), 0, &update("r2", 1)).1,
                "sibling-row update under a per-object limit",
            )?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Check 3 — list-after-write visibility.
// ---------------------------------------------------------------------------

const VISIBILITY_BLOBS: usize = 16;

fn list_names(c: &mut Cluster, t: SimTime) -> Result<Vec<String>, String> {
    match c
        .submit(
            t,
            999,
            &StorageRequest::ListBlobs {
                container: "cc".into(),
            },
        )
        .1
    {
        Ok(StorageOk::Names(names)) => Ok(names),
        other => Err(format!("listing failed: {other:?}")),
    }
}

/// Freshly committed blobs may lag a listing by at most the declared
/// window; visibility is monotonic and no write is ever lost. Backends
/// declaring no window must list synchronously.
fn check_visibility(kind: BackendKind) -> Result<(), String> {
    let p = kind.profile();
    let mut c = cluster(kind);
    must(
        c.submit(
            at(0),
            0,
            &StorageRequest::CreateContainer {
                container: "cc".into(),
            },
        )
        .1,
        "create container",
    )?;
    let mut done_max = at(1_000);
    for i in 0..VISIBILITY_BLOBS {
        let (done, r) = c.submit(
            at(1_000),
            i,
            &StorageRequest::UploadBlockBlob {
                container: "cc".into(),
                blob: format!("b{i:02}"),
                data: Bytes::from(vec![3u8; 2_048]),
            },
        );
        must(r, "upload blob")?;
        done_max = done_max.max(done);
    }

    match p.list_visibility_window {
        None => {
            // Strong listing: every committed blob is visible immediately.
            let now = list_names(&mut c, done_max)?;
            if now.len() != VISIBILITY_BLOBS {
                return Err(format!(
                    "backend declares synchronous listings but showed {}/{VISIBILITY_BLOBS} \
                     fresh blobs",
                    now.len()
                ));
            }
        }
        Some(window) => {
            // Monotonic: each later listing contains every earlier one.
            let steps = [done_max, done_max + window.mul_f64(0.5), done_max + window];
            let mut prev: Vec<String> = Vec::new();
            for t in steps {
                let cur = list_names(&mut c, t)?;
                if !prev.iter().all(|b| cur.contains(b)) {
                    return Err(format!(
                        "visibility regressed: {prev:?} at an earlier instant, {cur:?} later"
                    ));
                }
                prev = cur;
            }
            // Bounded: at commit + window everything must be visible —
            // the declared window is a guarantee, not a suggestion.
            if prev.len() != VISIBILITY_BLOBS {
                return Err(format!(
                    "{} of {VISIBILITY_BLOBS} blobs still hidden after the declared \
                     {window:?} window",
                    VISIBILITY_BLOBS - prev.len()
                ));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Check 4 — the verify suite's safety invariants.
// ---------------------------------------------------------------------------

/// The `figures verify` invariants (I1–I5) hold on every backend under an
/// inert fault plan, with read-your-writes checked at the backend's
/// declared consistency level.
fn check_verify_invariants(kind: BackendKind) -> Result<(), String> {
    let cfg = VerifyConfig {
        workers: 2,
        items: 10,
        increments: 4,
        poison: 1,
        backend: kind,
        ..VerifyConfig::quick(true)
    };
    let out = run_verify(&cfg, &FaultPlan::default());
    if out.violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "invariant violations under an inert plan: {:?}",
            out.violations
        ))
    }
}

// ---------------------------------------------------------------------------
// Differential oracle.
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn fold_result(h: &mut u64, done: SimTime, r: &Result<StorageOk, StorageError>) {
    fold(h, &done.as_nanos().to_le_bytes());
    match r {
        Ok(StorageOk::Names(names)) => {
            fold(h, &[1]);
            for n in names {
                fold(h, n.as_bytes());
                fold(h, &[0xff]);
            }
        }
        Ok(_) => fold(h, &[2]),
        Err(StorageError::ServerBusy { retry_after }) => {
            fold(h, &[3]);
            fold(h, &(retry_after.as_nanos() as u64).to_le_bytes());
        }
        Err(StorageError::SlowDown { retry_after }) => {
            fold(h, &[4]);
            fold(h, &(retry_after.as_nanos() as u64).to_le_bytes());
        }
        Err(_) => fold(h, &[5]),
    }
}

/// Run the shared divergence script against one backend and fingerprint
/// the complete observable history — outcome variants, retry hints,
/// completion times and listing contents of every operation, in order.
///
/// The script deliberately crosses every axis on which the profiles
/// differ: a 400-put same-instant burst (engages WAS's per-queue cap, the
/// S3/GCS account caps at their different rates and shapes, and nothing
/// on `file://`), a cold-queue probe at the saturated instant (partition
/// vs account scope), rapid same-row updates (GCS's per-object limit),
/// and listings right after fresh uploads (S3's eventual visibility).
pub fn history_fingerprint(kind: BackendKind, seed: u64) -> u64 {
    let mut params = ClusterParams::for_backend(kind.profile());
    params.seed = seed;
    let mut c = Cluster::new(params);
    let mut h = FNV_OFFSET ^ seed;
    let mut run = |c: &mut Cluster, t: SimTime, actor: usize, req: &StorageRequest| {
        let (done, r) = c.submit(t, actor, req);
        fold_result(&mut h, done, &r);
    };

    for q in ["hot", "fresh"] {
        run(
            &mut c,
            at(0),
            0,
            &StorageRequest::CreateQueue { queue: q.into() },
        );
    }
    // Axis 1: same-instant burst — rejection onset, variant and curve.
    for i in 0..400usize {
        run(&mut c, at(1_000), i, &put_msg("hot"));
    }
    // Axis 2: cap scope — is a cold queue admitted at the hot instant?
    run(&mut c, at(1_000), 401, &put_msg("fresh"));

    // Axis 3: per-object update limits.
    run(
        &mut c,
        at(0),
        0,
        &StorageRequest::CreateTable { table: "t".into() },
    );
    let entity = |v: i64| Entity::new("p", "r").with("v", PropValue::I64(v));
    run(
        &mut c,
        at(100),
        0,
        &StorageRequest::InsertEntity {
            table: "t".into(),
            entity: entity(0),
        },
    );
    for v in 1..=4i64 {
        run(
            &mut c,
            at(5_000),
            0,
            &StorageRequest::UpdateEntity {
                table: "t".into(),
                entity: entity(v),
                condition: EtagCondition::Any,
            },
        );
    }

    // Axis 4: list-after-write visibility.
    run(
        &mut c,
        at(0),
        0,
        &StorageRequest::CreateContainer {
            container: "cc".into(),
        },
    );
    let mut done_max = at(8_000);
    for i in 0..8usize {
        let (done, r) = c.submit(
            at(8_000),
            i,
            &StorageRequest::UploadBlockBlob {
                container: "cc".into(),
                blob: format!("b{i}"),
                data: Bytes::from(vec![5u8; 1_024]),
            },
        );
        fold_result(&mut h, done, &r);
        done_max = done_max.max(done);
    }
    for t in [done_max, done_max + Duration::from_secs(3)] {
        let (done, r) = c.submit(
            t,
            999,
            &StorageRequest::ListBlobs {
                container: "cc".into(),
            },
        );
        fold_result(&mut h, done, &r);
    }
    h
}

/// All ordered backend pairs whose fingerprints differ under `seed`.
/// Every pair of *distinct* backends is expected to appear: their
/// declarations differ, so their observable histories must too.
pub fn divergent_pairs(seed: u64) -> Vec<(BackendKind, BackendKind)> {
    let prints: Vec<(BackendKind, u64)> = BackendKind::ALL
        .iter()
        .map(|&k| (k, history_fingerprint(k, seed)))
        .collect();
    let mut out = Vec::new();
    for (i, &(a, ha)) in prints.iter().enumerate() {
        for &(b, hb) in &prints[i + 1..] {
            if ha != hb {
                out.push((a, b));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_deterministic() {
        for k in BackendKind::ALL {
            assert_eq!(
                history_fingerprint(k, 2012),
                history_fingerprint(k, 2012),
                "{k} must fingerprint identically run to run"
            );
        }
    }

    #[test]
    fn was_reference_passes_every_check() {
        let failures = check_backend(BackendKind::Was);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn seed_perturbs_the_fingerprint_stream() {
        // The fold is seeded, so fingerprints from different seeds never
        // collide by construction — a guard against accidentally hashing
        // nothing.
        assert_ne!(
            history_fingerprint(BackendKind::S3, 1),
            history_fingerprint(BackendKind::S3, 2)
        );
    }
}
