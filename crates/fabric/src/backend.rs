//! Storage-backend abstraction: capabilities, consistency and throttle
//! model as *data*.
//!
//! The cluster pipeline (NICs, FIFO partition servers, replica sync) is
//! shared across providers; what differs between clouds is the *policy*
//! layered on top — which documented caps exist, what shape the throttle
//! signal takes, and how quickly writes become visible to listings. A
//! [`BackendProfile`] captures exactly that policy surface, so one
//! `Cluster` reproduces Windows Azure Storage (the paper's subject, and
//! the reference implementation) or an S3-/GCS-style peer by swapping a
//! value, not a code path.
//!
//! Declared semantics per backend:
//!
//! | backend | partition caps | account cap | throttle shape | list-after-write | read staleness |
//! |---------|----------------|-------------|----------------|------------------|----------------|
//! | `was`   | 500 msg/s per queue, 500 entities/s per partition | 5 000 tx/s | `ServerBusy` + retry hint floor | immediate | none (strong) |
//! | `s3`    | none           | 3 500 tx/s  | `503 SlowDown`, doubling curve 100 ms → 5 s | bounded window ≤ 2 s | ≤ 2 s |
//! | `gcs`   | none           | 1 000 tx/s  | `ServerBusy`, exponential pushback 400 ms → 32 s | immediate | none (strong) |
//! | `file`  | none           | none        | never throttles | immediate | none (strong) |
//!
//! Every row of this table is *asserted*, not just modeled: the
//! `azurebench::conformance` suite runs identical op sequences against all
//! four backends and fails if any declared property (or any declared
//! *difference*) is unobservable.

use std::time::Duration;

/// Which simulated storage provider a cluster reproduces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BackendKind {
    /// Windows Azure Storage — the paper's subject and the reference
    /// implementation; the 15 committed golden CSVs are this backend's
    /// output.
    Was,
    /// S3-style peer: eventual list-after-write with a bounded visibility
    /// window, no per-partition caps, `503 SlowDown` throttle curve.
    S3,
    /// GCS-style peer: per-object update rate limit with exponential
    /// pushback, no per-partition caps.
    Gcs,
    /// `file://` — a local-filesystem backend with no service limits at
    /// all; the simulated profile mirrors the live tempdir implementation
    /// in `azsim-client`.
    File,
}

impl BackendKind {
    /// All backends, in canonical order (CSV suffixes, CI matrix, …).
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Was,
        BackendKind::S3,
        BackendKind::Gcs,
        BackendKind::File,
    ];

    /// Stable lowercase name used in CLI flags and file suffixes.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Was => "was",
            BackendKind::S3 => "s3",
            BackendKind::Gcs => "gcs",
            BackendKind::File => "file",
        }
    }

    /// Parse a CLI token (accepts the `file://` spelling too).
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "was" | "azure" => Some(BackendKind::Was),
            "s3" => Some(BackendKind::S3),
            "gcs" => Some(BackendKind::Gcs),
            "file" | "file://" => Some(BackendKind::File),
            _ => None,
        }
    }

    /// The declared-semantics profile for this backend.
    pub fn profile(self) -> BackendProfile {
        match self {
            BackendKind::Was => BackendProfile::was(),
            BackendKind::S3 => BackendProfile::s3(),
            BackendKind::Gcs => BackendProfile::gcs(),
            BackendKind::File => BackendProfile::file(),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Shape of the throttle signal a backend returns when a cap engages.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ThrottleShape {
    /// WAS: `ServerBusy` whose hint is the token bucket's computed deficit,
    /// floored at the account's coarse `Retry-After` (1 s by default).
    RetryAfterHint,
    /// S3: `503 SlowDown` whose hint doubles per *consecutive* rejection —
    /// `base`, `base*factor`, `base*factor²`, … capped at `cap` — and
    /// resets as soon as a request is admitted.
    SlowDownCurve {
        /// First rejection's hint.
        base: Duration,
        /// Growth per consecutive rejection.
        factor: u32,
        /// Upper bound on the hint.
        cap: Duration,
    },
    /// GCS: `ServerBusy` with the same exponential escalation, tracked
    /// per limited object (and per account for the transaction cap).
    ExponentialPushback {
        /// First rejection's hint.
        base: Duration,
        /// Growth per consecutive rejection.
        factor: u32,
        /// Upper bound on the hint.
        cap: Duration,
    },
}

impl ThrottleShape {
    /// The hint after `consecutive` rejections in a row (1-based) given the
    /// bucket's computed deficit `wait` and the configured floor `hint`.
    pub fn retry_after(self, consecutive: u32, wait: Duration, hint: Duration) -> Duration {
        match self {
            ThrottleShape::RetryAfterHint => wait.max(hint),
            ThrottleShape::SlowDownCurve { base, factor, cap }
            | ThrottleShape::ExponentialPushback { base, factor, cap } => {
                let n = consecutive.saturating_sub(1).min(30);
                base.saturating_mul(factor.saturating_pow(n)).min(cap)
            }
        }
    }
}

/// A backend's declared semantics: which caps exist, how throttles look,
/// and how quickly writes become visible. Plain data — the cluster
/// interprets it, the conformance suite asserts it.
#[derive(Clone, Copy, Debug)]
pub struct BackendProfile {
    /// Which provider this profile describes.
    pub kind: BackendKind,
    /// Whether the per-queue / per-table-partition rate buckets exist
    /// (WAS's documented 500 ops/s scalability targets).
    pub per_partition_caps: bool,
    /// Whether an account-wide transaction cap exists at all.
    pub account_cap: bool,
    /// Override for the account transactions/s rate (falls back to
    /// `ClusterParams::account_tx_rate` when `None`).
    pub account_rate_override: Option<f64>,
    /// Per-object mutation rate limit (GCS's documented one update per
    /// second per object), or `None` for no such limit.
    pub object_update_rate: Option<f64>,
    /// Shape of every throttle signal this backend emits.
    pub throttle: ThrottleShape,
    /// Eventual list-after-write: a new blob may stay invisible to
    /// `ListBlobs` for up to this long after its creating write is acked.
    /// `None` declares immediate (read-after-write) listing.
    pub list_visibility_window: Option<Duration>,
    /// Declared bound on read-your-writes staleness; `Duration::ZERO`
    /// declares strong reads. Verification relaxes (never skips) the
    /// read-your-writes invariant to this bound.
    pub read_staleness: Duration,
}

impl BackendProfile {
    /// Windows Azure Storage — exactly the behaviour the golden CSVs pin.
    pub fn was() -> Self {
        BackendProfile {
            kind: BackendKind::Was,
            per_partition_caps: true,
            account_cap: true,
            account_rate_override: None,
            object_update_rate: None,
            throttle: ThrottleShape::RetryAfterHint,
            list_visibility_window: None,
            read_staleness: Duration::ZERO,
        }
    }

    /// S3-style: eventual listing, request-rate cap per prefix modeled at
    /// the account scope (3 500 mutating requests/s), `SlowDown` curve.
    pub fn s3() -> Self {
        BackendProfile {
            kind: BackendKind::S3,
            per_partition_caps: false,
            account_cap: true,
            account_rate_override: Some(3_500.0),
            object_update_rate: None,
            throttle: ThrottleShape::SlowDownCurve {
                base: Duration::from_millis(100),
                factor: 2,
                cap: Duration::from_secs(5),
            },
            list_visibility_window: Some(Duration::from_secs(2)),
            read_staleness: Duration::from_secs(2),
        }
    }

    /// GCS-style: strong listing, one update per second per object with
    /// exponential pushback, 1 000 requests/s account cap.
    pub fn gcs() -> Self {
        BackendProfile {
            kind: BackendKind::Gcs,
            per_partition_caps: false,
            account_cap: true,
            account_rate_override: Some(1_000.0),
            object_update_rate: Some(1.0),
            throttle: ThrottleShape::ExponentialPushback {
                base: Duration::from_millis(400),
                factor: 2,
                cap: Duration::from_secs(32),
            },
            list_visibility_window: None,
            read_staleness: Duration::ZERO,
        }
    }

    /// Local filesystem: no service limits, never throttles, strong
    /// everything.
    pub fn file() -> Self {
        BackendProfile {
            kind: BackendKind::File,
            per_partition_caps: false,
            account_cap: false,
            account_rate_override: None,
            object_update_rate: None,
            throttle: ThrottleShape::RetryAfterHint,
            list_visibility_window: None,
            read_staleness: Duration::ZERO,
        }
    }
}

impl Default for BackendProfile {
    fn default() -> Self {
        BackendProfile::was()
    }
}

/// Compile-time view of a backend: a named profile. The trait exists so
/// generic harness code (conformance tables, documentation generators)
/// can enumerate backends as *types*; runtime selection goes through
/// [`BackendKind`] / [`BackendProfile`] values.
pub trait StorageBackend {
    /// Stable lowercase backend name.
    const NAME: &'static str;

    /// The backend's declared-semantics profile.
    fn profile() -> BackendProfile;
}

/// Marker type for the WAS reference backend.
pub struct Was;
/// Marker type for the S3-style backend.
pub struct S3Style;
/// Marker type for the GCS-style backend.
pub struct GcsStyle;
/// Marker type for the `file://` backend.
pub struct FileLocal;

impl StorageBackend for Was {
    const NAME: &'static str = "was";
    fn profile() -> BackendProfile {
        BackendProfile::was()
    }
}

impl StorageBackend for S3Style {
    const NAME: &'static str = "s3";
    fn profile() -> BackendProfile {
        BackendProfile::s3()
    }
}

impl StorageBackend for GcsStyle {
    const NAME: &'static str = "gcs";
    fn profile() -> BackendProfile {
        BackendProfile::gcs()
    }
}

impl StorageBackend for FileLocal {
    const NAME: &'static str = "file";
    fn profile() -> BackendProfile {
        BackendProfile::file()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_every_name() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::parse("file://"), Some(BackendKind::File));
        assert_eq!(BackendKind::parse("azure"), Some(BackendKind::Was));
        assert_eq!(BackendKind::parse("swift"), None);
    }

    #[test]
    fn was_profile_is_the_reference() {
        let p = BackendProfile::default();
        assert_eq!(p.kind, BackendKind::Was);
        assert!(p.per_partition_caps);
        assert!(p.account_cap);
        assert_eq!(p.account_rate_override, None);
        assert_eq!(p.object_update_rate, None);
        assert_eq!(p.throttle, ThrottleShape::RetryAfterHint);
        assert_eq!(p.list_visibility_window, None);
        assert_eq!(p.read_staleness, Duration::ZERO);
    }

    #[test]
    fn peers_declare_their_documented_deviations() {
        let s3 = BackendProfile::s3();
        assert!(!s3.per_partition_caps);
        assert!(s3.list_visibility_window.is_some());
        assert!(matches!(s3.throttle, ThrottleShape::SlowDownCurve { .. }));

        let gcs = BackendProfile::gcs();
        assert_eq!(gcs.object_update_rate, Some(1.0));
        assert!(matches!(
            gcs.throttle,
            ThrottleShape::ExponentialPushback { .. }
        ));
        assert_eq!(gcs.list_visibility_window, None);

        let file = BackendProfile::file();
        assert!(!file.account_cap);
        assert!(!file.per_partition_caps);
    }

    #[test]
    fn slowdown_curve_doubles_and_caps() {
        let shape = ThrottleShape::SlowDownCurve {
            base: Duration::from_millis(100),
            factor: 2,
            cap: Duration::from_secs(5),
        };
        let w = Duration::ZERO;
        let h = Duration::from_secs(1);
        assert_eq!(shape.retry_after(1, w, h), Duration::from_millis(100));
        assert_eq!(shape.retry_after(2, w, h), Duration::from_millis(200));
        assert_eq!(shape.retry_after(3, w, h), Duration::from_millis(400));
        assert_eq!(shape.retry_after(10, w, h), Duration::from_secs(5));
        // Escalation count far beyond the cap must not overflow.
        assert_eq!(shape.retry_after(u32::MAX, w, h), Duration::from_secs(5));
    }

    #[test]
    fn retry_after_hint_shape_matches_was_semantics() {
        let shape = ThrottleShape::RetryAfterHint;
        let hint = Duration::from_secs(1);
        // Hint is a floor …
        assert_eq!(shape.retry_after(1, Duration::from_millis(10), hint), hint);
        // … not a cap.
        assert_eq!(
            shape.retry_after(5, Duration::from_secs(3), hint),
            Duration::from_secs(3)
        );
    }

    #[test]
    fn typed_backends_agree_with_kinds() {
        assert_eq!(Was::NAME, BackendKind::Was.name());
        assert_eq!(S3Style::profile().kind, BackendKind::S3);
        assert_eq!(GcsStyle::profile().kind, BackendKind::Gcs);
        assert_eq!(FileLocal::profile().kind, BackendKind::File);
    }
}
