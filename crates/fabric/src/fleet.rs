//! Multi-account fleet: the partition-separable model for sharded runs.
//!
//! A single [`Cluster`] is one storage account, and inside an account every
//! request crosses the shared account pipes and transaction bucket — fully
//! coupled, impossible to split. Across accounts the paper's architecture
//! shares nothing below the load balancer: account `A`'s partitions,
//! pipes and throttles never touch account `B`'s. A [`Fleet`] models `T`
//! tenants as `T` independent clusters and exposes the account boundary as
//! the **virtual partition** boundary, which is exactly what the sharded
//! executor needs:
//!
//! * `partition_of` a [`FleetReq`] is its tenant id — a pure function of
//!   the request.
//! * A call to a foreign tenant pays the front-end one-way leg (half the
//!   modeled front-end RTT) in each direction — the cost of leaving your
//!   co-located account — and that same leg is the conservative lookahead
//!   between shards.
//! * `split` hands each partition its own cluster; no state is shared, so
//!   parallel execution is exact, not approximate.

use crate::cluster::Cluster;
use crate::params::ClusterParams;
use azsim_core::rng::derive_seed;
use azsim_core::runtime::{ActorId, Model};
use azsim_core::shard::{ShardPlan, ShardableModel};
use azsim_core::SimTime;
use azsim_storage::{StorageOk, StorageRequest, StorageResult};
use std::time::Duration;

/// A request addressed to one tenant of the fleet.
#[derive(Clone, Debug)]
pub struct FleetReq {
    /// Target tenant (storage account), `0..tenants`.
    pub tenant: u32,
    /// The storage operation to run on that tenant's cluster.
    pub req: StorageRequest,
}

/// `T` independent storage accounts, one [`Cluster`] each.
///
/// After a `split`, a sub-fleet holds a contiguous run of tenants starting
/// at `first` (the executor only ever routes a tenant's requests to the
/// sub-fleet owning it).
pub struct Fleet {
    tenants: Vec<Cluster>,
    first: u32,
    /// One-way front-end leg paid by cross-tenant calls (= lookahead hop).
    hop: Duration,
}

impl Fleet {
    /// Build `tenants` independent clusters from shared parameters. Each
    /// tenant's cluster gets its own derived seed so queue fuzz and fault
    /// draws stay uncorrelated across accounts.
    pub fn new(params: ClusterParams, tenants: u32) -> Self {
        assert!(tenants >= 1, "a fleet needs at least one tenant");
        let hop = params.frontend_rtt / 2;
        let tenants = (0..tenants)
            .map(|t| {
                let mut p = params.clone();
                p.seed = derive_seed(params.seed, t as u64);
                Cluster::new(p)
            })
            .collect();
        Fleet {
            tenants,
            first: 0,
            hop,
        }
    }

    /// Number of tenants in this (sub-)fleet.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the fleet has no tenants (never true for a built fleet).
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The one-way cross-tenant network leg, also the lookahead hop.
    pub fn hop(&self) -> Duration {
        self.hop
    }

    /// Tenant `t`'s cluster (global tenant id).
    pub fn tenant(&self, t: u32) -> &Cluster {
        &self.tenants[(t - self.first) as usize]
    }

    /// Mutable access to tenant `t`'s cluster (global tenant id) — for
    /// pre-run configuration such as fault plans or NIC overrides.
    pub fn tenant_mut(&mut self, t: u32) -> &mut Cluster {
        &mut self.tenants[(t - self.first) as usize]
    }

    /// Iterate `(tenant id, cluster)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Cluster)> {
        self.tenants
            .iter()
            .enumerate()
            .map(|(i, c)| (self.first + i as u32, c))
    }

    /// Completed operations summed over every tenant.
    pub fn total_completed(&self) -> u64 {
        self.tenants
            .iter()
            .map(|c| c.metrics().total_completed())
            .sum()
    }

    /// Throttled operations summed over every tenant.
    pub fn total_throttled(&self) -> u64 {
        self.tenants
            .iter()
            .map(|c| c.metrics().total_throttled())
            .sum()
    }

    /// The canonical plan for this fleet: `workers_per_tenant` actors homed
    /// on each tenant (actor `a` → tenant `a % tenants`, the executor's
    /// striped layout), partitions dealt over `shards` shards, and the
    /// front-end leg as the lookahead hop.
    pub fn plan(&self, workers_per_tenant: usize, shards: u32) -> ShardPlan {
        ShardPlan::striped(
            workers_per_tenant * self.tenants.len(),
            self.tenants.len() as u32,
            shards,
        )
        .with_hop(self.hop)
    }
}

impl Model for Fleet {
    type Req = FleetReq;
    type Resp = StorageResult<StorageOk>;

    fn handle(
        &mut self,
        now: SimTime,
        actor: ActorId,
        req: FleetReq,
    ) -> (SimTime, StorageResult<StorageOk>) {
        let t = (req.tenant - self.first) as usize;
        self.tenants[t].handle(now, actor, req.req)
    }

    fn partition_of(&self, req: &FleetReq) -> Option<u32> {
        Some(req.tenant)
    }
}

impl ShardableModel for Fleet {
    fn split(self, partitions: u32) -> Vec<Self> {
        assert_eq!(
            partitions as usize,
            self.tenants.len(),
            "fleet plans must use one partition per tenant"
        );
        let hop = self.hop;
        let base = self.first;
        self.tenants
            .into_iter()
            .enumerate()
            .map(|(i, c)| Fleet {
                tenants: vec![c],
                first: base + i as u32,
                hop,
            })
            .collect()
    }

    fn merge(parts: Vec<Self>) -> Self {
        let hop = parts[0].hop;
        let first = parts[0].first;
        let mut tenants = Vec::with_capacity(parts.len());
        for (i, part) in parts.into_iter().enumerate() {
            assert_eq!(
                part.first as usize,
                first as usize + i,
                "fleet parts merged out of tenant order"
            );
            tenants.extend(part.tenants);
        }
        Fleet {
            tenants,
            first,
            hop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use azsim_core::{ShardedSimulation, Simulation};
    use bytes::Bytes;

    fn put(queue: &str, bytes: usize) -> StorageRequest {
        StorageRequest::PutMessage {
            queue: queue.into(),
            data: Bytes::from(vec![7u8; bytes]),
            ttl: None,
        }
    }

    /// Workers mostly hit their home tenant but spill every fourth op to a
    /// neighbour, exercising the cross-partition legs.
    async fn worker(ctx: azsim_core::ActorCtx<Fleet>, tenants: u32, ops: u32) -> (u64, u64) {
        let home = ctx.id().0 as u32 % tenants;
        for tenant in [home, (home + 1) % tenants] {
            ctx.call(FleetReq {
                tenant,
                req: StorageRequest::CreateQueue {
                    queue: format!("q{}", ctx.id().0),
                },
            })
            .await
            .expect("create queue");
        }
        let mut ok = 0u64;
        let mut end = 0u64;
        for i in 0..ops {
            let tenant = if i % 4 == 3 {
                (home + 1) % tenants
            } else {
                home
            };
            let r = ctx
                .call(FleetReq {
                    tenant,
                    req: put(&format!("q{}", ctx.id().0), 256),
                })
                .await;
            if r.is_ok() {
                ok += 1;
            }
            end = ctx.now().as_nanos();
        }
        (ok, end)
    }

    #[test]
    fn fleet_tenants_have_uncorrelated_seeds() {
        let f = Fleet::new(ClusterParams::default(), 3);
        let seeds: Vec<u64> = f.iter().map(|(_, c)| c.params().seed).collect();
        assert_eq!(seeds.len(), 3);
        assert!(seeds[0] != seeds[1] && seeds[1] != seeds[2]);
    }

    #[test]
    fn sharded_fleet_matches_serial_bit_for_bit() {
        let tenants = 4u32;
        let run = |shards: u32| {
            let fleet = Fleet::new(ClusterParams::default(), tenants);
            let plan = fleet.plan(2, shards);
            ShardedSimulation::new(fleet, 42, plan)
                .record_history()
                .run_workers(|ctx| worker(ctx, tenants, 12))
        };
        let fleet = Fleet::new(ClusterParams::default(), tenants);
        let plan = fleet.plan(2, 1);
        let serial = Simulation::new(fleet, 42)
            .with_plan(&plan)
            .record_history()
            .run_workers(plan.actors(), |ctx| worker(ctx, tenants, 12));
        for shards in [1u32, 2, 4] {
            let shd = run(shards);
            assert_eq!(
                serial.results, shd.results,
                "results diverged at {shards} shards"
            );
            assert_eq!(serial.end_time, shd.end_time);
            assert_eq!(serial.history_hash, shd.history_hash);
            assert_eq!(serial.model.total_completed(), shd.model.total_completed());
            for t in 0..tenants {
                assert_eq!(
                    serial.model.tenant(t).metrics().total_completed(),
                    shd.model.tenant(t).metrics().total_completed(),
                    "tenant {t} metrics diverged at {shards} shards"
                );
            }
        }
        // The spill pattern really does cross tenants.
        assert!(serial.model.total_completed() > 0);
    }

    #[test]
    fn cross_tenant_calls_pay_the_frontend_leg() {
        // One worker runs create+put against a foreign tenant vs its home
        // tenant: each foreign call pays the one-way leg both directions,
        // so the pair finishes exactly 2 ops * 2 legs * hop later.
        let each = |tenant: u32| -> u64 {
            let fleet = Fleet::new(ClusterParams::default(), 2);
            let plan = fleet.plan(1, 1);
            let rep =
                Simulation::new(fleet, 7)
                    .with_plan(&plan)
                    .run_workers(2, move |ctx| async move {
                        if ctx.id().0 == 0 {
                            ctx.call(FleetReq {
                                tenant,
                                req: StorageRequest::CreateQueue { queue: "q".into() },
                            })
                            .await
                            .expect("create succeeds");
                            ctx.call(FleetReq {
                                tenant,
                                req: put("q", 64),
                            })
                            .await
                            .expect("put succeeds");
                            ctx.now().as_nanos()
                        } else {
                            0
                        }
                    });
            rep.results[0]
        };
        let home = each(0);
        let foreign = each(1);
        let fleet = Fleet::new(ClusterParams::default(), 2);
        let legs = 4 * fleet.hop().as_nanos() as u64;
        assert_eq!(foreign - home, legs, "foreign calls must pay hop each way");
    }
}
