//! Cluster model parameters.
//!
//! Defaults are **calibrated** so the full-scale benchmark harness lands in
//! the neighbourhood of the paper's headline magnitudes (60 MB/s page-blob
//! upload ceiling, ~21 MB/s block-blob upload, ~165 MB/s aggregate blob
//! download at 96 workers, ~104 MB/s sequential block-wise and ~71 MB/s
//! random page-wise download, queue Peek < Put < Get with tens of
//! milliseconds per op). `EXPERIMENTS.md` records the resulting
//! paper-vs-measured comparison; the ablation benches toggle individual
//! mechanisms.

use crate::backend::BackendProfile;
use azsim_storage::limits;
use std::time::Duration;

/// All tunable constants of the cluster latency model.
#[derive(Clone, Debug)]
pub struct ClusterParams {
    /// Number of partition servers in the fleet.
    pub servers: usize,
    /// Master seed for every deterministic random stream in the cluster.
    pub seed: u64,
    /// Probability that a dequeue skips the oldest visible message
    /// (models "FIFO is not guaranteed").
    pub fifo_fuzz: f64,

    // ---- network ----
    /// Load balancer + front-end + datacenter round trip added to every
    /// request.
    pub frontend_rtt: Duration,
    /// Default per-VM NIC bandwidth in bytes/s (a Small instance; override
    /// per actor via [`crate::Cluster::set_actor_nic`]).
    pub default_nic_bandwidth: f64,

    // ---- partition servers ----
    /// Base CPU cost of any request on its partition server.
    pub server_base_service: Duration,
    /// Shared data-path bandwidth of one partition server (all partitions
    /// placed on it share this pipe).
    pub server_bandwidth: f64,

    // ---- replication ----
    /// Extra latency for synchronizing a write across the two secondary
    /// replicas (strong consistency).
    pub replica_sync: Duration,
    /// Extra latency for propagating per-message visibility state on
    /// `GetMessage` (on top of `replica_sync`).
    pub state_sync: Duration,

    // ---- blob ----
    /// Per-blob write pipe: the documented 60 MB/s single-blob target.
    pub blob_write_bandwidth: f64,
    /// Per-blob read ceiling (replica/cache-assisted; higher than the write
    /// target, which is how the paper measures 165 MB/s aggregate download
    /// from one blob).
    pub blob_read_bandwidth: f64,
    /// Per-request overhead of `PutPage` (small: pages index directly).
    pub page_write_overhead: Duration,
    /// Per-request overhead of `PutBlock` (staging + block-index work; this
    /// is what caps block-blob upload near 21 MB/s for 1 MB blocks).
    pub block_write_overhead: Duration,
    /// Overhead of `PutBlockList` (commit).
    pub block_commit_overhead: Duration,
    /// Per-request overhead of a sequential `GetBlock`.
    pub get_block_overhead: Duration,
    /// Per-request overhead of a random-offset `GetPage` (page locate).
    pub get_page_overhead: Duration,
    /// Setup overhead of a whole-blob streaming download.
    pub download_overhead: Duration,

    // ---- queue ----
    /// Base service time of queue data-plane operations.
    pub queue_op_service: Duration,
    /// Reproduce the paper's consistently observed 16 KB `GetMessage`
    /// anomaly (Figure 6(c)).
    pub quirk_get16k: bool,
    /// Service-time multiplier applied to `GetMessage` when the payload is
    /// in the 16 KB bucket.
    pub quirk_get16k_factor: f64,

    // ---- table ----
    /// Base service time (client-visible latency component) of table
    /// data-plane operations.
    pub table_op_service: Duration,
    /// Partition-server *occupancy* of one table operation — the slot time
    /// that serializes a partition. Must allow slightly more than the
    /// 500 entities/s scalability target so the documented token bucket
    /// (not raw server saturation) is what callers hit first, as on the
    /// real service.
    pub table_op_occupancy: Duration,
    /// Extra service time of `UpdateEntity` (server-side read-modify-write;
    /// the paper finds update the most expensive table operation).
    pub table_update_extra: Duration,
    /// Extra service time of `DeleteEntity` (tombstone + index update),
    /// keeping point queries the cheapest table operation as the paper
    /// reports.
    pub table_delete_extra: Duration,
    /// Shared table front-end bandwidth for one account. This shared data
    /// path is what degrades 32/64 KB entity workloads beyond ~4 workers in
    /// Figure 8.
    pub table_frontend_bandwidth: f64,

    // ---- documented scalability targets ----
    /// Messages per second a single queue handles before throttling.
    pub queue_rate: f64,
    /// Entities per second a single table partition handles.
    pub partition_rate: f64,
    /// Transactions per second a storage account handles.
    pub account_tx_rate: f64,
    /// Aggregate bandwidth of a storage account (bytes/s).
    pub account_bandwidth: f64,
    /// Burst capacity (in operations) of the rate buckets.
    pub throttle_burst: f64,
    /// Retry hint returned with `ServerBusy`.
    pub throttle_retry_hint: Duration,

    // ---- backend policy ----
    /// Which provider's declared semantics the cluster enforces: cap
    /// structure, throttle shape and listing visibility. The default is
    /// [`BackendProfile::was`], which reproduces Windows Azure Storage
    /// exactly as the committed golden CSVs pin it; the rate fields above
    /// stay authoritative unless the profile overrides or disables them.
    pub backend: BackendProfile,

    // ---- telemetry ----
    /// Virtual-time resolution of the gauge timeline, or `None` (the
    /// default) to keep sampling off entirely. Sampling is passive — it
    /// reads resources through side-effect-free accessors — so enabling it
    /// changes no simulated outcome, only adds recording cost.
    pub timeline_resolution: Option<Duration>,
}

impl Default for ClusterParams {
    fn default() -> Self {
        const MB: f64 = limits::MB as f64;
        ClusterParams {
            servers: 64,
            seed: 42,
            fifo_fuzz: 0.05,

            frontend_rtt: Duration::from_millis(2),
            // A Small VM's 100 Mbit/s NIC.
            default_nic_bandwidth: 12.5 * MB,

            server_base_service: Duration::from_micros(500),
            server_bandwidth: 250.0 * MB,

            replica_sync: Duration::from_millis(6),
            state_sync: Duration::from_millis(10),

            blob_write_bandwidth: 60.0 * MB,
            blob_read_bandwidth: 195.0 * MB,
            page_write_overhead: Duration::from_millis(1),
            block_write_overhead: Duration::from_millis(45),
            block_commit_overhead: Duration::from_millis(20),
            get_block_overhead: Duration::from_micros(8_850),
            get_page_overhead: Duration::from_micros(13_500),
            download_overhead: Duration::from_millis(15),

            queue_op_service: Duration::from_millis(1),
            quirk_get16k: true,
            quirk_get16k_factor: 2.5,

            table_op_service: Duration::from_millis(3),
            table_op_occupancy: Duration::from_micros(1_600),
            table_update_extra: Duration::from_millis(5),
            table_delete_extra: Duration::from_millis(3),
            table_frontend_bandwidth: 22.0 * MB,

            queue_rate: limits::QUEUE_MSGS_PER_SEC,
            partition_rate: limits::PARTITION_ENTITIES_PER_SEC,
            account_tx_rate: limits::ACCOUNT_TX_PER_SEC,
            account_bandwidth: limits::ACCOUNT_BANDWIDTH,
            throttle_burst: 50.0,
            throttle_retry_hint: Duration::from_secs(1),

            backend: BackendProfile::was(),

            timeline_resolution: None,
        }
    }
}

impl ClusterParams {
    /// A parameter set with every throttle effectively disabled — useful
    /// for ablation benches isolating the queueing model from the
    /// documented rate limits.
    pub fn unthrottled() -> Self {
        ClusterParams {
            queue_rate: 1e12,
            partition_rate: 1e12,
            account_tx_rate: 1e12,
            account_bandwidth: 1e15,
            throttle_burst: 1e12,
            ..Self::default()
        }
    }

    /// A parameter set with replication reduced to a single replica (no
    /// sync terms) — the ablation that collapses the paper's
    /// Peek < Put < Get ordering.
    pub fn single_replica() -> Self {
        ClusterParams {
            replica_sync: Duration::ZERO,
            state_sync: Duration::ZERO,
            ..Self::default()
        }
    }

    /// Default parameters with the given backend profile installed.
    pub fn for_backend(profile: BackendProfile) -> Self {
        ClusterParams {
            backend: profile,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_encode_documented_targets() {
        let p = ClusterParams::default();
        assert_eq!(p.queue_rate, 500.0);
        assert_eq!(p.partition_rate, 500.0);
        assert_eq!(p.account_tx_rate, 5_000.0);
        assert_eq!(p.account_bandwidth, 3.0 * limits::GB as f64);
        assert_eq!(p.blob_write_bandwidth, 60.0 * limits::MB as f64);
    }

    #[test]
    fn queue_cost_ordering_is_built_in() {
        // Peek pays neither sync; Put pays replica_sync; Get pays both.
        let p = ClusterParams::default();
        assert!(p.replica_sync > Duration::ZERO);
        assert!(p.state_sync > Duration::ZERO);
    }

    #[test]
    fn ablation_presets() {
        let u = ClusterParams::unthrottled();
        assert!(u.queue_rate > 1e9);
        let s = ClusterParams::single_replica();
        assert_eq!(s.replica_sync, Duration::ZERO);
        assert_eq!(s.state_sync, Duration::ZERO);
        // Non-ablated fields keep their defaults.
        assert_eq!(s.servers, ClusterParams::default().servers);
    }

    #[test]
    fn default_backend_is_was() {
        use crate::backend::BackendKind;
        assert_eq!(ClusterParams::default().backend.kind, BackendKind::Was);
        let p = ClusterParams::for_backend(BackendKind::S3.profile());
        assert_eq!(p.backend.kind, BackendKind::S3);
        assert_eq!(p.servers, ClusterParams::default().servers);
    }
}
