//! Server-side operation accounting.

use azsim_core::stats::OnlineStats;
use azsim_storage::OpClass;

/// Counters for one operation class.
#[derive(Clone, Debug, Default)]
pub struct OpCounter {
    /// Successfully completed operations.
    pub completed: u64,
    /// Operations rejected with `ServerBusy`.
    pub throttled: u64,
    /// Operations that failed with a non-throttle error.
    pub failed: u64,
    /// Payload bytes received from clients.
    pub bytes_up: u64,
    /// Payload bytes sent to clients.
    pub bytes_down: u64,
    /// Server-observed latency of completed operations, in seconds.
    pub latency: OnlineStats,
}

/// Per-class operation accounting for a whole cluster.
///
/// Stored as a fixed array indexed by [`OpClass::index`], so the hot-path
/// `counter_mut` is a bounds-checked array access instead of a hash probe.
/// A bitmask remembers which classes were ever touched, preserving the
/// "`None` until first use" contract of [`ClusterMetrics::counter`].
#[derive(Clone, Debug)]
pub struct ClusterMetrics {
    counters: [OpCounter; OpClass::COUNT],
    touched: u32,
}

const _: () = assert!(OpClass::COUNT <= u32::BITS as usize);

impl Default for ClusterMetrics {
    fn default() -> Self {
        ClusterMetrics {
            counters: std::array::from_fn(|_| OpCounter::default()),
            touched: 0,
        }
    }
}

impl ClusterMetrics {
    /// Fresh metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable counter for a class (marked as seen on first use).
    pub fn counter_mut(&mut self, class: OpClass) -> &mut OpCounter {
        let i = class.index();
        self.touched |= 1 << i;
        &mut self.counters[i]
    }

    /// Counter for a class, if any operation of that class was seen.
    pub fn counter(&self, class: OpClass) -> Option<&OpCounter> {
        let i = class.index();
        (self.touched & (1 << i) != 0).then(|| &self.counters[i])
    }

    /// Total completed operations across classes.
    pub fn total_completed(&self) -> u64 {
        self.counters.iter().map(|c| c.completed).sum()
    }

    /// Total throttled operations across classes.
    pub fn total_throttled(&self) -> u64 {
        self.counters.iter().map(|c| c.throttled).sum()
    }

    /// Total payload bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.bytes_up + c.bytes_down)
            .sum()
    }

    /// Iterate over the `(class, counter)` pairs of classes that were seen,
    /// in fixed [`OpClass::index`] order — no allocation, no re-sorting.
    pub fn iter(&self) -> impl Iterator<Item = (OpClass, &OpCounter)> {
        OpClass::ALL
            .iter()
            .filter(|class| self.touched & (1 << class.index()) != 0)
            .map(|class| (*class, &self.counters[class.index()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = ClusterMetrics::new();
        {
            let c = m.counter_mut(OpClass::QueuePut);
            c.completed += 2;
            c.bytes_up += 100;
            c.latency.record(0.01);
        }
        m.counter_mut(OpClass::QueueGet).throttled += 1;
        assert_eq!(m.total_completed(), 2);
        assert_eq!(m.total_throttled(), 1);
        assert_eq!(m.total_bytes(), 100);
        assert_eq!(m.counter(OpClass::QueuePut).unwrap().completed, 2);
        assert!(m.counter(OpClass::TableInsert).is_none());
    }

    #[test]
    fn iter_is_deterministically_ordered() {
        let mut m = ClusterMetrics::new();
        m.counter_mut(OpClass::TableInsert).completed = 1;
        m.counter_mut(OpClass::BlobDownload).completed = 1;
        m.counter_mut(OpClass::QueuePut).completed = 1;
        // Only touched classes appear, in OpClass declaration-index order.
        let classes: Vec<OpClass> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(
            classes,
            vec![
                OpClass::BlobDownload,
                OpClass::QueuePut,
                OpClass::TableInsert
            ]
        );
        let indices: Vec<usize> = classes.iter().map(|c| c.index()).collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        assert_eq!(indices, sorted);
    }
}
