//! Server-side operation accounting.

use azsim_core::stats::OnlineStats;
use azsim_storage::OpClass;
use std::collections::HashMap;

/// Counters for one operation class.
#[derive(Clone, Debug, Default)]
pub struct OpCounter {
    /// Successfully completed operations.
    pub completed: u64,
    /// Operations rejected with `ServerBusy`.
    pub throttled: u64,
    /// Operations that failed with a non-throttle error.
    pub failed: u64,
    /// Payload bytes received from clients.
    pub bytes_up: u64,
    /// Payload bytes sent to clients.
    pub bytes_down: u64,
    /// Server-observed latency of completed operations, in seconds.
    pub latency: OnlineStats,
}

/// Per-class operation accounting for a whole cluster.
#[derive(Clone, Debug, Default)]
pub struct ClusterMetrics {
    counters: HashMap<OpClass, OpCounter>,
}

impl ClusterMetrics {
    /// Fresh metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable counter for a class (created on first use).
    pub fn counter_mut(&mut self, class: OpClass) -> &mut OpCounter {
        self.counters.entry(class).or_default()
    }

    /// Counter for a class, if any operation of that class was seen.
    pub fn counter(&self, class: OpClass) -> Option<&OpCounter> {
        self.counters.get(&class)
    }

    /// Total completed operations across classes.
    pub fn total_completed(&self) -> u64 {
        self.counters.values().map(|c| c.completed).sum()
    }

    /// Total throttled operations across classes.
    pub fn total_throttled(&self) -> u64 {
        self.counters.values().map(|c| c.throttled).sum()
    }

    /// Total payload bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.counters
            .values()
            .map(|c| c.bytes_up + c.bytes_down)
            .sum()
    }

    /// Iterate over `(class, counter)` pairs in deterministic label order.
    pub fn iter(&self) -> impl Iterator<Item = (OpClass, &OpCounter)> {
        let mut v: Vec<_> = self.counters.iter().map(|(k, c)| (*k, c)).collect();
        v.sort_by_key(|(k, _)| k.label());
        v.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = ClusterMetrics::new();
        {
            let c = m.counter_mut(OpClass::QueuePut);
            c.completed += 2;
            c.bytes_up += 100;
            c.latency.record(0.01);
        }
        m.counter_mut(OpClass::QueueGet).throttled += 1;
        assert_eq!(m.total_completed(), 2);
        assert_eq!(m.total_throttled(), 1);
        assert_eq!(m.total_bytes(), 100);
        assert_eq!(m.counter(OpClass::QueuePut).unwrap().completed, 2);
        assert!(m.counter(OpClass::TableInsert).is_none());
    }

    #[test]
    fn iter_is_deterministically_ordered() {
        let mut m = ClusterMetrics::new();
        m.counter_mut(OpClass::TableInsert).completed = 1;
        m.counter_mut(OpClass::BlobDownload).completed = 1;
        m.counter_mut(OpClass::QueuePut).completed = 1;
        let labels: Vec<&str> = m.iter().map(|(k, _)| k.label()).collect();
        let mut sorted = labels.clone();
        sorted.sort();
        assert_eq!(labels, sorted);
    }
}
