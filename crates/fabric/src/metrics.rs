//! Server-side operation accounting and the exportable metrics snapshot.
//!
//! [`ClusterMetrics`] is the hot-path registry (fixed-array counters, no
//! allocation per op). [`MetricsSnapshot`] is the cold-path export view the
//! cluster produces on demand: per-class counters, per-partition hot-key
//! heat, fault tallies and — when phase profiling is enabled — per-phase
//! latency histograms, serializable to JSON, Prometheus text format and
//! OTLP/HTTP-shaped JSON (`resourceMetrics` → `scopeMetrics` → metric
//! points) — one snapshot feeds every export.

use crate::faults::FaultMetrics;
use crate::trace::{Phase, PhaseAggregate, TraceOutcome};
use azsim_core::stats::{Histogram, OnlineStats};
use azsim_storage::OpClass;
use serde::Serialize;

/// Counters for one operation class.
#[derive(Clone, Debug, Default)]
pub struct OpCounter {
    /// Successfully completed operations.
    pub completed: u64,
    /// Operations rejected with `ServerBusy`.
    pub throttled: u64,
    /// Operations that failed with a non-throttle error.
    pub failed: u64,
    /// Payload bytes received from clients.
    pub bytes_up: u64,
    /// Payload bytes sent to clients.
    pub bytes_down: u64,
    /// Server-observed latency of completed operations, in seconds.
    pub latency: OnlineStats,
}

/// Per-class operation accounting for a whole cluster.
///
/// Stored as a fixed array indexed by [`OpClass::index`], so the hot-path
/// `counter_mut` is a bounds-checked array access instead of a hash probe.
/// A bitmask remembers which classes were ever touched, preserving the
/// "`None` until first use" contract of [`ClusterMetrics::counter`].
#[derive(Clone, Debug)]
pub struct ClusterMetrics {
    counters: [OpCounter; OpClass::COUNT],
    touched: u32,
}

const _: () = assert!(OpClass::COUNT <= u32::BITS as usize);

impl Default for ClusterMetrics {
    fn default() -> Self {
        ClusterMetrics {
            counters: std::array::from_fn(|_| OpCounter::default()),
            touched: 0,
        }
    }
}

impl ClusterMetrics {
    /// Fresh metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable counter for a class (marked as seen on first use).
    pub fn counter_mut(&mut self, class: OpClass) -> &mut OpCounter {
        let i = class.index();
        self.touched |= 1 << i;
        &mut self.counters[i]
    }

    /// Counter for a class, if any operation of that class was seen.
    pub fn counter(&self, class: OpClass) -> Option<&OpCounter> {
        let i = class.index();
        (self.touched & (1 << i) != 0).then(|| &self.counters[i])
    }

    /// Total completed operations across classes.
    pub fn total_completed(&self) -> u64 {
        self.counters.iter().map(|c| c.completed).sum()
    }

    /// Total throttled operations across classes.
    pub fn total_throttled(&self) -> u64 {
        self.counters.iter().map(|c| c.throttled).sum()
    }

    /// Total payload bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.bytes_up + c.bytes_down)
            .sum()
    }

    /// Iterate over the `(class, counter)` pairs of classes that were seen,
    /// in fixed [`OpClass::index`] order — no allocation, no re-sorting.
    pub fn iter(&self) -> impl Iterator<Item = (OpClass, &OpCounter)> {
        OpClass::ALL
            .iter()
            .filter(|class| self.touched & (1 << class.index()) != 0)
            .map(|class| (*class, &self.counters[class.index()]))
    }
}

/// Summary of one [`OnlineStats`] accumulator, in seconds.
#[derive(Clone, Debug, Serialize)]
pub struct StatSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Mean.
    pub mean_s: f64,
    /// Minimum.
    pub min_s: f64,
    /// Maximum.
    pub max_s: f64,
    /// Sample standard deviation.
    pub stddev_s: f64,
}

impl StatSnapshot {
    fn of(s: &OnlineStats) -> Self {
        StatSnapshot {
            count: s.count(),
            mean_s: s.mean(),
            min_s: s.min(),
            max_s: s.max(),
            stddev_s: s.stddev(),
        }
    }
}

/// Exported per-class counters.
#[derive(Clone, Debug, Serialize)]
pub struct OpSnapshot {
    /// Operation class label (e.g. `queue.put`).
    pub class: String,
    /// Successfully completed operations.
    pub completed: u64,
    /// Throttle rejections.
    pub throttled: u64,
    /// Non-throttle failures (semantic, faulted, dropped).
    pub failed: u64,
    /// Payload bytes client → server.
    pub bytes_up: u64,
    /// Payload bytes server → client.
    pub bytes_down: u64,
    /// Latency summary of completed operations.
    pub latency: StatSnapshot,
}

/// Cluster-wide totals.
#[derive(Clone, Debug, Serialize)]
pub struct TotalsSnapshot {
    /// Completed operations across classes.
    pub completed: u64,
    /// Throttle rejections across classes.
    pub throttled: u64,
    /// Non-throttle failures across classes.
    pub failed: u64,
    /// Payload bytes in either direction.
    pub bytes: u64,
}

/// Exported fault-injection tallies.
#[derive(Clone, Debug, Serialize)]
pub struct FaultSnapshot {
    /// `ServerBusy` rejections injected by storms.
    pub injected_busy: u64,
    /// `ServerFault` rejections from crash windows.
    pub crash_faults: u64,
    /// `ServerFault` rejections from partition blackouts.
    pub blackout_faults: u64,
    /// Requests dropped (client timeouts).
    pub dropped: u64,
    /// Responses lost after server-side execution (ack losses).
    pub ack_losses: u64,
    /// Replicated-write acks cut by a mid-flight crash.
    pub crash_ambiguous: u64,
    /// Client-ambiguous outcomes (drops + ack losses + crash cuts).
    pub ambiguous: u64,
    /// Replica-sync stalls applied.
    pub replica_stalls: u64,
}

/// One row of the per-partition hot-key heatmap.
#[derive(Clone, Debug, Serialize)]
pub struct PartitionHeat {
    /// Partition label (e.g. `queue:mix-shared`, `blob:figures/b0`).
    pub partition: String,
    /// Partition-server index the partition is placed on.
    pub server: usize,
    /// Operations addressed to the partition (including rejected ones).
    pub ops: u64,
    /// Throttle rejections charged to the partition.
    pub throttled: u64,
}

/// Quantile summary of one [`Histogram`], in seconds.
#[derive(Clone, Debug, Serialize)]
pub struct QuantileSnapshot {
    /// Phase label, or `end_to_end`.
    pub phase: String,
    /// Number of observations.
    pub count: u64,
    /// Exact sum of observations.
    pub sum_s: f64,
    /// Mean.
    pub mean_s: f64,
    /// Median.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// 99.9th percentile.
    pub p999_s: f64,
    /// Maximum (exact).
    pub max_s: f64,
}

impl QuantileSnapshot {
    /// Summarize a histogram under a given label.
    pub fn of(phase: impl Into<String>, h: &Histogram) -> Self {
        QuantileSnapshot {
            phase: phase.into(),
            count: h.count(),
            sum_s: h.sum(),
            mean_s: h.mean(),
            p50_s: h.quantile(0.50),
            p95_s: h.quantile(0.95),
            p99_s: h.quantile(0.99),
            p999_s: h.quantile(0.999),
            max_s: h.max(),
        }
    }
}

/// Outcome tallies of one class's traced operations.
#[derive(Clone, Debug, Serialize)]
pub struct OutcomeSnapshot {
    /// Completed successfully.
    pub ok: u64,
    /// Rejected by a throttle.
    pub throttled: u64,
    /// Failed with a semantic error.
    pub failed: u64,
    /// Rejected by an injected fault.
    pub faulted: u64,
    /// Dropped; the client timed out.
    pub timed_out: u64,
}

/// Per-class phase breakdown: end-to-end distribution plus one quantile
/// summary per phase that was actually crossed.
#[derive(Clone, Debug, Serialize)]
pub struct ClassPhaseSnapshot {
    /// Operation class label.
    pub class: String,
    /// Outcome tallies.
    pub outcomes: OutcomeSnapshot,
    /// End-to-end latency distribution (all outcomes).
    pub end_to_end: QuantileSnapshot,
    /// Per-phase distributions, in [`Phase::ALL`] order, phases with zero
    /// observations omitted.
    pub phases: Vec<QuantileSnapshot>,
}

/// Everything the cluster can report about a run, in exportable form.
#[derive(Clone, Debug, Serialize)]
pub struct MetricsSnapshot {
    /// Export-format identifier.
    pub schema: String,
    /// Cluster-wide totals.
    pub totals: TotalsSnapshot,
    /// Per-class counters, in [`OpClass::index`] order.
    pub ops: Vec<OpSnapshot>,
    /// Fault-injection tallies.
    pub faults: FaultSnapshot,
    /// Hottest partitions (up to 64), by descending op count then label.
    pub partitions: Vec<PartitionHeat>,
    /// Per-class phase breakdowns (empty unless phase profiling is on).
    pub phases: Vec<ClassPhaseSnapshot>,
}

/// Convert per-class phase aggregates into their exportable form, in
/// [`OpClass::index`] order.
pub fn phase_snapshots(agg: &PhaseAggregate) -> Vec<ClassPhaseSnapshot> {
    agg.iter()
        .map(|(class, stats)| ClassPhaseSnapshot {
            class: class.label().to_string(),
            outcomes: OutcomeSnapshot {
                ok: stats.outcome_count(TraceOutcome::Ok),
                throttled: stats.outcome_count(TraceOutcome::Throttled),
                failed: stats.outcome_count(TraceOutcome::Failed),
                faulted: stats.outcome_count(TraceOutcome::Faulted),
                timed_out: stats.outcome_count(TraceOutcome::TimedOut),
            },
            end_to_end: QuantileSnapshot::of("end_to_end", stats.end_to_end()),
            phases: Phase::ALL
                .iter()
                .filter(|&&p| stats.phase(p).count() > 0)
                .map(|&p| QuantileSnapshot::of(p.label(), stats.phase(p)))
                .collect(),
        })
        .collect()
}

impl MetricsSnapshot {
    /// Schema identifier written into every JSON export.
    pub const SCHEMA: &'static str = "azurebench-metrics/v1";

    /// Assemble a snapshot from the cluster's registries.
    pub fn build(
        metrics: &ClusterMetrics,
        faults: &FaultMetrics,
        partitions: Vec<PartitionHeat>,
        phases: Option<&PhaseAggregate>,
    ) -> Self {
        let ops: Vec<OpSnapshot> = metrics
            .iter()
            .map(|(class, c)| OpSnapshot {
                class: class.label().to_string(),
                completed: c.completed,
                throttled: c.throttled,
                failed: c.failed,
                bytes_up: c.bytes_up,
                bytes_down: c.bytes_down,
                latency: StatSnapshot::of(&c.latency),
            })
            .collect();
        MetricsSnapshot {
            schema: Self::SCHEMA.to_string(),
            totals: TotalsSnapshot {
                completed: metrics.total_completed(),
                throttled: metrics.total_throttled(),
                failed: ops.iter().map(|o| o.failed).sum(),
                bytes: metrics.total_bytes(),
            },
            ops,
            faults: FaultSnapshot {
                injected_busy: faults.injected_busy,
                crash_faults: faults.crash_faults,
                blackout_faults: faults.blackout_faults,
                dropped: faults.dropped,
                ack_losses: faults.ack_losses,
                crash_ambiguous: faults.crash_ambiguous,
                ambiguous: faults.ambiguous(),
                replica_stalls: faults.replica_stalls,
            },
            partitions,
            phases: phases.map(phase_snapshots).unwrap_or_default(),
        }
    }

    /// Serialize to JSON. Deterministic: field order is fixed by the struct
    /// definitions and floats print in shortest-roundtrip form.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization is infallible")
    }

    /// Render in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();

        out.push_str("# TYPE azsim_ops_total counter\n");
        for o in &self.ops {
            for (outcome, v) in [
                ("ok", o.completed),
                ("throttled", o.throttled),
                ("failed", o.failed),
            ] {
                out.push_str(&format!(
                    "azsim_ops_total{{class=\"{}\",outcome=\"{}\"}} {}\n",
                    o.class, outcome, v
                ));
            }
        }

        out.push_str("# TYPE azsim_bytes_total counter\n");
        for o in &self.ops {
            out.push_str(&format!(
                "azsim_bytes_total{{class=\"{}\",direction=\"up\"}} {}\n",
                o.class, o.bytes_up
            ));
            out.push_str(&format!(
                "azsim_bytes_total{{class=\"{}\",direction=\"down\"}} {}\n",
                o.class, o.bytes_down
            ));
        }

        out.push_str("# TYPE azsim_fault_injections_total counter\n");
        for (kind, v) in [
            ("busy", self.faults.injected_busy),
            ("crash", self.faults.crash_faults),
            ("blackout", self.faults.blackout_faults),
            ("drop", self.faults.dropped),
            ("ack_loss", self.faults.ack_losses),
            ("crash_ambiguous", self.faults.crash_ambiguous),
            ("replica_stall", self.faults.replica_stalls),
        ] {
            out.push_str(&format!(
                "azsim_fault_injections_total{{kind=\"{kind}\"}} {v}\n"
            ));
        }

        out.push_str("# TYPE azsim_ambiguous_outcomes_total counter\n");
        out.push_str(&format!(
            "azsim_ambiguous_outcomes_total {}\n",
            self.faults.ambiguous
        ));

        out.push_str("# TYPE azsim_partition_ops_total counter\n");
        for h in &self.partitions {
            // `partition` embeds user-chosen container/queue/table names, so
            // it is the one label that can carry exposition-breaking bytes;
            // every other label value is a fixed enum name or a number.
            out.push_str(&format!(
                "azsim_partition_ops_total{{partition=\"{}\",server=\"{}\"}} {}\n",
                escape_label(&h.partition),
                h.server,
                h.ops
            ));
        }

        // Phase latencies as Prometheus summaries: one series per quantile
        // plus the _sum/_count pair.
        out.push_str("# TYPE azsim_phase_latency_seconds summary\n");
        for c in &self.phases {
            let mut emit = |q: &QuantileSnapshot| {
                for (quantile, v) in [
                    ("0.5", q.p50_s),
                    ("0.95", q.p95_s),
                    ("0.99", q.p99_s),
                    ("0.999", q.p999_s),
                ] {
                    out.push_str(&format!(
                        "azsim_phase_latency_seconds{{class=\"{}\",phase=\"{}\",quantile=\"{}\"}} {:?}\n",
                        c.class, q.phase, quantile, v
                    ));
                }
                out.push_str(&format!(
                    "azsim_phase_latency_seconds_sum{{class=\"{}\",phase=\"{}\"}} {:?}\n",
                    c.class, q.phase, q.sum_s
                ));
                out.push_str(&format!(
                    "azsim_phase_latency_seconds_count{{class=\"{}\",phase=\"{}\"}} {}\n",
                    c.class, q.phase, q.count
                ));
            };
            emit(&c.end_to_end);
            for q in &c.phases {
                emit(q);
            }
        }
        out
    }

    /// Render as OTLP/HTTP-shaped JSON (the `ExportMetricsServiceRequest`
    /// wire shape: `resourceMetrics` → `resource`/`scopeMetrics` →
    /// `scope`/`metrics`), hand-encoded offline — no collector, no new
    /// crates. Cumulative sums carry `asInt` (OTLP encodes int64 as a JSON
    /// string); phase latencies export as OTLP summaries with the same
    /// quantiles as the Prometheus view. Timestamps are `"0"`: the
    /// simulation runs in virtual time, and a deterministic export must
    /// not embed wall clocks. `resource` attributes are appended after
    /// `service.name=azurebench`, letting callers tag host/run provenance.
    pub fn to_otlp_json(&self, resource: &[(&str, &str)]) -> String {
        let mut attrs = vec![otlp_attr("service.name", "azurebench")];
        attrs.extend(resource.iter().map(|(k, v)| otlp_attr(k, v)));

        let mut metrics = Vec::new();

        let mut points = Vec::new();
        for o in &self.ops {
            for (outcome, v) in [
                ("ok", o.completed),
                ("throttled", o.throttled),
                ("failed", o.failed),
            ] {
                points.push(otlp_int_point(
                    &[otlp_attr("class", &o.class), otlp_attr("outcome", outcome)],
                    v,
                ));
            }
        }
        metrics.push(otlp_sum("azsim.ops", "{operation}", &points));

        let mut points = Vec::new();
        for o in &self.ops {
            for (direction, v) in [("up", o.bytes_up), ("down", o.bytes_down)] {
                points.push(otlp_int_point(
                    &[
                        otlp_attr("class", &o.class),
                        otlp_attr("direction", direction),
                    ],
                    v,
                ));
            }
        }
        metrics.push(otlp_sum("azsim.bytes", "By", &points));

        let mut points = Vec::new();
        for (kind, v) in [
            ("busy", self.faults.injected_busy),
            ("crash", self.faults.crash_faults),
            ("blackout", self.faults.blackout_faults),
            ("drop", self.faults.dropped),
            ("ack_loss", self.faults.ack_losses),
            ("crash_ambiguous", self.faults.crash_ambiguous),
            ("replica_stall", self.faults.replica_stalls),
        ] {
            points.push(otlp_int_point(&[otlp_attr("kind", kind)], v));
        }
        metrics.push(otlp_sum("azsim.fault.injections", "{fault}", &points));
        metrics.push(otlp_sum(
            "azsim.ambiguous.outcomes",
            "{operation}",
            &[otlp_int_point(&[], self.faults.ambiguous)],
        ));

        let mut points = Vec::new();
        for h in &self.partitions {
            points.push(otlp_int_point(
                &[
                    otlp_attr("partition", &h.partition),
                    otlp_attr("server", &h.server.to_string()),
                ],
                h.ops,
            ));
        }
        metrics.push(otlp_sum("azsim.partition.ops", "{operation}", &points));

        let mut points = Vec::new();
        for c in &self.phases {
            let mut emit = |q: &QuantileSnapshot| {
                points.push(otlp_summary_point(
                    &[otlp_attr("class", &c.class), otlp_attr("phase", &q.phase)],
                    q,
                ));
            };
            emit(&c.end_to_end);
            for q in &c.phases {
                emit(q);
            }
        }
        metrics.push(format!(
            "{{\"name\":\"azsim.phase.latency\",\"unit\":\"s\",\
             \"summary\":{{\"dataPoints\":[{}]}}}}",
            points.join(",")
        ));

        format!(
            "{{\"resourceMetrics\":[{{\"resource\":{{\"attributes\":[{}]}},\
             \"scopeMetrics\":[{{\"scope\":{{\"name\":\"azsim_fabric.metrics\",\
             \"version\":\"{}\"}},\"metrics\":[{}]}}]}}]}}",
            attrs.join(","),
            self.schema,
            metrics.join(",")
        )
    }
}

/// One OTLP string attribute: `{"key":…,"value":{"stringValue":…}}`.
fn otlp_attr(key: &str, value: &str) -> String {
    let mut s = String::from("{\"key\":");
    serde::ser::write_escaped(key, &mut s);
    s.push_str(",\"value\":{\"stringValue\":");
    serde::ser::write_escaped(value, &mut s);
    s.push_str("}}");
    s
}

/// One cumulative integer data point (int64 rides as a JSON string on the
/// OTLP/HTTP wire).
fn otlp_int_point(attrs: &[String], v: u64) -> String {
    format!(
        "{{\"attributes\":[{}],\"startTimeUnixNano\":\"0\",\"timeUnixNano\":\"0\",\
         \"asInt\":\"{v}\"}}",
        attrs.join(",")
    )
}

/// One cumulative sum metric.
fn otlp_sum(name: &str, unit: &str, points: &[String]) -> String {
    format!(
        "{{\"name\":\"{name}\",\"unit\":\"{unit}\",\"sum\":{{\"aggregationTemporality\":2,\
         \"isMonotonic\":true,\"dataPoints\":[{}]}}}}",
        points.join(",")
    )
}

/// One summary data point mirroring the Prometheus summary view, with the
/// exact maximum exported as the 1.0 quantile.
fn otlp_summary_point(attrs: &[String], q: &QuantileSnapshot) -> String {
    let quantiles = [
        (0.5, q.p50_s),
        (0.95, q.p95_s),
        (0.99, q.p99_s),
        (0.999, q.p999_s),
        (1.0, q.max_s),
    ]
    .iter()
    .map(|&(quantile, v)| format!("{{\"quantile\":{quantile:?},\"value\":{v:?}}}"))
    .collect::<Vec<_>>()
    .join(",");
    format!(
        "{{\"attributes\":[{}],\"startTimeUnixNano\":\"0\",\"timeUnixNano\":\"0\",\
         \"count\":\"{}\",\"sum\":{:?},\"quantileValues\":[{quantiles}]}}",
        attrs.join(","),
        q.count,
        q.sum_s
    )
}

/// Escape a label value for the Prometheus text exposition format:
/// backslash, double quote and line feed must be backslash-escaped inside
/// the quoted value or the scrape line is truncated/corrupted.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = ClusterMetrics::new();
        {
            let c = m.counter_mut(OpClass::QueuePut);
            c.completed += 2;
            c.bytes_up += 100;
            c.latency.record(0.01);
        }
        m.counter_mut(OpClass::QueueGet).throttled += 1;
        assert_eq!(m.total_completed(), 2);
        assert_eq!(m.total_throttled(), 1);
        assert_eq!(m.total_bytes(), 100);
        assert_eq!(m.counter(OpClass::QueuePut).unwrap().completed, 2);
        assert!(m.counter(OpClass::TableInsert).is_none());
    }

    #[test]
    fn iter_is_deterministically_ordered() {
        let mut m = ClusterMetrics::new();
        m.counter_mut(OpClass::TableInsert).completed = 1;
        m.counter_mut(OpClass::BlobDownload).completed = 1;
        m.counter_mut(OpClass::QueuePut).completed = 1;
        // Only touched classes appear, in OpClass declaration-index order.
        let classes: Vec<OpClass> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(
            classes,
            vec![
                OpClass::BlobDownload,
                OpClass::QueuePut,
                OpClass::TableInsert
            ]
        );
        let indices: Vec<usize> = classes.iter().map(|c| c.index()).collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        assert_eq!(indices, sorted);
    }

    fn sample_snapshot() -> MetricsSnapshot {
        let mut m = ClusterMetrics::new();
        {
            let c = m.counter_mut(OpClass::QueuePut);
            c.completed = 3;
            c.throttled = 1;
            c.bytes_up = 300;
            c.latency.record(0.010);
            c.latency.record(0.020);
            c.latency.record(0.030);
        }
        let mut agg = PhaseAggregate::new();
        let mut phases = crate::trace::PhaseBreadcrumb::new();
        phases.add(Phase::Service, std::time::Duration::from_millis(5));
        phases.add(Phase::Transfer, std::time::Duration::from_millis(2));
        agg.record(&crate::trace::TraceRecord {
            issued: azsim_core::SimTime(0),
            completed: azsim_core::SimTime(7_000_000),
            actor: 0,
            class: OpClass::QueuePut,
            outcome: TraceOutcome::Ok,
            bytes_up: 100,
            bytes_down: 0,
            phases,
        });
        MetricsSnapshot::build(
            &m,
            &FaultMetrics::default(),
            vec![PartitionHeat {
                partition: "queue:hot".into(),
                server: 2,
                ops: 4,
                throttled: 1,
            }],
            Some(&agg),
        )
    }

    #[test]
    fn snapshot_json_is_schema_tagged_and_deterministic() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        assert!(json.starts_with("{\"schema\":\"azurebench-metrics/v1\""));
        assert!(json.contains("\"class\":\"queue.put\""));
        assert!(json.contains("\"partition\":\"queue:hot\""));
        assert!(json.contains("\"phase\":\"service\""));
        // Same inputs serialize byte-identically (shortest-roundtrip floats).
        assert_eq!(json, sample_snapshot().to_json());
    }

    #[test]
    fn hostile_partition_labels_are_escaped() {
        let snap = MetricsSnapshot::build(
            &ClusterMetrics::new(),
            &FaultMetrics::default(),
            vec![PartitionHeat {
                partition: "queue:evil\"},inject=\"1\\\nnew".into(),
                server: 0,
                ops: 1,
                throttled: 0,
            }],
            None,
        );
        let prom = snap.to_prometheus();
        assert!(prom.contains(
            "azsim_partition_ops_total{partition=\"queue:evil\\\"},inject=\\\"1\\\\\\nnew\",server=\"0\"} 1"
        ));
        // No label value may smuggle a raw quote, backslash or newline into
        // the exposition stream: every line must still parse as
        // name{labels} value (or a label-free name value).
        for line in prom.lines().filter(|l| !l.starts_with('#')) {
            assert!(line.matches('{').count() <= 1, "corrupt line: {line}");
            assert!(
                line.ends_with(" 1") || line.ends_with(" 0"),
                "corrupt line: {line}"
            );
        }
    }

    #[test]
    fn snapshot_prometheus_exposes_every_family() {
        let prom = sample_snapshot().to_prometheus();
        for family in [
            "azsim_ops_total",
            "azsim_bytes_total",
            "azsim_fault_injections_total",
            "azsim_partition_ops_total",
            "azsim_phase_latency_seconds",
        ] {
            assert!(
                prom.contains(&format!("# TYPE {family} ")),
                "{family} TYPE line missing"
            );
        }
        assert!(prom.contains("azsim_ops_total{class=\"queue.put\",outcome=\"ok\"} 3"));
        assert!(prom.contains("azsim_ops_total{class=\"queue.put\",outcome=\"throttled\"} 1"));
        assert!(prom.contains("azsim_partition_ops_total{partition=\"queue:hot\",server=\"2\"} 4"));
        assert!(prom.contains(
            "azsim_phase_latency_seconds_count{class=\"queue.put\",phase=\"service\"} 1"
        ));
        assert!(prom.contains("quantile=\"0.999\""));
    }

    #[test]
    fn otlp_export_is_shaped_and_deterministic() {
        let snap = sample_snapshot();
        let otlp = snap.to_otlp_json(&[("host.name", "ci-runner")]);
        // The ExportMetricsServiceRequest wire shape, outermost first.
        assert!(otlp.starts_with("{\"resourceMetrics\":[{\"resource\":"));
        assert!(
            otlp.contains("{\"key\":\"service.name\",\"value\":{\"stringValue\":\"azurebench\"}}")
        );
        assert!(otlp.contains("{\"key\":\"host.name\",\"value\":{\"stringValue\":\"ci-runner\"}}"));
        assert!(otlp.contains(
            "\"scope\":{\"name\":\"azsim_fabric.metrics\",\"version\":\"azurebench-metrics/v1\"}"
        ));
        // Cumulative monotonic sums with int64-as-string points.
        assert!(otlp.contains("\"name\":\"azsim.ops\""));
        assert!(otlp.contains("\"aggregationTemporality\":2,\"isMonotonic\":true"));
        assert!(otlp.contains("\"asInt\":\"3\""));
        assert!(otlp.contains("{\"key\":\"outcome\",\"value\":{\"stringValue\":\"throttled\"}}"));
        // The summary mirrors the Prometheus quantiles plus the exact max.
        assert!(otlp.contains("\"name\":\"azsim.phase.latency\""));
        assert!(otlp.contains("\"quantile\":0.999"));
        assert!(otlp.contains("\"quantile\":1.0"));
        // Virtual time: no wall-clock timestamps, ever.
        assert!(otlp.contains("\"timeUnixNano\":\"0\""));
        // Same snapshot → byte-identical export.
        assert_eq!(
            otlp,
            sample_snapshot().to_otlp_json(&[("host.name", "ci-runner")])
        );
        // It parses as JSON (the shim parser is strict about structure).
        serde::value::parse(otlp.as_bytes()).expect("OTLP export parses");
    }

    #[test]
    fn otlp_prometheus_and_json_derive_from_one_snapshot() {
        // One snapshot value feeds all three exports: the counts any two
        // exports report for the same series must agree.
        let snap = sample_snapshot();
        let (json, prom, otlp) = (snap.to_json(), snap.to_prometheus(), snap.to_otlp_json(&[]));
        assert!(json.contains("\"completed\":3"));
        assert!(prom.contains("azsim_ops_total{class=\"queue.put\",outcome=\"ok\"} 3"));
        assert!(otlp.contains("\"asInt\":\"3\""));
        assert!(prom.contains("azsim_partition_ops_total{partition=\"queue:hot\",server=\"2\"} 4"));
        assert!(otlp.contains("{\"key\":\"partition\",\"value\":{\"stringValue\":\"queue:hot\"}}"));
    }

    #[test]
    fn phase_snapshots_omit_empty_phases() {
        let snap = sample_snapshot();
        assert_eq!(snap.phases.len(), 1);
        let class = &snap.phases[0];
        assert_eq!(class.class, "queue.put");
        assert_eq!(class.outcomes.ok, 1);
        let labels: Vec<&str> = class.phases.iter().map(|q| q.phase.as_str()).collect();
        // Only the phases that saw time appear, in Phase::ALL order.
        assert_eq!(labels, vec!["service", "transfer"]);
        assert_eq!(class.end_to_end.count, 1);
    }
}
