//! Ground-truth operation history for resilience verification.
//!
//! When enabled ([`crate::Cluster::enable_history`]), the cluster records
//! one [`OpRecord`] per submitted request with the one fact no client can
//! observe: whether the state transition **executed**. A dropped request
//! and a lost ack both surface to the client as `StorageError::Timeout`,
//! but only the history knows which timeouts mutated server state — the
//! raw material for the at-least-once / at-most-once invariants checked
//! by `azurebench::verify`.
//!
//! Recording is off by default and costs one branch per operation when
//! off, preserving the inert-plan zero-overhead guarantee.

use azsim_core::SimTime;
use azsim_storage::{OpClass, PartitionKey};

/// How one operation ended, from the server's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpOutcome {
    /// Executed and acknowledged.
    Ok,
    /// Rejected with `ServerBusy`; did not execute.
    Throttled,
    /// Rejected with `ServerFault` (crash/blackout window); did not execute.
    Faulted,
    /// Executed but returned a semantic error (e.g. `AlreadyExists`,
    /// `PreconditionFailed`) — state may or may not have changed, but the
    /// client learned the definite answer.
    Error,
    /// Client observed `Timeout`; the operation **never executed**
    /// (request dropped in flight).
    TimedOutLost,
    /// Client observed `Timeout`; the operation **executed** server-side
    /// (ack lost, or a crash cut an in-flight replicated write).
    TimedOutExecuted,
}

impl OpOutcome {
    /// Whether the client could not learn the operation's fate.
    pub fn is_ambiguous(self) -> bool {
        matches!(self, OpOutcome::TimedOutLost | OpOutcome::TimedOutExecuted)
    }

    /// Whether the state transition ran.
    pub fn executed(self) -> bool {
        matches!(self, OpOutcome::Ok | OpOutcome::TimedOutExecuted)
    }
}

/// Ground truth for one submitted operation.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// Client-side issue time.
    pub issued: SimTime,
    /// Client-visible completion (for timeouts: when the wait expired).
    pub completed: SimTime,
    /// Submitting actor.
    pub actor: usize,
    /// Operation class.
    pub class: OpClass,
    /// Target partition.
    pub partition: PartitionKey,
    /// Server-side outcome.
    pub outcome: OpOutcome,
}

/// The recorded run history.
#[derive(Debug, Default)]
pub struct History {
    records: Vec<OpRecord>,
}

impl History {
    /// All records, in submission order.
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// Append one record.
    pub(crate) fn push(&mut self, rec: OpRecord) {
        self.records.push(rec);
    }

    /// Timeouts that secretly executed — each one is a potential
    /// duplicate if the client retried.
    pub fn ambiguous_executed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome == OpOutcome::TimedOutExecuted)
            .count()
    }

    /// Timeouts that never executed.
    pub fn ambiguous_lost(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome == OpOutcome::TimedOutLost)
            .count()
    }

    /// Executed operations of one class (acked or not).
    pub fn executed_of(&self, class: OpClass) -> usize {
        self.records
            .iter()
            .filter(|r| r.class == class && r.outcome.executed())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_classification() {
        assert!(OpOutcome::TimedOutLost.is_ambiguous());
        assert!(OpOutcome::TimedOutExecuted.is_ambiguous());
        assert!(!OpOutcome::Ok.is_ambiguous());
        assert!(OpOutcome::TimedOutExecuted.executed());
        assert!(!OpOutcome::TimedOutLost.executed());
        assert!(OpOutcome::Ok.executed());
        assert!(!OpOutcome::Faulted.executed());
    }

    #[test]
    fn history_counts() {
        let mut h = History::default();
        let rec = |class, outcome| OpRecord {
            issued: SimTime::ZERO,
            completed: SimTime::from_millis(1),
            actor: 0,
            class,
            partition: PartitionKey::Queue { queue: "q".into() },
            outcome,
        };
        h.push(rec(OpClass::QueuePut, OpOutcome::Ok));
        h.push(rec(OpClass::QueuePut, OpOutcome::TimedOutExecuted));
        h.push(rec(OpClass::QueuePut, OpOutcome::TimedOutLost));
        h.push(rec(OpClass::QueueGet, OpOutcome::Faulted));
        assert_eq!(h.ambiguous_executed(), 1);
        assert_eq!(h.ambiguous_lost(), 1);
        assert_eq!(h.executed_of(OpClass::QueuePut), 2);
        assert_eq!(h.executed_of(OpClass::QueueGet), 0);
        assert_eq!(h.records().len(), 4);
    }
}
